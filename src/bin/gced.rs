//! `gced` — dataset-level experiment runner CLI.
//!
//! Subcommands:
//!
//! * `run <experiment>` — run an experiment, optionally split into
//!   `--shards N` worker **processes** (the driver re-invokes this
//!   binary with `shard` per shard, then merges) or `--in-process`
//!   shard threads on the persistent `gced-par` pool. Merged output is
//!   bit-identical for any shard count.
//! * `shard <experiment> --shard-index I --of N` — run one shard and
//!   write its JSON output (what the driver spawns).
//! * `merge <shard.json>…` — merge shard outputs produced by `shard`.
//! * `bench-check` — the CI bench-regression gate: compare fresh
//!   criterion medians against the committed `BENCH_pipeline.json`.
//! * `serve` — the warm, micro-batching online distillation server
//!   (`gced-serve`): fit once (or map a `--fit-cache` artifact), then
//!   answer `POST /v1/distill` until `POST /shutdown`.
//! * `distill` — one offline distillation printed in the exact wire
//!   format the server uses; CI byte-compares the two.
//! * `fit` — prebuild a fit-cache artifact and exit.
//!
//! Scale and seed resolve like the bench targets (`GCED_SCALE`,
//! `GCED_SEED`), overridable with `--scale` / `--seed`.

use gced_bench::gate;
use gced_datasets::{DatasetKind, ShardSpec};
use gced_eval::shard::{
    fit_fingerprint, load_or_fit, merge, needs_fit, run_shard_cached,
    run_sharded_in_process_cached, ShardOutput,
};
use gced_eval::Scale;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
gced — sharded experiment runner for the Grow-and-Clip reproduction

USAGE:
  gced run <experiment> [--kind K] [--shards N] [--in-process]
           [--scale smoke|default|full] [--seed S] [--out PATH]
           [--fit-cache PATH] [--profile PATH]
  gced shard <experiment> --shard-index I --of N [--kind K]
           [--scale smoke|default|full] [--seed S] --out PATH
           [--fit-cache PATH]
  gced merge [--out PATH] <shard.json>...
  gced bench-check --baseline PATH --results DIR
           [--tolerance F] [--summary PATH]
  gced serve [--addr HOST:PORT] [--kind K] [--scale S] [--seed S]
           [--fit-cache PATH] [--batch-max N] [--flush-us N]
           [--queue-cap N] [--parse-cache N] [--warmup N]
           [--conn-max N] [--request-deadline-ms N]
           [--read-deadline-ms N] [--fault-plan SPEC]
           [--cache-entries N] [--cache-bytes N] [--cache-ttl-ops N]
           [--cache-shards N]
  gced probe --addr HOST:PORT --question Q --answer A --context C
           [--requests N] [--clients N] [--expect PATH] [--retries N]
           [--retry-base-ms N] [--retry-cap-ms N] [--seed S]
           [--repeat N] [--duplicates]
  gced distill --question Q --answer A --context C [--kind K]
           [--scale S] [--seed S] [--fit-cache PATH] [--out PATH]
           [--profile PATH]
  gced fit --fit-cache PATH [--kind K] [--scale S] [--seed S]
  gced analyze [--root DIR] [--json] [--out PATH]

EXPERIMENTS:
  table3           dataset statistics (Table III); items = dataset kinds
  reduction        ground-truth evidence distillation over the dev
                   split; items = dev examples
  human_eval       human evaluation of distilled evidences (Tables
                   IV/V); items = zoo models + a ground-truth row
  agreement        inter-rater agreement (Table II); items = the three
                   rater groups
  qa_augmentation  QA models retrained on evidences (Tables VI/VII);
                   items = zoo models
  ablation         component knockouts (Table VIII); items = variants
  degradation      predicted-answer substitution curves (Fig. 7);
                   items = the (model x delta) grid

KINDS: squad11 (default), squad20, trivia-web, trivia-wiki

FIT CACHE:
  --fit-cache serializes the expensive fitted substrates (QA model,
  trigram LM, embeddings) to one artifact per run, so co-located
  shards map it instead of re-fitting identical state. `run` with
  worker processes fits once up front and hands every shard the
  artifact; without the flag a scratch artifact is used and removed
  with the shard files. `serve` and `distill` warm-start from the
  same artifact; `fit` prebuilds one and exits. The bench table
  runners read the GCED_FIT_CACHE env var (a directory of per-
  fingerprint artifacts) for the same reuse.

SERVE:
  `gced serve` answers POST /v1/distill with the micro-batching
  gced-serve server: requests coalesce (up to --batch-max, within
  --flush-us of the first arrival) into Gced::distill_batch calls on
  the persistent worker pool; a full queue (--queue-cap) sheds with
  503; GET /healthz and GET /metrics expose liveness and histograms;
  POST /shutdown drains in-flight batches and exits. Connections are
  persistent (HTTP/1.1 keep-alive, up to --conn-max requests each,
  idle-bounded by the read timeout). At startup the server pre-parses
  up to --warmup dev-corpus contexts of its fingerprint into the parse
  cache (0 disables; warmup counts land in /metrics). A served body is
  byte-identical to `gced distill` of the same input.

RESPONSE CACHE / EVIDENCE STORE:
  Every parseable distill request is fingerprinted (canonical request
  JSON, hashed) and probed against the gced-store response cache
  BEFORE the batch queue: a warm hit answers the exact stored bytes
  (still byte-identical to offline output) and skips coalescing
  entirely. Successful distillations are stored under a durable
  evidence id — the hex fingerprint, carried in the body and the
  X-Gced-Evidence-Id header — and replayed byte-identically by
  GET /v1/evidence/{id}. Sizing: --cache-entries (default 4096, 0
  disables), --cache-bytes (default 33554432), --cache-shards
  (default 8, rounded to a power of two), and --cache-ttl-ops, a
  LOGICAL TTL: an entry expires after N subsequent insertions into
  its shard (never wall-clock; 0 = no TTL). Eviction is LRU within
  each shard's entry/byte budget. X-Gced-Cache: hit|miss tags probed
  responses; cache_hits_total + cache_misses_total ==
  distill_requests_total in /metrics while the cache is on.

FAILURE MODEL:
  Queued requests carry a deadline (--request-deadline-ms, default
  10000, 0 disables): one that expires before its batch runs is shed
  with 503 + Retry-After. The request head+body must arrive within
  --read-deadline-ms total (default 30000, 0 disables; slow-loris
  protection) or the server answers 408. A panic inside a distill
  batch answers that batch 500 and the batcher survives; a dead
  batcher thread is restarted. --fault-plan (or the GCED_CHAOS env
  var) arms deterministic fault injection for chaos testing, e.g.
  'seed=42,batch_panic=0.1x3,torn_write=0.25' — sites: pre_batch_delay,
  batch_panic, batcher_kill, torn_write, read_stall; each
  <site>=<rate>[x<max-fires>][:<millis>]. Requires a binary built with
  the gced-serve `chaos` feature (on by default).

PROBE:
  `gced probe` is the retrying chaos client: it posts --requests
  copies of one distill request over --clients concurrent keep-alive
  sessions, riding out 500s, 503 sheds (honoring Retry-After), and
  torn connections with seeded, jittered exponential backoff
  (--retries budget per request). Every request must end in a 200 —
  and match the --expect file byte-for-byte when given — or the
  command exits nonzero. CI drives it against a fault-plan server to
  prove surviving responses stay byte-identical to offline output.
  After a successful run it prints a per-request latency summary
  (min/p50/p99/max in µs, retries and backoff included) estimated
  from the same fixed-bucket histogram the server's /metrics uses.
  --repeat N replays the whole workload N times (rounds after the
  first hit the server's response cache) and --duplicates posts every
  request twice back-to-back; when the server reports X-Gced-Cache
  headers the summary adds the observed hit rate plus separate
  hit-vs-miss latency quantiles from the same histogram code.

PROFILE:
  --profile PATH (on `distill` and `run`) enables the gced-obs span
  tracer and writes a Chrome trace-event JSON profile to PATH — load
  it in chrome://tracing or Perfetto — plus a per-stage text summary
  (calls, self/total ms) on stderr. Spans carry deterministic counter
  payloads (grow trials, prune counts, cache hits); only timings vary
  between runs, and output bytes never depend on the clock. For `run`
  the profile covers the driver process only: worker-process shards
  (`--shards N` without --in-process) trace nothing of their children.

ANALYZE:
  `gced analyze` runs the gced-analyze static pass over every .rs
  file under --root (default: the current directory): determinism
  lints DET001-DET004 (hash-order output, float accumulation outside
  the fixed-tree kernels, wall-clock reads, ambient randomness) and
  unsafe-hygiene lints SAFE001-SAFE002 (SAFETY comments, intrinsics
  under #[target_feature]). Exit 0 when clean, 1 on findings, 2 on
  usage errors. --json emits the machine-readable report. Suppress a
  single finding inline with `// gced-allow(LINT_ID): reason` on the
  finding's line or the line above; a suppression that suppresses
  nothing is itself a finding. See README \"Static analysis &
  sanitizers\" for the lint catalog.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("bench-check") => cmd_bench_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("distill") => cmd_distill(&args[1..]),
        Some("fit") => cmd_fit(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("gced: {msg}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------------
// Argument parsing helpers
// ---------------------------------------------------------------------------

/// Split `args` into positionals and `--flag value` pairs.
struct Parsed {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["--in-process", "--json", "--fix", "--duplicates"];

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        positional: Vec::new(),
        flags: Vec::new(),
        switches: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if SWITCHES.contains(&a.as_str()) {
                parsed.switches.push(name.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                parsed.flags.push((name.to_string(), value.clone()));
            }
        } else {
            parsed.positional.push(a.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flag(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
            None => Ok(default),
        }
    }

    fn scale(&self) -> Result<(Scale, String), String> {
        if let Some(tag) = self.flag("scale") {
            let scale = match tag {
                "smoke" => Scale::smoke(),
                "full" => Scale::full(),
                "default" => Scale::default_bench(),
                other => return Err(format!("--scale: unknown scale {other:?}")),
            };
            return Ok((scale, tag.to_string()));
        }
        // Like the bench targets, unknown GCED_SCALE values fall back to
        // the default scale instead of erroring.
        let (scale, tag) = match std::env::var("GCED_SCALE").as_deref() {
            Ok("smoke") => (Scale::smoke(), "smoke"),
            Ok("full") => (Scale::full(), "full"),
            _ => (Scale::default_bench(), "default"),
        };
        Ok((scale, tag.to_string()))
    }

    fn seed(&self) -> Result<u64, String> {
        match self.flag("seed") {
            Some(v) => v.parse().map_err(|_| format!("--seed: bad number {v:?}")),
            None => Ok(Scale::seed_from_env()),
        }
    }

    fn kind(&self) -> Result<DatasetKind, String> {
        let flag = self.flag("kind").unwrap_or("squad11");
        DatasetKind::from_cli_flag(flag)
            .ok_or_else(|| format!("--kind: unknown dataset kind {flag:?}"))
    }
}

fn write_or_print(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            // `--out results/run3/table.txt` should not require the
            // caller to pre-create results/run3.
            ensure_parent_dir(Path::new(path))?;
            std::fs::write(path, text).map_err(|e| format!("cannot write output {path}: {e}"))
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// Write a `--profile` capture: Chrome trace-event JSON to `path`
/// (chrome://tracing / Perfetto both load it) and the per-stage text
/// summary to stderr.
fn write_profile(path: &str, spans: &[(u64, gced_obs::SpanNode)]) -> Result<(), String> {
    ensure_parent_dir(Path::new(path))?;
    std::fs::write(path, gced_obs::chrome_trace(spans))
        .map_err(|e| format!("cannot write profile {path}: {e}"))?;
    eprint!("{}", gced_obs::stage_summary(spans));
    eprintln!("gced: profile trace written to {path}");
    Ok(())
}

/// Create the missing parent directories of an output path, naming both
/// the directory and the target in the error.
fn ensure_parent_dir(path: &Path) -> Result<(), String> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "cannot create parent directory {} for {}: {e}",
                    parent.display(),
                    path.display()
                )
            })
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    let experiment = p
        .positional
        .first()
        .ok_or_else(|| format!("run: missing experiment name\n\n{USAGE}"))?
        .clone();
    // Validate the name before the worker-process path pays for a fit
    // and spawns children that would all fail on it.
    if !gced_eval::shard::EXPERIMENTS.contains(&experiment.as_str()) {
        return Err(format!(
            "unknown experiment {experiment:?} (expected one of {:?})",
            gced_eval::shard::EXPERIMENTS
        ));
    }
    let (scale, scale_flag) = p.scale()?;
    let seed = p.seed()?;
    let kind = p.kind()?;
    let shards = p.usize_flag("shards", 1)?;
    if shards == 0 {
        // The same error ShardSpec::new raises — the CLI must not
        // silently clamp what the spec layer rejects.
        return Err("--shards: shard count must be at least 1".to_string());
    }
    let fit_cache = p.flag("fit-cache").map(PathBuf::from);
    let profile = p.flag("profile").map(str::to_string);
    if profile.is_some() {
        // Ambient capture: every span opened anywhere in this process
        // (driver thread and the gced-par pool alike) is retained and
        // drained after the run. Worker-process shards are separate
        // binaries and contribute nothing — see PROFILE in the usage.
        gced_obs::set_enabled(true);
        gced_obs::set_ambient(true);
    }

    let merged = if shards == 1 {
        let output = run_shard_cached(
            &experiment,
            kind,
            scale,
            seed,
            ShardSpec::single(),
            fit_cache.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        report_fit_cache(&experiment, fit_cache.as_deref());
        merge(&[output]).map_err(|e| e.to_string())?
    } else if p.switch("in-process") {
        let merged = run_sharded_in_process_cached(
            &experiment,
            kind,
            scale,
            seed,
            shards,
            fit_cache.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        report_fit_cache(&experiment, fit_cache.as_deref());
        merged
    } else {
        run_sharded_processes(
            &experiment,
            kind,
            scale,
            scale_flag.as_str(),
            seed,
            shards,
            fit_cache,
        )?
    };
    if let Some(path) = &profile {
        write_profile(path, &gced_obs::drain_ambient())?;
    }
    write_or_print(p.flag("out"), &merged.render())?;
    Ok(ExitCode::SUCCESS)
}

/// Print the fit-cache artifact size (CI records it next to the bench
/// artifacts).
fn report_fit_cache(experiment: &str, path: Option<&Path>) {
    if let Some(path) = path {
        if let Ok(meta) = std::fs::metadata(path) {
            eprintln!(
                "gced: fit cache for {experiment}: {} ({} bytes)",
                path.display(),
                meta.len()
            );
        }
    }
}

/// Spawn one `gced shard` child process per shard (all concurrently),
/// collect their JSON outputs, and merge. Shard files land in a
/// per-invocation scratch dir keyed on the run identity plus a
/// process-unique nonce; a leftover dir from a crashed or concurrent
/// run with the same key fails loudly instead of risking a stale shard
/// JSON being merged.
#[allow(clippy::too_many_arguments)]
fn run_sharded_processes(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    scale_flag: &str,
    seed: u64,
    shards: usize,
    fit_cache: Option<PathBuf>,
) -> Result<gced_eval::MergedRun, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate gced binary: {e}"))?;
    let dir = std::env::temp_dir().join(format!(
        "gced-shards-{experiment}-{}-{seed}-{}",
        kind.cli_flag(),
        std::process::id()
    ));
    // create_dir (not create_dir_all) is the collision check: it fails
    // on an existing dir, so stale files can never be merged silently.
    std::fs::create_dir(&dir).map_err(|e| {
        format!(
            "cannot create shard scratch dir {}: {e}\n\
             (a concurrent run with the same experiment/seed, or leftovers \
             from a crashed run — remove the directory if it is stale)",
            dir.display()
        )
    })?;
    // Fit once in the driver and hand every shard the artifact; without
    // an explicit --fit-cache the artifact is scratch, removed with the
    // shard files below.
    let cache_path = if needs_fit(experiment) {
        let path = fit_cache.unwrap_or_else(|| dir.join("fit-cache.bin"));
        if let Err(e) = load_or_fit(kind, scale, seed, Some(&path)) {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(e.to_string());
        }
        eprintln!(
            "gced: fit cache {} ({}, {} bytes)",
            path.display(),
            fit_fingerprint(kind, scale, seed),
            std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
        );
        Some(path)
    } else {
        None
    };
    let result = drive_shards(
        &exe,
        &dir,
        experiment,
        kind,
        scale_flag,
        seed,
        shards,
        cache_path.as_deref(),
    );
    // Shard files are per-invocation scratch: remove them on failure
    // too, or failed runs would accumulate under the system temp dir.
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_arguments)]
fn drive_shards(
    exe: &Path,
    dir: &Path,
    experiment: &str,
    kind: DatasetKind,
    scale_flag: &str,
    seed: u64,
    shards: usize,
    fit_cache: Option<&Path>,
) -> Result<gced_eval::MergedRun, String> {
    let shard_path = |i: usize| dir.join(format!("{experiment}-shard-{i}-of-{shards}.json"));
    let mut children = Vec::with_capacity(shards);
    for i in 0..shards {
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("shard")
            .arg(experiment)
            .args(["--shard-index", &i.to_string()])
            .args(["--of", &shards.to_string()])
            .args(["--kind", kind.cli_flag()])
            .args(["--scale", scale_flag])
            .args(["--seed", &seed.to_string()])
            .arg("--out")
            .arg(shard_path(i));
        if let Some(cache) = fit_cache {
            cmd.arg("--fit-cache").arg(cache);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn shard {i}: {e}"))?;
        children.push((i, child));
    }
    let mut failures = Vec::new();
    for (i, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("shard {i} did not finish: {e}"))?;
        if !status.success() {
            failures.push(format!("shard {i} exited with {status}"));
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    let outputs = (0..shards)
        .map(|i| read_shard_file(&shard_path(i)))
        .collect::<Result<Vec<_>, _>>()?;
    merge(&outputs).map_err(|e| e.to_string())
}

fn read_shard_file(path: &Path) -> Result<ShardOutput, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read shard output {}: {e}", path.display()))?;
    ShardOutput::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// shard
// ---------------------------------------------------------------------------

fn cmd_shard(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    let experiment = p
        .positional
        .first()
        .ok_or_else(|| format!("shard: missing experiment name\n\n{USAGE}"))?;
    let index = p
        .flag("shard-index")
        .ok_or("shard: --shard-index is required")?
        .parse::<usize>()
        .map_err(|_| "shard: --shard-index: bad number".to_string())?;
    let of = p
        .flag("of")
        .ok_or("shard: --of is required")?
        .parse::<usize>()
        .map_err(|_| "shard: --of: bad number".to_string())?;
    let spec = ShardSpec::new(index, of)?;
    let (scale, _) = p.scale()?;
    let fit_cache = p.flag("fit-cache").map(PathBuf::from);
    let output = run_shard_cached(
        experiment,
        p.kind()?,
        scale,
        p.seed()?,
        spec,
        fit_cache.as_deref(),
    )
    .map_err(|e| e.to_string())?;
    write_or_print(p.flag("out"), &output.to_json())?;
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

fn cmd_merge(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    if p.positional.is_empty() {
        return Err(format!("merge: no shard files given\n\n{USAGE}"));
    }
    let outputs = p
        .positional
        .iter()
        .map(|f| read_shard_file(Path::new(f)))
        .collect::<Result<Vec<_>, _>>()?;
    let merged = merge(&outputs).map_err(|e| e.to_string())?;
    write_or_print(p.flag("out"), &merged.render())?;
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// bench-check
// ---------------------------------------------------------------------------

fn cmd_bench_check(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    let baseline_path = p.flag("baseline").unwrap_or("BENCH_pipeline.json");
    let results_dir = PathBuf::from(p.flag("results").unwrap_or("target/gced-criterion"));
    let tolerance = match p.flag("tolerance") {
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("--tolerance: bad number {v:?}"))?,
        None => 0.35,
    };
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = gate::parse_baseline(&baseline_text)?;
    let fresh = gate::load_results(&results_dir)?;
    let report = gate::compare(&baseline, &fresh, tolerance);
    let markdown = report.markdown();
    print!("{markdown}");
    if let Some(summary) = p.flag("summary") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(summary)
            .map_err(|e| format!("cannot open summary {summary}: {e}"))?;
        f.write_all(markdown.as_bytes())
            .map_err(|e| format!("cannot write summary {summary}: {e}"))?;
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// ---------------------------------------------------------------------------
// serve / distill / fit
// ---------------------------------------------------------------------------

/// Resolve the warm pipeline for `serve`/`distill`: dataset kind, scale
/// and seed pick the fit; `--fit-cache` loads (or creates) the shared
/// artifact so start-up maps instead of re-fitting.
fn warm_pipeline(p: &Parsed) -> Result<(gced::Gced, String), String> {
    let (scale, _) = p.scale()?;
    let seed = p.seed()?;
    let kind = p.kind()?;
    let fit_cache = p.flag("fit-cache").map(PathBuf::from);
    if let Some(path) = &fit_cache {
        ensure_parent_dir(path)?;
    }
    let fitted = load_or_fit(kind, scale, seed, fit_cache.as_deref()).map_err(|e| e.to_string())?;
    Ok((fitted, fit_fingerprint(kind, scale, seed)))
}

/// The parse-cache warmup corpus of a fingerprint: the distinct dev
/// contexts of the dataset the pipeline was fitted for, capped at
/// `max_docs`. Deterministic and identical to the corpus first requests
/// are most likely to carry.
fn warmup_corpus(kind: DatasetKind, scale: Scale, seed: u64, max_docs: usize) -> Vec<String> {
    if max_docs == 0 {
        return Vec::new();
    }
    let ds = gced_datasets::generate(
        kind,
        gced_datasets::GeneratorConfig {
            train: scale.train,
            dev: scale.dev,
            seed,
        },
    );
    let mut seen = std::collections::HashSet::new();
    let mut docs = Vec::new();
    for ex in &ds.dev.examples {
        if seen.insert(ex.context.as_str()) {
            docs.push(ex.context.clone());
            if docs.len() >= max_docs {
                break;
            }
        }
    }
    docs
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    let mut config = gced_serve::ServeConfig {
        addr: p.flag("addr").unwrap_or("127.0.0.1:7314").to_string(),
        ..gced_serve::ServeConfig::default()
    };
    config.batch_max = p.usize_flag("batch-max", config.batch_max)?;
    config.queue_capacity = p.usize_flag("queue-cap", config.queue_capacity)?;
    config.parse_cache = p.usize_flag("parse-cache", config.parse_cache)?;
    config.max_requests_per_conn = p.usize_flag("conn-max", config.max_requests_per_conn)?;
    if config.max_requests_per_conn == 0 {
        return Err("serve: --conn-max must be at least 1".to_string());
    }
    let flush_us = p.usize_flag("flush-us", config.flush.as_micros() as usize)?;
    config.flush = std::time::Duration::from_micros(flush_us as u64);
    let deadline_ms = p.usize_flag(
        "request-deadline-ms",
        config.request_deadline.as_millis() as usize,
    )?;
    config.request_deadline = std::time::Duration::from_millis(deadline_ms as u64);
    let read_deadline_ms = p.usize_flag(
        "read-deadline-ms",
        config.read_deadline.as_millis() as usize,
    )?;
    config.read_deadline = std::time::Duration::from_millis(read_deadline_ms as u64);
    config.cache_entries = p.usize_flag("cache-entries", config.cache_entries)?;
    config.cache_bytes = p.usize_flag("cache-bytes", config.cache_bytes)?;
    config.cache_ttl_ops = p.usize_flag("cache-ttl-ops", config.cache_ttl_ops as usize)? as u64;
    config.cache_shards = p.usize_flag("cache-shards", config.cache_shards)?;
    // --fault-plan wins over the GCED_CHAOS env var (same grammar).
    let fault_spec = p
        .flag("fault-plan")
        .map(str::to_string)
        .or_else(|| std::env::var("GCED_CHAOS").ok().filter(|s| !s.is_empty()));
    if let Some(spec) = fault_spec {
        if !gced_serve::fault::ENABLED {
            return Err(
                "serve: this binary was built without the gced-serve `chaos` feature; \
                 --fault-plan / GCED_CHAOS cannot inject anything"
                    .to_string(),
            );
        }
        let plan = gced_serve::fault::FaultPlan::parse(&spec).map_err(|e| format!("serve: {e}"))?;
        if !plan.is_empty() {
            eprintln!("gced: CHAOS faults armed: {spec}");
        }
        config.fault_plan = Some(std::sync::Arc::new(plan));
    }
    let warmup_docs = p.usize_flag("warmup", usize::MAX)?;
    let (fitted, fingerprint) = warm_pipeline(&p)?;
    if config.parse_cache > 0 && warmup_docs > 0 {
        let (scale, _) = p.scale()?;
        config.warmup_docs = warmup_corpus(p.kind()?, scale, p.seed()?, warmup_docs);
    }
    // `start` consumes the warmup corpus; capture the banner fields
    // first so no second copy of the dev contexts outlives startup.
    let n_warmup = config.warmup_docs.len();
    // The cache plan as the server will actually run it: build a
    // throwaway store so the logged shard count reflects the
    // power-of-two / capacity clamping, not the raw flag.
    let cache_plan = {
        let probe = gced_store::ResponseStore::new(gced_store::StoreConfig {
            entries: config.cache_entries,
            bytes: config.cache_bytes,
            ttl_ops: config.cache_ttl_ops,
            shards: config.cache_shards,
        });
        if probe.enabled() {
            format!(
                "entries:{},bytes:{},ttl_ops:{},shards:{}",
                config.cache_entries,
                config.cache_bytes,
                config.cache_ttl_ops,
                probe.shard_count(),
            )
        } else {
            "off".to_string()
        }
    };
    let banner = format!(
        "batch_max={}, flush={}us, queue_cap={}, parse_cache={}, warmup_docs={n_warmup}, \
         conn_max={}, request_deadline={}ms, read_deadline={}ms, pool_threads={}, \
         cache={cache_plan}",
        config.batch_max,
        config.flush.as_micros(),
        config.queue_capacity,
        config.parse_cache,
        config.max_requests_per_conn,
        config.request_deadline.as_millis(),
        config.read_deadline.as_millis(),
        gced_par::effective_parallelism(),
    );
    let bind_addr = config.addr.clone();
    let handle =
        gced_serve::start(fitted, config).map_err(|e| format!("cannot bind {bind_addr}: {e}"))?;
    eprintln!(
        "gced: serving {fingerprint} on http://{} ({banner})",
        handle.addr()
    );
    handle.join();
    eprintln!("gced: server drained and stopped");
    Ok(ExitCode::SUCCESS)
}

/// The retrying chaos client (see PROBE in the usage text): posts one
/// distill request `--requests` times over `--clients` concurrent
/// sessions with `Session::post_with_retry`, requiring every request to
/// end 200 (and, with `--expect`, byte-identical to the given file).
/// `--repeat`/`--duplicates` replay the workload so later posts land in
/// the server's response cache; X-Gced-Cache headers then split the
/// latency summary into hit and miss quantiles.
fn cmd_probe(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    let required = |name: &str| -> Result<String, String> {
        p.flag(name)
            .map(str::to_string)
            .ok_or_else(|| format!("probe: --{name} is required"))
    };
    let addr: std::net::SocketAddr = required("addr")?
        .parse()
        .map_err(|e| format!("probe: bad --addr: {e}"))?;
    let body = gced_serve::wire::render_request(&gced_serve::wire::DistillRequest {
        question: required("question")?,
        answer: required("answer")?,
        context: required("context")?,
    });
    let requests = p.usize_flag("requests", 16)?;
    let clients = p.usize_flag("clients", 4)?.max(1);
    let repeat = p.usize_flag("repeat", 1)?.max(1);
    let duplicates = p.switch("duplicates");
    let copies = if duplicates { 2usize } else { 1 };
    let retries = p.usize_flag("retries", 8)? as u32;
    let base = std::time::Duration::from_millis(p.usize_flag("retry-base-ms", 50)? as u64);
    let cap = std::time::Duration::from_millis(p.usize_flag("retry-cap-ms", 2000)? as u64);
    let seed = p.seed()?;
    let expect: Option<Vec<u8>> = match p.flag("expect") {
        Some(path) => Some(
            std::fs::read(path).map_err(|e| format!("probe: cannot read --expect {path}: {e}"))?,
        ),
        None => None,
    };
    let expect = expect.as_deref();
    let body = body.as_str();
    // Per-request wall latency (µs), retries and backoff included:
    // recorded into the same fixed-bucket histogram the server's
    // /metrics uses, so the p50/p99 estimates match its math. The
    // histogram cannot see past its last bound, so true min/max ride
    // alongside as atomics.
    let latency = gced_serve::metrics::Histogram::new(gced_serve::metrics::LATENCY_BOUNDS_US);
    let lat_min = std::sync::atomic::AtomicU64::new(u64::MAX);
    let lat_max = std::sync::atomic::AtomicU64::new(0);
    // Hit/miss split: requests tagged by the server's X-Gced-Cache
    // header land in their own histogram so --repeat/--duplicates runs
    // can show warm-hit latency separately from pipeline misses.
    let hit_latency = gced_serve::metrics::Histogram::new(gced_serve::metrics::LATENCY_BOUNDS_US);
    let miss_latency = gced_serve::metrics::Histogram::new(gced_serve::metrics::LATENCY_BOUNDS_US);
    let outcomes: Vec<Result<usize, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (latency, lat_min, lat_max) = (&latency, &lat_min, &lat_max);
                let (hit_latency, miss_latency) = (&hit_latency, &miss_latency);
                s.spawn(move || -> Result<usize, String> {
                    let policy = gced_serve::client::RetryPolicy {
                        budget: retries,
                        base,
                        cap,
                        seed: seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    };
                    let mut session = connect_with_patience(addr)?;
                    let mut served = 0usize;
                    for round in 0..repeat {
                        for i in (c..requests).step_by(clients) {
                            for _copy in 0..copies {
                                let watch = gced_obs::clock::Stopwatch::start();
                                let r = session
                                    .post_with_retry("/v1/distill", body, &policy)
                                    .map_err(|e| {
                                        format!("client {c} round {round} request {i}: {e}")
                                    })?;
                                let us = watch.elapsed_ns() / 1_000;
                                latency.record(us);
                                lat_min.fetch_min(us, std::sync::atomic::Ordering::Relaxed);
                                lat_max.fetch_max(us, std::sync::atomic::Ordering::Relaxed);
                                match r.cache.as_deref() {
                                    Some("hit") => hit_latency.record(us),
                                    Some("miss") => miss_latency.record(us),
                                    _ => {}
                                }
                                if r.status != 200 {
                                    return Err(format!(
                                        "client {c} round {round} request {i}: \
                                         terminal status {}: {}",
                                        r.status,
                                        r.text()
                                    ));
                                }
                                if let Some(exp) = expect {
                                    if r.body != exp {
                                        return Err(format!(
                                            "client {c} round {round} request {i}: 200 body \
                                             differs from --expect ({} vs {} bytes)",
                                            r.body.len(),
                                            exp.len()
                                        ));
                                    }
                                }
                                served += 1;
                            }
                        }
                    }
                    Ok(served)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let mut served = 0usize;
    let mut failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(n) => served += n,
            Err(e) => failures.push(e),
        }
    }
    let expected = requests * repeat * copies;
    if !failures.is_empty() {
        return Err(format!(
            "probe: {} of {expected} requests failed:\n  {}",
            expected - served,
            failures.join("\n  ")
        ));
    }
    eprintln!(
        "gced: probe ok — {served} requests over {clients} clients all answered 200{}",
        if expect.is_some() {
            ", bodies byte-identical to --expect"
        } else {
            ""
        }
    );
    if latency.count() > 0 {
        eprintln!(
            "gced: probe latency (us, per request incl. retries): \
             min={} p50={:.0} p99={:.0} max={}",
            lat_min.load(std::sync::atomic::Ordering::Relaxed),
            latency.quantile(0.50),
            latency.quantile(0.99),
            lat_max.load(std::sync::atomic::Ordering::Relaxed),
        );
    }
    let (hits, misses) = (hit_latency.count(), miss_latency.count());
    if hits + misses > 0 {
        eprintln!(
            "gced: probe cache split: hits={hits} misses={misses} hit_rate={:.3}",
            hits as f64 / (hits + misses) as f64
        );
        if hits > 0 {
            eprintln!(
                "gced: probe hit latency (us): p50={:.0} p99={:.0}",
                hit_latency.quantile(0.50),
                hit_latency.quantile(0.99),
            );
        }
        if misses > 0 {
            eprintln!(
                "gced: probe miss latency (us): p50={:.0} p99={:.0}",
                miss_latency.quantile(0.50),
                miss_latency.quantile(0.99),
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Dial the probe target, tolerating a server that is still starting
/// up (CI launches `gced serve` in the background).
fn connect_with_patience(
    addr: std::net::SocketAddr,
) -> Result<gced_serve::client::Session, String> {
    // gced-allow(DET003): startup-patience deadline for the probe's first connect — bounds the wait, never reaches a result
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match gced_serve::client::Session::connect(addr) {
            Ok(s) => return Ok(s),
            // gced-allow(DET003): same startup-patience clock as the deadline above
            Err(e) if std::time::Instant::now() >= deadline => {
                return Err(format!("probe: cannot connect to {addr}: {e}"))
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(250)),
        }
    }
}

fn cmd_distill(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    let required = |name: &str| -> Result<String, String> {
        p.flag(name)
            .map(str::to_string)
            .ok_or_else(|| format!("distill: --{name} is required"))
    };
    let question = required("question")?;
    let answer = required("answer")?;
    let context = required("context")?;
    let profile = p.flag("profile").map(str::to_string);
    let (fitted, _) = warm_pipeline(&p)?;
    // The exact response-body bytes the server produces for this input
    // (tests/serve_parity.rs and the CI smoke job byte-compare them).
    // --profile traces the same call: the body bytes are identical
    // either way (timings never reach the output).
    let (result, tree) = if profile.is_some() {
        gced_obs::set_enabled(true);
        fitted.distill_traced(&question, &answer, &context)
    } else {
        (fitted.distill(&question, &answer, &context), None)
    };
    if let Some(path) = &profile {
        let spans: Vec<(u64, gced_obs::SpanNode)> = tree.into_iter().map(|t| (1, t)).collect();
        write_profile(path, &spans)?;
    }
    // The body leads with the same evidence_id the server would assign:
    // the id is a pure function of the request (hex fingerprint), so
    // offline output stays byte-identical to served and replayed bytes.
    let evidence_id = gced_store::evidence_id(gced_store::request_fingerprint(
        &question, &answer, &context,
    ));
    let (body, code) = match result {
        Ok(d) => (
            gced_serve::wire::render_distillation_with_id(&evidence_id, &d),
            ExitCode::SUCCESS,
        ),
        Err(e) => (
            gced_serve::wire::render_error(&e.to_string()),
            ExitCode::FAILURE,
        ),
    };
    write_or_print(p.flag("out"), &body)?;
    Ok(code)
}

fn cmd_fit(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    if p.flag("fit-cache").is_none() {
        return Err("fit: --fit-cache is required (the artifact to build)".to_string());
    }
    let (_, fingerprint) = warm_pipeline(&p)?;
    let path = p.flag("fit-cache").expect("checked above");
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    eprintln!("gced: fit cache {path} ready ({fingerprint}, {bytes} bytes)");
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let p = parse_args(args)?;
    if p.switch("fix") {
        return Err(
            "analyze: there is no --fix, deliberately. Every finding is an \
                    invariant decision: sort the iteration (DET001), route the \
                    reduction through gced_nn::kernels (DET002), move the clock read \
                    into a timing module (DET003/DET004), or write down the SAFETY \
                    argument (SAFE001/SAFE002). If the code is right as written, say \
                    why inline: // gced-allow(LINT_ID): reason"
                .to_string(),
        );
    }
    let root = PathBuf::from(p.flag("root").unwrap_or("."));
    let report = gced_analyze::analyze(&root)?;
    let text = if p.switch("json") {
        report.render_json()
    } else {
        report.render_text()
    };
    write_or_print(p.flag("out"), &text)?;
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
