//! Facade crate re-exporting the whole Grow-and-Clip workspace.
pub use gced as core;
pub use gced_datasets as datasets;
pub use gced_eval as eval;
pub use gced_lexicon as lexicon;
pub use gced_lm as lm;
pub use gced_metrics as metrics;
pub use gced_nn as nn;
pub use gced_obs as obs;
pub use gced_parser as parser;
pub use gced_qa as qa;
pub use gced_serve as serve;
pub use gced_text as text;
