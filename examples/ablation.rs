//! Component ablation demo (a small Table VIII).
//!
//! Knocks out each GCED component in turn and shows the effect on the
//! distilled evidence for one QA pair — a qualitative view of what each
//! module contributes (ASE filters sentences, QWS keeps question signal,
//! Grow connects, Clip shortens).
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use gced::{Ablation, Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};

fn main() {
    let dataset = generate(
        DatasetKind::Squad20,
        GeneratorConfig {
            train: 300,
            dev: 50,
            seed: 42,
        },
    );
    let base = Gced::fit(&dataset, GcedConfig::default());

    let question = "Which team did the Denver Broncos defeat in the Super Bowl 50?";
    let answer = "Carolina Panthers";
    let context = "The American Football Conference (AFC) champion Denver Broncos defeated \
                   the National Football Conference (NFC) champion Carolina Panthers to earn \
                   the Super Bowl 50 title. The Super Bowl 50 was played at Lockwood Stadium \
                   in Boston. Coach Henry Mercer had led the Broncos for many seasons before \
                   the final. Fans celebrated in the streets of Denver for several days.";

    println!("question: {question}");
    println!("answer  : {answer}\n");

    let mut variants: Vec<(String, Ablation)> = vec![("full GCED".into(), Ablation::full())];
    for c in Ablation::table8_rows() {
        variants.push((format!("w/o {c}"), Ablation::without(c)));
    }

    for (label, ablation) in variants {
        let cfg = GcedConfig {
            ablation,
            ..GcedConfig::default()
        };
        let pipeline = base.clone().with_config(cfg);
        match pipeline.distill(question, answer, context) {
            Ok(d) => {
                println!(
                    "{label:<10} | {:>2} tokens | I {:.2} C {:.2} R {:.2} | {}",
                    d.evidence_tokens.len(),
                    d.scores.informativeness,
                    d.scores.conciseness.max(0.0),
                    d.scores.readability,
                    d.evidence
                );
            }
            Err(e) => println!("{label:<10} | failed: {e}"),
        }
    }
}
