//! Fig. 7-style degradation sweep (compact).
//!
//! Substitutes a growing fraction δ of ground-truth answers with a QA
//! model's predicted answers before evidence distillation and shows how
//! EM/F1 of the evidence-retrained model degrades — the paper's
//! observation is a graceful 2-3% drop on SQuAD even at δ = 1.
//!
//! ```sh
//! cargo run --release --example degradation
//! ```

use gced_datasets::DatasetKind;
use gced_eval::experiments::{self, ExperimentContext};
use gced_eval::Scale;
use gced_qa::zoo;

fn main() {
    let scale = Scale {
        train: 240,
        dev: 80,
        rated: 0,
    };
    println!("preparing context (this distills the ground-truth evidence caches) ...");
    let ctx = ExperimentContext::prepare(DatasetKind::Squad11, scale, 42);

    // Two contrasting models: the weakest and one of the strongest.
    let squad = zoo::squad_models();
    let models = vec![squad[0].clone(), squad[8].clone()];
    let deltas = [0.0, 0.2, 0.5, 0.8, 1.0];

    println!("\nrunning δ sweep (0 = ground-truth answers only) ...\n");
    let series = experiments::degradation(&ctx, &models, &deltas);
    println!(
        "{:<16} {}",
        "model",
        deltas.map(|d| format!("δ={d:<4}")).join("   ")
    );
    for s in &series {
        let row: Vec<String> = s
            .points
            .iter()
            .map(|(_, em, f1)| format!("{em:.0}/{f1:.0}"))
            .collect();
        println!("{:<16} {}", s.model, row.join("   "));
    }
    println!("\n(cells are EM/F1; the paper's Fig. 7 shows the same gentle downward trend)");
}
