//! Case study: the paper's Fig. 8 walkthrough.
//!
//! The published case study distills, for the question "What did Beyoncé
//! perform in as a child?", the evidence "Beyoncé Giselle Knowles-Carter
//! performed in singing and dancing competitions as a child" from a
//! four-sentence biography. This example reproduces the same walkthrough
//! on the synthetic music domain (which includes a hyphenated-surname
//! artist template for exactly this reason) and prints every pipeline
//! decision: ASE selection, clue words, forest, grow steps, clip steps.
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};

fn main() {
    let dataset = generate(
        DatasetKind::Squad11,
        GeneratorConfig {
            train: 300,
            dev: 50,
            seed: 42,
        },
    );
    let gced = Gced::fit(&dataset, GcedConfig::default());

    // A Fig. 8-style biography: the artist's early competitions are the
    // QA-related part; birth, fame, and critical reception are noise.
    let artist = "Maria Giselle Knowles-Carter";
    let question = format!("What did {artist} perform in as a child?");
    let answer = "singing and dancing competitions";
    let context = format!(
        "{artist} was born and raised in Savannah. \
         {artist} performed in various singing and dancing competitions as a child. \
         {artist} rose to fame in the 1990s as the lead singer of a famous soul band. \
         Critics praised the album for its bold style and clear voice."
    );

    println!("=== Fig. 8 case study ===\n");
    println!("question : {question}");
    println!("answer   : {answer}");
    println!("context  :");
    for sentence in context.split(". ") {
        println!("   {sentence}");
    }

    let d = gced
        .distill(&question, answer, &context)
        .expect("distillation succeeds");

    println!("\n--- pipeline decisions ---");
    print!("{}", d.trace);
    println!("\n--- result ---");
    println!("answer-oriented sentences: {}", d.aos_text);
    println!("distilled evidence       : {}", d.evidence);
    println!(
        "scores                   : I = {:.3}  C = {:.3}  R = {:.3}  H = {:.3}",
        d.scores.informativeness, d.scores.conciseness, d.scores.readability, d.scores.hybrid
    );
    println!(
        "word reduction           : {:.1}%",
        d.word_reduction * 100.0
    );

    // The paper's qualitative claims for this case study:
    assert!(
        d.evidence.contains("singing and dancing competitions"),
        "evidence must preserve the answer"
    );
    assert!(
        d.evidence.split_whitespace().count() < context.split_whitespace().count() / 2,
        "evidence must be much shorter than the context"
    );
    println!("\ncase-study checks passed: answer preserved, evidence concise.");
}
