//! Stage-level timing of one distillation (diagnostic).
use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use std::time::Instant;

fn main() {
    let ds = generate(
        DatasetKind::Squad11,
        GeneratorConfig {
            train: 200,
            dev: 40,
            seed: 42,
        },
    );
    let gced = Gced::fit(&ds, GcedConfig::default());
    let question = "Which NFL team represented the AFC at Super Bowl 50?";
    let context = "The American Football Conference (AFC) champion Denver Broncos defeated \
                   the National Football Conference (NFC) champion Carolina Panthers to earn \
                   the Super Bowl 50 title. The game was played at Lockwood Stadium in Boston. \
                   The halftime show featured a famous singer and a large fireworks display.";
    // Warm.
    for _ in 0..20 {
        let _ = gced.distill(question, "Denver Broncos", context).unwrap();
    }
    let n = 200;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = gced.distill(question, "Denver Broncos", context).unwrap();
    }
    println!(
        "distill total: {:.3} ms",
        t0.elapsed().as_secs_f64() * 1000.0 / n as f64
    );

    // Stage timings replicated from distill internals.
    let ctx_doc = gced_text::analyze(context);
    let t = Instant::now();
    for _ in 0..n {
        let _ = gced_text::analyze(context);
    }
    println!(
        "analyze ctx:   {:.3} ms",
        t.elapsed().as_secs_f64() * 1000.0 / n as f64
    );

    let d = gced.distill(question, "Denver Broncos", context).unwrap();
    println!(
        "aos sentences: {:?} / {} ctx tokens -> aos len {}",
        d.trace.ase.as_ref().map(|a| a.sentences.clone()),
        ctx_doc.len(),
        gced_text::analyze(&d.aos_text).len()
    );
    println!("clip steps: {}", d.trace.clip_steps.len());
    let aos = gced_text::analyze(&d.aos_text);
    let words: Vec<String> = aos.tokens.iter().map(|t| t.lower()).collect();

    use gced_nn::{AttentionConfig, EmbeddingTable, MultiHeadAttention};
    let cfg = AttentionConfig {
        d_model: 64,
        heads: 16,
        d_k: 64,
        seed: 42,
        positional_weight: 0.35,
    };
    let mha = MultiHeadAttention::new(cfg);
    let table = EmbeddingTable::new(64, 42);
    let t = Instant::now();
    for _ in 0..n {
        let _ = mha.attend_words(&words, &table);
    }
    println!(
        "attention aos ({} tokens): {:.3} ms",
        words.len(),
        t.elapsed().as_secs_f64() * 1000.0 / n as f64
    );

    let parser = gced_parser::CkyParser::embedded();
    let t = Instant::now();
    for _ in 0..n {
        let _ = gced_parser::parse_document_with(&aos, &parser);
    }
    println!(
        "cky parse aos: {:.3} ms",
        t.elapsed().as_secs_f64() * 1000.0 / n as f64
    );

    // ASE alone.
    use gced::scoring::EvidenceScorer;
    let weights = gced.config().effective_weights();
    let ppl_ref = 50.0; // close enough for timing
    let scorer = EvidenceScorer::new(
        gced.qa_model(),
        gced.lm(),
        question,
        "Denver Broncos",
        ppl_ref,
        weights,
    );
    let t = Instant::now();
    for _ in 0..n {
        let mut grow = scorer.search_context(&ctx_doc);
        let _ = gced::ase::extract(&mut grow, 4);
    }
    println!(
        "ase extract:   {:.3} ms",
        t.elapsed().as_secs_f64() * 1000.0 / n as f64
    );

    // One qa predict on the 29-token AOS (the clip candidate unit cost).
    let t = Instant::now();
    for _ in 0..n {
        let _ = gced
            .qa_model()
            .predict_analyzed(scorer.question_analysis(), &aos, question);
    }
    println!(
        "qa predict aos: {:.3} ms",
        t.elapsed().as_secs_f64() * 1000.0 / n as f64
    );

    // finish-stage score_selection.
    let all: std::collections::BTreeSet<usize> = (0..aos.len()).collect();
    let t = Instant::now();
    for _ in 0..n {
        let _ = scorer.score_selection(&aos, &all);
    }
    println!(
        "score_selection: {:.3} ms",
        t.elapsed().as_secs_f64() * 1000.0 / n as f64
    );
}
// Appended fine-grained stage timings (uses public pipeline pieces).
