//! Full dataset pipeline: generate → fit → distill → evaluate.
//!
//! Walks the whole system the way the paper's evaluation does: builds a
//! synthetic SQuAD-style dataset, fits GCED, distills ground-truth-based
//! evidences for the dev split, and compares a baseline QA model on raw
//! contexts vs. evidence contexts (one row of Table VI).
//!
//! ```sh
//! cargo run --release --example squad_pipeline
//! ```

use gced_datasets::DatasetKind;
use gced_eval::experiments::{self, ExperimentContext};
use gced_eval::Scale;
use gced_qa::zoo;

fn main() {
    let scale = Scale {
        train: 300,
        dev: 100,
        rated: 32,
    };
    println!(
        "preparing {} at scale train={} dev={} (fit + evidence caches) ...",
        DatasetKind::Squad11.name(),
        scale.train,
        scale.dev
    );
    let ctx = ExperimentContext::prepare(DatasetKind::Squad11, scale, 42);

    println!(
        "mean ground-truth evidence word reduction: {:.1}% (paper reports 78.5% on SQuAD)",
        ctx.mean_word_reduction() * 100.0
    );

    // A couple of sample distillations.
    println!("\nsample evidences:");
    for (ex, ev) in ctx.dataset.dev.examples.iter().zip(&ctx.gt_dev).take(30) {
        if let Some(d) = ev {
            if d.scores.informativeness > 0.9 {
                println!("  Q: {}", ex.question);
                println!("  A: {}", ex.answer);
                println!("  E: {}\n", d.evidence);
            }
        }
    }

    // One Table VI row: BERT-large baseline vs +GCED.
    let bert = &zoo::squad_models()[..1];
    println!("evaluating BERT-large baseline vs +GCED ...");
    let rows = experiments::qa_augmentation(&ctx, bert);
    for r in &rows {
        println!(
            "{}: baseline EM/F1 = {:.1}/{:.1}  |  +GCED EM/F1 = {:.1}/{:.1}  \
             (paper: {:.1}/{:.1} -> {:.1}/{:.1})",
            r.model,
            r.base.em,
            r.base.f1,
            r.gced.em,
            r.gced.f1,
            r.paper_base.0,
            r.paper_base.1,
            r.paper_gced.0,
            r.paper_gced.1
        );
    }
}
