//! Quickstart: distill one informative-yet-concise evidence.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};

fn main() {
    // 1. A small synthetic SQuAD-style dataset to fit the substrates on
    //    (PLM-substitute QA model, trigram LM, embeddings).
    let dataset = generate(
        DatasetKind::Squad11,
        GeneratorConfig {
            train: 300,
            dev: 50,
            seed: 42,
        },
    );
    println!(
        "fitting GCED on {} training examples ...",
        dataset.train.len()
    );
    let gced = Gced::fit(&dataset, GcedConfig::default());

    // 2. The paper's running example (Sec. III, Fig. 6).
    let question = "Which NFL team represented the AFC at Super Bowl 50?";
    let answer = "Denver Broncos";
    let context = "The American Football Conference (AFC) champion Denver Broncos defeated \
                   the National Football Conference (NFC) champion Carolina Panthers to earn \
                   the Super Bowl 50 title. The game was played at Lockwood Stadium in Boston. \
                   The halftime show featured a famous singer and a large fireworks display. \
                   Ticket prices rose to record levels in the weeks before the game.";

    // 3. Distill.
    let d = gced
        .distill(question, answer, context)
        .expect("distillation succeeds");

    println!("\nquestion : {question}");
    println!("answer   : {answer}");
    println!("context  : {} words", context.split_whitespace().count());
    println!("\nevidence : {}", d.evidence);
    println!(
        "           ({} tokens, {:.1}% of the context removed)",
        d.evidence_tokens.len(),
        d.word_reduction * 100.0
    );
    println!(
        "\nscores   : I = {:.3}  C = {:.3}  R = {:.3}  H = {:.3}",
        d.scores.informativeness, d.scores.conciseness, d.scores.readability, d.scores.hybrid
    );
    println!("\n--- trace ---\n{}", d.trace);
}
