//! Shard-parity acceptance tests: a sharded dataset run merged back
//! together must be **bit-identical** to the single-process run — same
//! rows, same metrics, same rendered bytes — for any shard count and
//! any shard completion order.

use gced_datasets::{DatasetKind, ShardSpec};
use gced_eval::experiments::ExperimentContext;
use gced_eval::shard::{merge, run_shard, run_sharded_in_process, ShardOutput};
use gced_eval::Scale;

/// The acceptance criterion: a 3-shard `table3` run at smoke scale
/// merges into output byte-identical to the single-process run (the CI
/// shard-parity step checks the same property through the CLI).
#[test]
fn table3_three_shards_merge_bit_identical() {
    let scale = Scale::smoke();
    let single = merge(&[run_shard(
        "table3",
        DatasetKind::Squad11,
        scale,
        42,
        ShardSpec::single(),
    )
    .unwrap()])
    .unwrap();
    let mut outputs: Vec<ShardOutput> = ShardSpec::all(3)
        .into_iter()
        .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
        .collect();
    // Completion order must not matter: merge them backwards…
    outputs.reverse();
    let merged = merge(&outputs).unwrap();
    assert_eq!(single, merged);
    assert_eq!(single.render(), merged.render());
    // …and through the JSON wire format shards actually travel as.
    let rewired: Vec<ShardOutput> = outputs
        .iter()
        .map(|o| ShardOutput::from_json(&o.to_json()).unwrap())
        .collect();
    assert_eq!(merge(&rewired).unwrap().render(), single.render());
}

#[test]
fn reduction_sharding_is_bit_identical_through_real_distillation() {
    let scale = Scale::smoke();
    let single = merge(&[run_shard(
        "reduction",
        DatasetKind::Squad11,
        scale,
        42,
        ShardSpec::single(),
    )
    .unwrap()])
    .unwrap();
    let in_process =
        run_sharded_in_process("reduction", DatasetKind::Squad11, scale, 42, 3).unwrap();
    assert_eq!(single.render(), in_process.render());
    assert_eq!(single.rows, in_process.rows);
    assert!(!single.rows.is_empty(), "reduction produced no rows");
}

/// `ExperimentContext::prepare_shard` caches must union to the full
/// `prepare` caches: identical entries inside each shard's range, `None`
/// outside it.
#[test]
fn prepare_shard_caches_union_to_full_prepare() {
    let scale = Scale::smoke();
    let full = ExperimentContext::prepare(DatasetKind::Squad11, scale, 42);
    let shards: Vec<ExperimentContext> = ShardSpec::all(2)
        .into_iter()
        .map(|s| ExperimentContext::prepare_shard(DatasetKind::Squad11, scale, 42, s))
        .collect();
    for (spec, ctx) in ShardSpec::all(2).into_iter().zip(&shards) {
        assert_eq!(ctx.dataset, full.dataset, "shared artifacts must match");
        let dev_range = spec.range(full.dataset.dev.len());
        for (i, (sharded, reference)) in ctx.gt_dev.iter().zip(&full.gt_dev).enumerate() {
            if dev_range.contains(&i) {
                assert_eq!(
                    sharded.as_ref().map(|d| &d.evidence),
                    reference.as_ref().map(|d| &d.evidence),
                    "dev example {i} diverged in {spec}"
                );
                assert_eq!(
                    sharded.as_ref().map(|d| d.word_reduction.to_bits()),
                    reference.as_ref().map(|d| d.word_reduction.to_bits()),
                    "dev example {i} reduction diverged in {spec}"
                );
            } else {
                assert!(sharded.is_none(), "dev example {i} outside {spec} not None");
            }
        }
        let train_range = spec.range(full.dataset.train.len());
        let in_range = ctx
            .gt_train
            .iter()
            .enumerate()
            .filter(|(i, d)| !train_range.contains(i) && d.is_some())
            .count();
        assert_eq!(in_range, 0, "train cache leaked outside {spec}");
    }
    // Every full-cache entry is covered by exactly the owning shard.
    for i in 0..full.dataset.dev.len() {
        let owner = ShardSpec::all(2)
            .into_iter()
            .position(|s| s.owns(i, full.dataset.dev.len()))
            .unwrap();
        assert_eq!(
            shards[owner].gt_dev[i].as_ref().map(|d| &d.evidence),
            full.gt_dev[i].as_ref().map(|d| &d.evidence)
        );
    }
}

/// Different seeds or scales must be rejected at merge time rather than
/// silently producing a franken-run.
#[test]
fn merge_rejects_shards_from_different_runs() {
    let scale = Scale::smoke();
    let mut outputs: Vec<ShardOutput> = ShardSpec::all(2)
        .into_iter()
        .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
        .collect();
    outputs[1] = run_shard(
        "table3",
        DatasetKind::Squad11,
        scale,
        7,
        ShardSpec::new(1, 2).unwrap(),
    )
    .unwrap();
    let err = merge(&outputs).unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");
}
