//! Shard-parity acceptance tests: a sharded dataset run merged back
//! together must be **bit-identical** to the single-process run — same
//! rows, same metrics, same rendered bytes — for any shard count and
//! any shard completion order.

use gced_datasets::{DatasetKind, ShardSpec};
use gced_eval::experiments::ExperimentContext;
use gced_eval::shard::{merge, run_shard, run_sharded_in_process, ShardOutput};
use gced_eval::Scale;

/// 1-vs-N-shard parity harness for the experiment runners: the merged
/// N-shard in-process run (shared fit) must render byte-identically to
/// the single-shard run, including through the JSON wire format.
fn assert_shard_parity(experiment: &str, kind: DatasetKind, shards: usize) {
    let scale = Scale::smoke();
    let single_output = run_shard(experiment, kind, scale, 42, ShardSpec::single()).unwrap();
    // Through the wire format the shards actually travel as.
    let rewired = ShardOutput::from_json(&single_output.to_json()).unwrap();
    assert_eq!(single_output, rewired, "{experiment} JSON roundtrip");
    let single = merge(&[single_output]).unwrap();
    let sharded = run_sharded_in_process(experiment, kind, scale, 42, shards).unwrap();
    assert_eq!(
        single.render(),
        sharded.render(),
        "{experiment} {shards}-shard run diverged from the single-shard run"
    );
    assert!(!single.rows.is_empty(), "{experiment} produced no rows");
}

/// The acceptance criterion: a 3-shard `table3` run at smoke scale
/// merges into output byte-identical to the single-process run (the CI
/// shard-parity step checks the same property through the CLI).
#[test]
fn table3_three_shards_merge_bit_identical() {
    let scale = Scale::smoke();
    let single = merge(&[run_shard(
        "table3",
        DatasetKind::Squad11,
        scale,
        42,
        ShardSpec::single(),
    )
    .unwrap()])
    .unwrap();
    let mut outputs: Vec<ShardOutput> = ShardSpec::all(3)
        .into_iter()
        .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
        .collect();
    // Completion order must not matter: merge them backwards…
    outputs.reverse();
    let merged = merge(&outputs).unwrap();
    assert_eq!(single, merged);
    assert_eq!(single.render(), merged.render());
    // …and through the JSON wire format shards actually travel as.
    let rewired: Vec<ShardOutput> = outputs
        .iter()
        .map(|o| ShardOutput::from_json(&o.to_json()).unwrap())
        .collect();
    assert_eq!(merge(&rewired).unwrap().render(), single.render());
}

#[test]
fn reduction_sharding_is_bit_identical_through_real_distillation() {
    let scale = Scale::smoke();
    let single = merge(&[run_shard(
        "reduction",
        DatasetKind::Squad11,
        scale,
        42,
        ShardSpec::single(),
    )
    .unwrap()])
    .unwrap();
    let in_process =
        run_sharded_in_process("reduction", DatasetKind::Squad11, scale, 42, 3).unwrap();
    assert_eq!(single.render(), in_process.render());
    assert_eq!(single.rows, in_process.rows);
    assert!(!single.rows.is_empty(), "reduction produced no rows");
}

/// `ExperimentContext::prepare_shard` caches must union to the full
/// `prepare` caches: identical entries inside each shard's range, `None`
/// outside it.
#[test]
fn prepare_shard_caches_union_to_full_prepare() {
    let scale = Scale::smoke();
    let full = ExperimentContext::prepare(DatasetKind::Squad11, scale, 42);
    let shards: Vec<ExperimentContext> = ShardSpec::all(2)
        .into_iter()
        .map(|s| ExperimentContext::prepare_shard(DatasetKind::Squad11, scale, 42, s))
        .collect();
    for (spec, ctx) in ShardSpec::all(2).into_iter().zip(&shards) {
        assert_eq!(ctx.dataset, full.dataset, "shared artifacts must match");
        let dev_range = spec.range(full.dataset.dev.len());
        for (i, (sharded, reference)) in ctx.gt_dev.iter().zip(&full.gt_dev).enumerate() {
            if dev_range.contains(&i) {
                assert_eq!(
                    sharded.as_ref().map(|d| &d.evidence),
                    reference.as_ref().map(|d| &d.evidence),
                    "dev example {i} diverged in {spec}"
                );
                assert_eq!(
                    sharded.as_ref().map(|d| d.word_reduction.to_bits()),
                    reference.as_ref().map(|d| d.word_reduction.to_bits()),
                    "dev example {i} reduction diverged in {spec}"
                );
            } else {
                assert!(sharded.is_none(), "dev example {i} outside {spec} not None");
            }
        }
        let train_range = spec.range(full.dataset.train.len());
        let in_range = ctx
            .gt_train
            .iter()
            .enumerate()
            .filter(|(i, d)| !train_range.contains(i) && d.is_some())
            .count();
        assert_eq!(in_range, 0, "train cache leaked outside {spec}");
    }
    // Every full-cache entry is covered by exactly the owning shard.
    for i in 0..full.dataset.dev.len() {
        let owner = ShardSpec::all(2)
            .into_iter()
            .position(|s| s.owns(i, full.dataset.dev.len()))
            .unwrap();
        assert_eq!(
            shards[owner].gt_dev[i].as_ref().map(|d| &d.evidence),
            full.gt_dev[i].as_ref().map(|d| &d.evidence)
        );
    }
}

#[test]
fn human_eval_three_shards_merge_bit_identical() {
    assert_shard_parity("human_eval", DatasetKind::Squad11, 3);
}

#[test]
fn agreement_three_shards_merge_bit_identical() {
    assert_shard_parity("agreement", DatasetKind::Squad11, 3);
}

#[test]
fn qa_augmentation_three_shards_merge_bit_identical() {
    assert_shard_parity("qa_augmentation", DatasetKind::Squad11, 3);
}

#[test]
fn ablation_three_shards_merge_bit_identical() {
    assert_shard_parity("ablation", DatasetKind::Squad11, 3);
}

#[test]
fn degradation_three_shards_merge_bit_identical() {
    assert_shard_parity("degradation", DatasetKind::Squad11, 3);
}

/// More shards than items leaves some shards with empty ranges; they
/// must contribute empty outputs that merge cleanly, and aggregate
/// statistics over empty caches must be 0.0 rather than NaN.
#[test]
fn empty_shards_merge_cleanly_and_empty_means_are_zero() {
    let scale = Scale::smoke();
    // `agreement` has exactly 3 items; a 5-way split has 2 empty shards.
    let single = merge(&[run_shard(
        "agreement",
        DatasetKind::Squad11,
        scale,
        42,
        ShardSpec::single(),
    )
    .unwrap()])
    .unwrap();
    let five = run_sharded_in_process("agreement", DatasetKind::Squad11, scale, 42, 5).unwrap();
    assert_eq!(single.render(), five.render());
    // `table3` has 4 items; 7 shards exercise the empty edge cheaply,
    // including the wire format of an empty shard output.
    let outputs: Vec<ShardOutput> = ShardSpec::all(7)
        .into_iter()
        .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
        .collect();
    assert!(outputs.iter().any(|o| o.rows.is_empty()));
    let rewired: Vec<ShardOutput> = outputs
        .iter()
        .map(|o| ShardOutput::from_json(&o.to_json()).unwrap())
        .collect();
    let single3 = merge(&[run_shard(
        "table3",
        DatasetKind::Squad11,
        scale,
        42,
        ShardSpec::single(),
    )
    .unwrap()])
    .unwrap();
    assert_eq!(merge(&rewired).unwrap().render(), single3.render());
    // A context whose caches were skipped entirely reports 0.0 mean
    // word reduction (not NaN) — the empty-shard aggregate edge.
    let ctx = ExperimentContext::prepare_with(DatasetKind::Squad11, scale, 42, None, None);
    let mean = ctx.mean_word_reduction();
    assert!(!mean.is_nan(), "mean_word_reduction must not be NaN");
    assert_eq!(mean, 0.0);
}

/// Different seeds or scales must be rejected at merge time rather than
/// silently producing a franken-run.
#[test]
fn merge_rejects_shards_from_different_runs() {
    let scale = Scale::smoke();
    let mut outputs: Vec<ShardOutput> = ShardSpec::all(2)
        .into_iter()
        .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
        .collect();
    outputs[1] = run_shard(
        "table3",
        DatasetKind::Squad11,
        scale,
        7,
        ShardSpec::new(1, 2).unwrap(),
    )
    .unwrap();
    let err = merge(&outputs).unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");
}
