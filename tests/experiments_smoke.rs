//! Smoke tests for the experiment harness: every table/figure runner
//! produces well-formed output at smoke scale, and the paper's headline
//! directional claims hold.

use gced_datasets::DatasetKind;
use gced_eval::experiments::{self, ExperimentContext};
use gced_eval::Scale;
use gced_qa::zoo;
use std::sync::OnceLock;

fn squad_ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::prepare(DatasetKind::Squad11, Scale::smoke(), 42))
}

fn trivia_ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::prepare(DatasetKind::TriviaWeb, Scale::smoke(), 42))
}

#[test]
fn word_reduction_is_higher_on_trivia_than_squad() {
    // Paper Sec. IV-D1: 78.5% on SQuAD, 87.2% on TriviaQA.
    let squad = squad_ctx().mean_word_reduction();
    let trivia = trivia_ctx().mean_word_reduction();
    assert!(squad > 0.4, "squad reduction {squad}");
    assert!(trivia > squad, "trivia {trivia} <= squad {squad}");
}

#[test]
fn table4_human_eval_rows_are_plausible() {
    let rows = experiments::human_eval(squad_ctx(), &zoo::squad_models()[..2], Scale::smoke());
    assert_eq!(rows.len(), 3); // 2 models + ground truth
    for r in &rows {
        assert!(r.outcome.rated > 0, "{}: nothing rated", r.source);
        // Paper: all quality scores consistently > 0.75; at smoke scale
        // we allow a wider band but scores must be clearly high.
        assert!(
            r.outcome.hybrid > 0.55,
            "{}: H = {}",
            r.source,
            r.outcome.hybrid
        );
        assert!(
            r.word_reduction > 0.3,
            "{}: reduction {}",
            r.source,
            r.word_reduction
        );
    }
}

#[test]
fn table6_gains_emerge_without_injection() {
    let picked = [
        zoo::squad_models()[0].clone(),
        zoo::squad_models()[8].clone(),
    ];
    let rows = experiments::qa_augmentation(squad_ctx(), &picked);
    // Mean gain across models must be positive (paper: +3.5% EM avg).
    let mean_gain: f64 =
        rows.iter().map(|r| r.gced.em - r.base.em).sum::<f64>() / rows.len() as f64;
    assert!(mean_gain > 0.0, "mean EM gain {mean_gain}");
}

#[test]
fn table7_gains_are_larger_on_trivia() {
    let squad_rows = experiments::qa_augmentation(squad_ctx(), &[zoo::squad_models()[0].clone()]);
    let trivia_rows =
        experiments::qa_augmentation(trivia_ctx(), &[zoo::trivia_models()[0].clone()]);
    let squad_gain = squad_rows[0].gced.f1 - squad_rows[0].base.f1;
    let trivia_gain = trivia_rows[0].gced.f1 - trivia_rows[0].base.f1;
    // Paper: avg F1 gain +1.5-4.2% on SQuAD vs +14.6-15% on TriviaQA.
    assert!(
        trivia_gain > squad_gain,
        "trivia gain {trivia_gain} <= squad gain {squad_gain}"
    );
}

#[test]
fn table2_alpha_values_exist_and_are_bounded() {
    let rows = experiments::human_eval(squad_ctx(), &zoo::squad_models()[..1], Scale::smoke());
    let gt = rows.last().unwrap();
    for group in &gt.outcome.alpha {
        for a in group.iter().flatten() {
            assert!(*a <= 1.0 + 1e-9, "alpha {a} > 1");
            assert!(*a > -1.0, "alpha {a} degenerate");
        }
    }
}

#[test]
fn fig7_degradation_is_graceful() {
    let series = experiments::degradation(squad_ctx(), &zoo::squad_models()[..1], &[0.0, 0.5, 1.0]);
    let points = &series[0].points;
    assert_eq!(points.len(), 3);
    let em_gt = points[0].1;
    let em_full = points[2].1;
    // Paper Fig. 7: full substitution costs only a few EM points on
    // SQuAD. Allow generous smoke-scale slack but require the drop
    // to be bounded and non-catastrophic.
    assert!(
        em_full <= em_gt + 8.0,
        "substitution should not help: {em_gt} -> {em_full}"
    );
    assert!(
        em_full >= em_gt - 35.0,
        "catastrophic drop: {em_gt} -> {em_full}"
    );
}

#[test]
fn table8_ablation_shows_component_effects() {
    let bert = &zoo::squad_models()[0];
    let rows = experiments::ablation(squad_ctx(), bert, Scale::smoke());
    assert_eq!(rows.len(), 8); // 7 knockouts + full
    let full = rows.last().unwrap();
    assert_eq!(full.label, "BERT+GCED");
    // The full system must have the best (or tied-best) hybrid score
    // among all variants, as in Table VIII.
    for r in &rows[..rows.len() - 1] {
        assert!(
            full.outcome.hybrid >= r.outcome.hybrid - 0.08,
            "{} ({}) clearly beats full ({})",
            r.label,
            r.outcome.hybrid,
            full.outcome.hybrid
        );
    }
    // Clip removal must hurt conciseness (w/o Clip row, paper: C drops).
    let no_clip = rows.iter().find(|r| r.label == "w/o Clip").unwrap();
    assert!(
        no_clip.outcome.conciseness <= full.outcome.conciseness + 0.02,
        "w/o Clip conciseness {} vs full {}",
        no_clip.outcome.conciseness,
        full.outcome.conciseness
    );
}
