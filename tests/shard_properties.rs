//! Property tests for shard planning and merging: for *any* item count,
//! shard count, and completion order, the merged run is identical to
//! the single-shard run, and per-shard seeds are stable.

use gced_datasets::shard::{plan, shard_seed, ShardSpec};
use gced_datasets::DatasetKind;
use gced_eval::shard::{merge, ShardMetric, ShardOutput, ShardRow};
use proptest::prelude::*;

/// A deterministic synthetic experiment: item `i`'s row and metric are
/// pure functions of `(seed, i)`, mirroring how the real experiments
/// derive every item from shared seeded artifacts.
fn synthetic_shard(seed: u64, n_items: usize, spec: ShardSpec) -> ShardOutput {
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for item in spec.range(n_items) {
        // Sparse rows: roughly one in five items yields no row, like
        // unanswerable examples in the reduction experiment.
        if (seed ^ item as u64).is_multiple_of(5) {
            continue;
        }
        rows.push(ShardRow {
            item,
            cells: vec![
                format!("item-{item:04}"),
                (shard_seed(seed, item as u64) % 1000).to_string(),
            ],
        });
        metrics.push(ShardMetric {
            item,
            name: "score".to_string(),
            value: (shard_seed(seed, item as u64) % 10_000) as f64 / 10_000.0,
        });
    }
    ShardOutput {
        experiment: "synthetic".to_string(),
        kind: DatasetKind::Squad11,
        seed,
        scale_tag: "prop".to_string(),
        shard: spec,
        n_items,
        header: vec!["Item".to_string(), "Value".to_string()],
        rows,
        metrics,
    }
}

proptest! {
    /// Any shard count and any completion order merges into exactly the
    /// single-shard run — rows, metrics, and rendered bytes.
    #[test]
    fn any_shard_count_and_order_merges_identically(
        seed in 0u64..1_000_000,
        n_items in 0usize..120,
        of in 1usize..10,
        rotate in 0usize..10,
    ) {
        let single = merge(&[synthetic_shard(seed, n_items, ShardSpec::single())])
            .expect("single-shard merge");
        let mut outputs: Vec<ShardOutput> = ShardSpec::all(of)
            .into_iter()
            .map(|s| synthetic_shard(seed, n_items, s))
            .collect();
        // Simulate arbitrary completion order.
        let k = rotate % of;
        outputs.rotate_left(k);
        if k % 2 == 1 {
            outputs.reverse();
        }
        let merged = merge(&outputs).expect("sharded merge");
        prop_assert_eq!(&merged.rows, &single.rows);
        prop_assert_eq!(&merged.metrics, &single.metrics);
        prop_assert_eq!(merged.render(), single.render());
    }

    /// The JSON wire format is lossless for any shard shape.
    #[test]
    fn shard_output_json_roundtrips(
        seed in 0u64..1_000_000,
        n_items in 0usize..80,
        of in 1usize..6,
        index in 0usize..6,
    ) {
        prop_assume!(index < of);
        let out = synthetic_shard(seed, n_items, ShardSpec::new(index, of).unwrap());
        let back = ShardOutput::from_json(&out.to_json()).expect("roundtrip");
        prop_assert_eq!(out, back);
    }

    /// Shard ranges always partition the item space exactly.
    #[test]
    fn plans_partition_for_any_shape(n_items in 0usize..5_000, of in 1usize..64) {
        let ranges = plan(n_items, of);
        prop_assert_eq!(ranges.len(), of);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, n_items);
    }

    /// Per-shard seeds are pure: stable across calls, spread across
    /// indices, and distinct from the base seed stream.
    #[test]
    fn shard_seeds_are_stable(base in 0u64..u64::MAX / 2, index in 0u64..4096) {
        prop_assert_eq!(shard_seed(base, index), shard_seed(base, index));
        prop_assert_ne!(shard_seed(base, index), shard_seed(base, index + 1));
        prop_assert_ne!(shard_seed(base, index), shard_seed(base.wrapping_add(1), index));
    }
}
