//! Cross-crate property tests: invariants of the full distillation
//! pipeline over randomly generated QA examples.

use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn pipeline() -> &'static (Gced, gced_datasets::Dataset) {
    static P: OnceLock<(Gced, gced_datasets::Dataset)> = OnceLock::new();
    P.get_or_init(|| {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 150,
                dev: 80,
                seed: 17,
            },
        );
        let g = Gced::fit(&ds, GcedConfig::default());
        (g, ds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Distillation invariants on arbitrary answerable dev examples:
    /// evidence non-empty, reduction within [0, 1), scores bounded.
    #[test]
    fn distillation_invariants(idx in 0usize..80) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let d = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        prop_assert!(!d.evidence_tokens.is_empty());
        prop_assert!((0.0..1.0).contains(&d.word_reduction));
        prop_assert!((0.0..=1.0).contains(&d.scores.informativeness));
        prop_assert!((0.0..=1.0).contains(&d.scores.readability));
        // Evidence is never longer than the answer-oriented sentences.
        let aos_len = gced_text::analyze(&d.aos_text).len();
        prop_assert!(d.evidence_tokens.len() <= aos_len);
    }

    /// The forest protection invariant: answer words located in the AOS
    /// always survive clipping.
    #[test]
    fn answer_words_survive_clipping(idx in 0usize..80) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let d = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        prop_assume!(!d.trace.fallback);
        for word in &d.trace.answer_words {
            prop_assert!(
                d.evidence_tokens.iter().any(|t| t == word),
                "answer word {word:?} clipped from {:?}", d.evidence_tokens
            );
        }
    }

    /// Arbitrary garbage questions/answers never panic the pipeline.
    #[test]
    fn total_on_garbage_inputs(
        q in "[a-zA-Z ?]{1,40}",
        a in "[a-zA-Z ]{1,20}",
        c_idx in 0usize..80,
    ) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[c_idx % ds.dev.examples.len()];
        prop_assume!(a.trim().len() > 1);
        // Must return Ok or a well-defined error, never panic.
        let _ = g.distill(&q, &a, &ex.context);
    }

    /// Hybrid-score monotonicity used by SCS: clip steps recorded in the
    /// trace are strictly improving under WhileImproving mode.
    #[test]
    fn clip_steps_improve_hybrid(idx in 0usize..80) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let d = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        for step in &d.trace.clip_steps {
            prop_assert!(
                step.hybrid_after > step.hybrid_before,
                "clip did not improve: {} -> {}", step.hybrid_before, step.hybrid_after
            );
        }
    }

    /// The incremental clip engine is bit-identical to the paper-literal
    /// reference oracle on the full pipeline: same evidence tokens, same
    /// scores, same step log, over randomized dev examples.
    #[test]
    fn optimized_clip_matches_reference_oracle(idx in 0usize..80) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let fast = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        let oracle = g
            .distill_with_reference_clip(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        prop_assert_eq!(&fast.evidence_tokens, &oracle.evidence_tokens);
        prop_assert_eq!(&fast.evidence, &oracle.evidence);
        prop_assert_eq!(fast.scores, oracle.scores);
        prop_assert_eq!(&fast.trace.clip_steps, &oracle.trace.clip_steps);
        prop_assert!((fast.word_reduction - oracle.word_reduction).abs() == 0.0);
    }

    /// The refactored grow search (ASE on the shared incremental
    /// engine, with span-score reuse and admissible F1-bound pruning)
    /// is bit-identical to the paper-literal `ase::reference` oracle on
    /// the full pipeline: same sentences, exact flag, best F1, and step
    /// log — and the end-to-end distillation (both phases through the
    /// reference formulations) matches byte for byte.
    #[test]
    fn optimized_grow_matches_reference_oracle(idx in 0usize..80) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let fast = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        let oracle = g
            .distill_with_reference_search(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        let (fa, oa) = (fast.trace.ase.as_ref(), oracle.trace.ase.as_ref());
        let fa = fa.expect("ASE ran");
        let oa = oa.expect("ASE ran");
        prop_assert_eq!(&fa.sentences, &oa.sentences);
        prop_assert_eq!(fa.exact, oa.exact);
        prop_assert_eq!(fa.best_f1.to_bits(), oa.best_f1.to_bits());
        prop_assert_eq!(fa.steps.len(), oa.steps.len());
        for (a, b) in fa.steps.iter().zip(&oa.steps) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        prop_assert_eq!(&fast.evidence_tokens, &oracle.evidence_tokens);
        prop_assert_eq!(&fast.evidence, &oracle.evidence);
        prop_assert_eq!(fast.scores, oracle.scores);
        prop_assert_eq!(&fast.trace.clip_steps, &oracle.trace.clip_steps);
    }

    /// Pruning soundness of the grow search: a trial's F1 never exceeds
    /// the max admissible per-sentence bound of its members, so a pruned
    /// candidate can never beat the round winner.
    #[test]
    fn ase_f1_bounds_are_admissible(idx in 0usize..40, mask in 1usize..64) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let doc = gced_text::analyze(&ex.context);
        let n = doc.sentences.len();
        prop_assume!(n > 0);
        let bounds = gced::ase::sentence_f1_bounds(&doc, &ex.answer);
        let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << (i % 6)) != 0).collect();
        prop_assume!(!subset.is_empty());
        let indices: Vec<usize> = subset
            .iter()
            .flat_map(|&s| doc.sentences[s].token_start..doc.sentences[s].token_end)
            .collect();
        let q = gced_qa::QuestionAnalysis::new(&ex.question);
        let mut scratch = gced_qa::SelectionScratch::default();
        let pred = g
            .qa_model()
            .predict_selection(&q, &doc, &indices, &ex.question, &mut scratch);
        let f1 = gced_metrics::overlap::token_f1(&pred.text, &ex.answer).f1;
        let bound = subset
            .iter()
            .map(|&s| bounds[s])
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(
            f1 <= bound + 1e-15,
            "subset {:?}: F1 {} exceeds bound {}", subset, f1, bound
        );
    }

    /// Oracle equivalence also holds with the forest protection turned
    /// off (unrestricted clipping exercises more candidate shapes) and
    /// under Fixed clip mode.
    #[test]
    fn optimized_clip_matches_reference_in_other_modes(idx in 0usize..40) {
        let (g, ds) = pipeline();
        let ex = &ds.dev.examples[idx % ds.dev.examples.len()];
        prop_assume!(ex.answerable);
        let cfg = GcedConfig {
            clip: gced::ClipMode::Fixed(3),
            clip_protect_forest: false,
            ..GcedConfig::default()
        };
        let g2 = g.clone().with_config(cfg);
        let fast = g2.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        let oracle = g2
            .distill_with_reference_clip(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        prop_assert_eq!(&fast.evidence_tokens, &oracle.evidence_tokens);
        prop_assert_eq!(fast.scores, oracle.scores);
        prop_assert_eq!(&fast.trace.clip_steps, &oracle.trace.clip_steps);
    }
}
