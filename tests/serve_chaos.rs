//! The fault-containment ("chaos") suite for gced-serve.
//!
//! Deterministic fault plans (`gced_serve::fault::FaultPlan`) inject
//! panics, thread kills, torn writes, queue expiry, and slow-loris
//! clients into a live server, and these tests assert the containment
//! invariants the failure model promises:
//!
//! * a panic inside a coalesced `distill_batch` answers only its own
//!   batch with 500 — concurrently queued requests still get responses
//!   **byte-identical to offline** `gced distill`, and the server stays
//!   healthy;
//! * a dead batcher thread is detected and restarted; serving resumes;
//! * queued requests past their deadline shed 503 + `Retry-After`;
//! * the retrying client rides out panics, sheds, and torn connections
//!   and still ends with offline-identical bytes;
//! * the outcome counters in `/metrics` decompose exactly, under
//!   randomized concurrent load with faults armed;
//! * graceful drain completes with faults still firing, and no waiting
//!   client ever hangs.

use gced::{Gced, GcedConfig};
use gced_datasets::json::{self, Json};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use gced_serve::client::{self, RetryPolicy, Session};
use gced_serve::fault::FaultPlan;
use gced_serve::wire::{render_distillation_with_id, render_request, DistillRequest};
use gced_serve::{ServeConfig, ServerHandle};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn pipeline() -> &'static (Gced, gced_datasets::Dataset) {
    static P: OnceLock<(Gced, gced_datasets::Dataset)> = OnceLock::new();
    P.get_or_init(|| {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 80,
                dev: 16,
                seed: 91,
            },
        );
        let g = Gced::fit(&ds, GcedConfig::default());
        (g, ds)
    })
}

/// (request body, expected offline response body) pairs.
fn offline_corpus(n: usize) -> Vec<(String, String)> {
    let (g, ds) = pipeline();
    ds.dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(n)
        .map(|e| {
            let body = render_request(&DistillRequest {
                question: e.question.clone(),
                answer: e.answer.clone(),
                context: e.context.clone(),
            });
            let d = g
                .distill(&e.question, &e.answer, &e.context)
                .expect("offline distill");
            let eid = gced_store::evidence_id(gced_store::request_fingerprint(
                &e.question,
                &e.answer,
                &e.context,
            ));
            (body, render_distillation_with_id(&eid, &d))
        })
        .collect()
}

fn server(config: ServeConfig) -> ServerHandle {
    let (g, _) = pipeline();
    gced_serve::start(g.clone(), config).expect("bind ephemeral port")
}

fn chaos_server(spec: &str, config: ServeConfig) -> ServerHandle {
    server(ServeConfig {
        fault_plan: Some(Arc::new(FaultPlan::parse(spec).expect("fault spec"))),
        ..config
    })
}

fn metrics(addr: std::net::SocketAddr) -> Json {
    let text = client::get(addr, "/metrics").expect("metrics").text();
    json::parse(&text).expect("metrics JSON")
}

/// Fetch `/metrics` tolerating a torn-write fault plan that has not
/// dried up yet: a torn frame fails the exchange, so retry on a fresh
/// connection (each attempt burns another fault-site occurrence).
fn metrics_with_patience(addr: std::net::SocketAddr) -> Json {
    for _ in 0..32 {
        if let Ok(r) = client::get(addr, "/metrics") {
            if r.status == 200 {
                if let Ok(root) = json::parse(&r.text()) {
                    return root;
                }
            }
        }
    }
    panic!("/metrics unreadable after 32 attempts");
}

fn num(root: &Json, key: &str) -> f64 {
    root.get(key).and_then(Json::as_f64).unwrap_or(-1.0)
}

/// `distill_requests_total` must equal the sum of its outcome classes —
/// and, when the response cache is on, of the hit/miss split too (every
/// parseable distill request is either a cache hit or a cache miss).
fn assert_decomposition(root: &Json) {
    let total = num(root, "distill_requests_total");
    let sum = num(root, "distill_ok")
        + num(root, "distill_error")
        + num(root, "distill_panics_total")
        + num(root, "distill_timeouts")
        + num(root, "shed_full")
        + num(root, "shed_expired")
        + num(root, "shed_shutdown");
    assert_eq!(
        total, sum,
        "outcome counters do not decompose: total {total} != sum {sum}"
    );
    let cache_on = root.get("cache").and_then(|c| c.get("enabled")) == Some(&Json::Bool(true));
    if cache_on {
        let split = num(root, "cache_hits_total") + num(root, "cache_misses_total");
        assert_eq!(
            total, split,
            "cache hit/miss counters do not decompose: total {total} != hits+misses {split}"
        );
    }
}

/// The acceptance criterion: a panic injected into `distill_batch`
/// mid-batch answers the affected request 500 while concurrently queued
/// requests still get offline-byte-identical 200s, the server stays
/// healthy, and no client blocks past its deadline.
#[test]
fn batch_panic_spares_concurrently_queued_requests() {
    let corpus = offline_corpus(6);
    assert!(corpus.len() >= 4, "dev split too small");
    // batch_max 1: the injected panic (rate 1, capped at one fire)
    // takes out exactly the first dequeued batch; everything queued
    // behind it is processed by the surviving batcher thread.
    let handle = chaos_server(
        "seed=5,batch_panic=1x1",
        ServeConfig {
            batch_max: 1,
            flush: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let started = Instant::now();
    let outcomes: Vec<(u16, Vec<u8>, &str)> = std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .iter()
            .map(|(request, expected)| {
                scope.spawn(move || {
                    let r = client::post(addr, "/v1/distill", request).expect("post");
                    (r.status, r.body, expected.as_str())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // No client blocked past its deadline: containment answers every
    // request in ordinary time, nowhere near the recv backstop.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "clients took {:?} — something hung",
        started.elapsed()
    );
    let panicked = outcomes.iter().filter(|(s, _, _)| *s == 500).count();
    assert_eq!(panicked, 1, "exactly one request rides the injected panic");
    for (status, body, expected) in &outcomes {
        if *status == 200 {
            assert_eq!(
                body.as_slice(),
                expected.as_bytes(),
                "surviving response diverged from offline"
            );
        }
    }
    // The server is still healthy and the batcher thread survived.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let root = json::parse(&health.text()).expect("health JSON");
    assert_eq!(root.get("status").and_then(Json::as_str), Some("ok"));
    assert!(
        health.text().contains("\"batcher_alive\":true"),
        "batcher died: {}",
        health.text()
    );
    let m = metrics(addr);
    assert_eq!(num(&m, "distill_panics_total"), 1.0);
    assert_eq!(num(&m, "batcher_restarts_total"), 0.0, "no restart needed");
    assert_decomposition(&m);
    handle.shutdown();
    handle.join();
}

#[test]
fn dead_batcher_is_restarted_and_serving_resumes() {
    let corpus = offline_corpus(2);
    // batcher_kill panics OUTSIDE the per-batch catch: the thread dies,
    // the waiting handler observes the disconnect, answers 500, and
    // restarts the batcher.
    let handle = chaos_server(
        "seed=2,batcher_kill=1x1",
        ServeConfig {
            batch_max: 1,
            flush: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let doomed = client::post(addr, "/v1/distill", &corpus[0].0).expect("post");
    assert_eq!(doomed.status, 500, "{}", doomed.text());
    // The handler revived the batcher; the next request is served
    // correctly by the fresh thread.
    let healed = client::post(addr, "/v1/distill", &corpus[1].0).expect("post");
    assert_eq!(healed.status, 200, "{}", healed.text());
    assert_eq!(healed.body, corpus[1].1.as_bytes(), "revived body diverged");
    let m = metrics(addr);
    assert!(num(&m, "batcher_restarts_total") >= 1.0);
    assert_eq!(num(&m, "distill_panics_total"), 1.0);
    assert_decomposition(&m);
    handle.shutdown();
    handle.join();
}

#[test]
fn expired_requests_shed_503_with_retry_after() {
    let corpus = offline_corpus(1);
    // A 300ms flush window holds the lone request in the queue far past
    // its 1ms deadline: it must be shed at dequeue, not distilled.
    let handle = server(ServeConfig {
        batch_max: 64,
        flush: Duration::from_millis(300),
        request_deadline: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let r = client::post(addr, "/v1/distill", &corpus[0].0).expect("post");
    assert_eq!(r.status, 503, "{}", r.text());
    assert_eq!(r.retry_after, Some(1), "shed response missing Retry-After");
    assert!(r.text().contains("deadline"), "{}", r.text());
    let m = metrics(addr);
    assert_eq!(num(&m, "shed_expired"), 1.0);
    assert_eq!(num(&m, "shed_total"), 1.0);
    assert_decomposition(&m);
    handle.shutdown();
    handle.join();
}

/// The retrying client rides out injected batch panics AND torn socket
/// writes, and every surviving response is byte-identical to offline.
#[test]
fn retrying_client_survives_panics_and_torn_writes() {
    let corpus = offline_corpus(6);
    let handle = chaos_server(
        "seed=9,batch_panic=0.4x2,torn_write=0.4x4",
        ServeConfig {
            batch_max: 2,
            flush: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let policy = RetryPolicy {
        budget: 10,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(100),
        seed: 77,
    };
    let mut session = Session::connect(addr).expect("connect");
    for pass in 0..3 {
        for (request, expected) in &corpus {
            let r = session
                .post_with_retry("/v1/distill", request, &policy)
                .expect("retries exhausted");
            assert_eq!(r.status, 200, "pass {pass}: {}", r.text());
            assert_eq!(
                r.body,
                expected.as_bytes(),
                "pass {pass}: retried body diverged from offline"
            );
        }
    }
    let m = metrics_with_patience(addr);
    let faults = m.get("faults").expect("faults rendered in /metrics");
    let fired = |site: &str| {
        faults
            .get("sites")
            .and_then(|s| s.get(site))
            .map(|s| num(s, "fired"))
            .unwrap_or(-1.0)
    };
    // Fire caps are hard bounds even under concurrency.
    let panics = fired("batch_panic");
    let tears = fired("torn_write");
    assert!(
        (0.0..=2.0).contains(&panics),
        "panic cap violated: {panics}"
    );
    assert!((0.0..=4.0).contains(&tears), "tear cap violated: {tears}");
    // Every logical request ended 200; retries of torn-after-distill
    // responses may add extra OK outcomes, never fewer.
    assert!(num(&m, "distill_ok") >= 18.0, "{}", num(&m, "distill_ok"));
    assert_eq!(num(&m, "distill_panics_total"), panics);
    assert_decomposition(&m);
    handle.shutdown();
    handle.join();
}

/// Satellite regression: a slow-loris client dribbling header bytes is
/// cut off by the total request deadline with 408, instead of pinning a
/// connection slot for as long as it keeps resetting the per-read
/// timeout.
#[test]
fn slow_loris_dribbler_is_cut_off_with_408() {
    let handle = server(ServeConfig {
        read_timeout: Duration::from_secs(1),
        read_deadline: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let started = Instant::now();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut write_half = stream.try_clone().expect("clone");
    // Dribble one header byte every 20ms — a full request would take
    // >1.2s, far past the 150ms deadline. A concurrent reader consumes
    // the 408 the moment it is written, before a post-close dribble
    // byte can turn into a connection reset that discards it.
    let dribbler = std::thread::spawn(move || {
        let raw = b"GET /healthz HTTP/1.1\r\nX-Slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n";
        for byte in raw {
            if write_half.write_all(&[*byte]).is_err() {
                break; // server already hung up — that's the point
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    let mut raw = Vec::new();
    let mut reader = stream;
    let _ = reader.read_to_end(&mut raw);
    let cut_after = started.elapsed();
    dribbler.join().unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "expected a 408 cut-off, got {text:?}"
    );
    // Cut off near deadline + one in-flight read, not after the whole
    // dribble could have played out.
    assert!(
        cut_after < Duration::from_secs(3),
        "dribbler survived {cut_after:?}"
    );
    // A well-behaved client is still served afterwards.
    assert_eq!(client::get(addr, "/healthz").expect("healthz").status, 200);
    let m = metrics(addr);
    assert!(num(&m, "http_errors") >= 1.0);
    handle.shutdown();
    handle.join();
}

/// Graceful drain completes with faults still firing, and every client
/// in flight gets an answer or a clean connection error — never a hang.
#[test]
fn graceful_drain_completes_under_active_faults() {
    let corpus = offline_corpus(4);
    let handle = chaos_server(
        "seed=13,pre_batch_delay=1:20,batch_panic=0.3,torn_write=0.2",
        ServeConfig {
            batch_max: 2,
            flush: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let corpus = &corpus;
            let handle = &handle;
            scope.spawn(move || {
                for i in 0..3 {
                    let (request, _) = &corpus[(t + i) % corpus.len()];
                    // Every outcome is acceptable — 200, 500, 503, or a
                    // torn/drained connection — as long as the call
                    // RETURNS. The scope join is the no-hang assertion.
                    let _ = client::post(addr, "/v1/distill", request);
                    if t == 0 && i == 1 {
                        handle.shutdown();
                    }
                }
            });
        }
    });
    handle.join(); // must drain and stop with faults armed
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "drain under faults took {:?}",
        started.elapsed()
    );
    assert!(
        client::get(addr, "/healthz").is_err(),
        "server still accepting after drained shutdown"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Satellite: under randomized concurrent load — mixed valid,
    /// erroring, and panic-prone requests against randomized queue
    /// shapes — the outcome counters decompose exactly:
    /// `distill_requests_total == ok + error + panics + timeouts +
    /// shed_full + shed_expired + shed_shutdown`.
    #[test]
    fn outcome_counters_decompose_under_random_concurrent_load(
        seed in 0u64..1_000_000,
        clients in 1usize..5,
        per_client in 1usize..5,
        queue_cap in 1usize..4,
        panic_permille in 0u64..400,
        deadline_die in 0u64..2,
    ) {
        let tiny_deadline = deadline_die == 1;
        let corpus = offline_corpus(4);
        let bad = render_request(&DistillRequest {
            question: "q?".to_string(),
            answer: "   ".to_string(),
            context: "Some context sentence.".to_string(),
        });
        let rate = panic_permille as f64 / 1000.0;
        let handle = chaos_server(
            &format!("seed={seed},batch_panic={rate}"),
            ServeConfig {
                batch_max: 2,
                flush: Duration::from_millis(if tiny_deadline { 50 } else { 2 }),
                queue_capacity: queue_cap,
                request_deadline: if tiny_deadline {
                    Duration::from_millis(1)
                } else {
                    Duration::from_secs(10)
                },
                ..ServeConfig::default()
            },
        );
        let addr = handle.addr();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let corpus = &corpus;
                let bad = &bad;
                scope.spawn(move || {
                    for i in 0..per_client {
                        let request = if (c + i) % 4 == 3 {
                            bad.as_str()
                        } else {
                            corpus[(c + i) % corpus.len()].0.as_str()
                        };
                        // Outcomes vary (200/422/500/503); the equation
                        // below is the assertion.
                        let _ = client::post(addr, "/v1/distill", request);
                    }
                });
            }
        });
        // All clients joined → no distill request is in flight.
        let m = metrics(addr);
        prop_assert_eq!(
            num(&m, "distill_requests_total"),
            (clients * per_client) as f64
        );
        let total = num(&m, "distill_requests_total");
        let sum = num(&m, "distill_ok")
            + num(&m, "distill_error")
            + num(&m, "distill_panics_total")
            + num(&m, "distill_timeouts")
            + num(&m, "shed_full")
            + num(&m, "shed_expired")
            + num(&m, "shed_shutdown");
        prop_assert_eq!(total, sum);
        // shed_total renders as exactly the sum of the shed classes.
        prop_assert_eq!(
            num(&m, "shed_total"),
            num(&m, "shed_full") + num(&m, "shed_expired") + num(&m, "shed_shutdown")
        );
        // The response cache (on by default here) sees every parseable
        // distill request exactly once: hit + miss covers the total.
        prop_assert_eq!(
            num(&m, "cache_hits_total") + num(&m, "cache_misses_total"),
            total
        );
        handle.shutdown();
        handle.join();
    }
}
