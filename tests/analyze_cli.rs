//! Exit-code contract of `gced analyze`, bench-check style: 0 on a
//! clean tree, 1 on findings, 2 on usage errors — CI keys off these.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn gced() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gced"))
}

/// Build a throwaway source tree under the cargo test tmpdir.
fn fixture_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("file paths have parents")).unwrap();
        fs::write(path, content).unwrap();
    }
    root
}

#[test]
fn clean_tree_exits_zero() {
    let root = fixture_tree(
        "analyze-clean",
        &[(
            "src/lib.rs",
            "pub fn add(a: u64, b: u64) -> u64 { a + b }\n",
        )],
    );
    let out = gced()
        .args(["analyze", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    assert!(stdout.contains("clean: 0 findings"), "stdout: {stdout}");
}

#[test]
fn findings_exit_one_and_json_reports_them() {
    let root = fixture_tree(
        "analyze-dirty",
        &[(
            // In DET002 scope: raw accumulation outside the kernels.
            "crates/nn/src/bad.rs",
            "pub fn acc(xs: &[f32]) -> f32 {\n    let mut a = 0.0;\n    for x in xs { a += x; }\n    a\n}\n",
        )],
    );
    let out = gced()
        .args(["analyze", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = text(&out.stdout);
    assert!(
        stdout.contains("crates/nn/src/bad.rs:3: [DET002]"),
        "stdout: {stdout}"
    );

    let json_out = gced()
        .args(["analyze", "--json", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(json_out.status.code(), Some(1));
    let json = text(&json_out.stdout);
    assert!(json.starts_with("{\"clean\":false,"), "json: {json}");
    assert!(json.contains("\"lint\":\"DET002\""), "json: {json}");
    assert!(json.contains("\"line\":3"), "json: {json}");
}

#[test]
fn out_flag_writes_the_report_file() {
    let root = fixture_tree(
        "analyze-out",
        &[("src/lib.rs", "pub fn id(x: u8) -> u8 { x }\n")],
    );
    let report = root.join("report.json");
    let out = gced()
        .args(["analyze", "--json", "--root"])
        .arg(&root)
        .arg("--out")
        .arg(&report)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let body = fs::read_to_string(&report).unwrap();
    assert!(body.starts_with("{\"clean\":true,"), "report: {body}");
}

#[test]
fn fix_is_a_usage_error_with_guidance() {
    let out = gced().args(["analyze", "--fix"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = text(&out.stderr);
    assert!(err.contains("no --fix"), "stderr: {err}");
    assert!(err.contains("gced-allow"), "stderr: {err}");
}

#[test]
fn bad_usage_exits_two() {
    // --root without a value.
    let out = gced().args(["analyze", "--root"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Nonexistent root is an error, not "clean".
    let out = gced()
        .args(["analyze", "--root", "/nonexistent/gced-analyze-root"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
