//! The serve-subsystem determinism pin: a served `/v1/distill` response
//! body is **byte-identical** to the offline rendering of the same
//! input — cold or warm parse cache, any client concurrency, any batch
//! coalescing — plus endpoint contract tests (healthz, metrics, error
//! statuses, shedding, graceful shutdown).

use gced::{Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use gced_serve::wire::{render_distillation_with_id, render_request, DistillRequest};
use gced_serve::{client, ServeConfig, ServerHandle};
use std::sync::OnceLock;
use std::time::Duration;

fn pipeline() -> &'static (Gced, gced_datasets::Dataset) {
    static P: OnceLock<(Gced, gced_datasets::Dataset)> = OnceLock::new();
    P.get_or_init(|| {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 120,
                dev: 24,
                seed: 33,
            },
        );
        let g = Gced::fit(&ds, GcedConfig::default());
        (g, ds)
    })
}

/// (request body, expected response body) for `n` dev examples,
/// computed offline through the exact code path `gced distill` uses.
fn offline_corpus(n: usize) -> Vec<(String, String)> {
    let (g, ds) = pipeline();
    ds.dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(n)
        .map(|e| {
            let body = render_request(&DistillRequest {
                question: e.question.clone(),
                answer: e.answer.clone(),
                context: e.context.clone(),
            });
            let d = g
                .distill(&e.question, &e.answer, &e.context)
                .expect("offline distill");
            // The server assigns evidence ids as a pure function of the
            // request, so offline expectations carry the same id.
            let eid = gced_store::evidence_id(gced_store::request_fingerprint(
                &e.question,
                &e.answer,
                &e.context,
            ));
            (body, render_distillation_with_id(&eid, &d))
        })
        .collect()
}

fn server(config: ServeConfig) -> ServerHandle {
    let (g, _) = pipeline();
    gced_serve::start(g.clone(), config).expect("bind ephemeral port")
}

#[test]
fn concurrent_clients_get_bytes_identical_to_offline() {
    let corpus = offline_corpus(10);
    assert!(corpus.len() >= 6, "dev split too small");
    // Response cache off: this test pins the PIPELINE (parse cache,
    // batching) as the byte-identical path; the cache tests below pin
    // the warm-hit path.
    let handle = server(ServeConfig {
        batch_max: 4,
        flush: Duration::from_millis(2),
        parse_cache: 512,
        cache_entries: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    // 8 threads × 3 passes each over the corpus: the same input is
    // served cold, warm, and inside differently-coalesced batches.
    std::thread::scope(|scope| {
        for t in 0..8 {
            let corpus = &corpus;
            scope.spawn(move || {
                for pass in 0..3 {
                    for i in 0..corpus.len() {
                        // Stagger start points so batches mix inputs.
                        let (request, expected) = &corpus[(i + t + pass) % corpus.len()];
                        let r = client::post(addr, "/v1/distill", request).expect("post");
                        assert_eq!(r.status, 200, "thread {t}: {}", r.text());
                        assert_eq!(
                            r.body,
                            expected.as_bytes(),
                            "thread {t} pass {pass}: served body diverged from offline"
                        );
                    }
                }
            });
        }
    });
    // The parse cache must actually have been exercised.
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    let root = gced_datasets::json::parse(&metrics).expect("metrics JSON");
    let pc = root.get("parse_cache").expect("parse_cache in metrics");
    let hits = pc
        .get("hits")
        .and_then(gced_datasets::json::Json::as_f64)
        .unwrap_or(0.0);
    assert!(hits > 0.0, "no parse-cache hits under repeated load");
    handle.shutdown();
    handle.join();
}

#[test]
fn keep_alive_session_is_byte_identical_and_reuses_the_connection() {
    let corpus = offline_corpus(6);
    let handle = server(ServeConfig {
        batch_max: 4,
        flush: Duration::from_millis(1),
        parse_cache: 512,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Several sequential exchanges on ONE socket.
    let mut session = client::Session::connect(addr).expect("connect");
    for pass in 0..3 {
        for (request, expected) in &corpus {
            let r = session.post("/v1/distill", request).expect("post");
            assert_eq!(r.status, 200, "pass {pass}: {}", r.text());
            assert!(r.keep_alive, "server closed a persistent connection");
            assert_eq!(
                r.body,
                expected.as_bytes(),
                "pass {pass}: keep-alive body diverged from offline"
            );
        }
    }
    // Mixed methods on the same socket still work.
    let health = session.get("/healthz").expect("healthz on same socket");
    assert_eq!(health.status, 200);

    // True pipelining: write every request before reading any response.
    let mut pipelined = client::Session::connect(addr).expect("connect");
    for (request, _) in &corpus {
        pipelined.send_post("/v1/distill", request).expect("send");
    }
    for (_, expected) in &corpus {
        let r = pipelined.read_response().expect("pipelined response");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expected.as_bytes(), "pipelined body diverged");
    }

    // The server must have observed reuse: far fewer connections than
    // requests, and keep-alive reuses recorded.
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    let root = gced_datasets::json::parse(&metrics).expect("metrics JSON");
    let num = |k: &str| {
        root.get(k)
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    let reuses = num("keepalive_reuses");
    let conns = num("connections_total");
    let requests = num("requests_total");
    assert!(
        reuses >= (corpus.len() * 3) as f64,
        "expected keep-alive reuse, got {reuses} reuses over {conns} connections"
    );
    assert!(
        conns < requests,
        "every request opened a connection: {conns} conns / {requests} requests"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn connection_cap_closes_after_max_requests() {
    let corpus = offline_corpus(1);
    let handle = server(ServeConfig {
        max_requests_per_conn: 2,
        read_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let mut session = client::Session::connect(addr).expect("connect");
    let first = session.post("/v1/distill", &corpus[0].0).expect("first");
    assert_eq!(first.status, 200);
    assert!(first.keep_alive, "first response should keep the conn open");
    let second = session.post("/v1/distill", &corpus[0].0).expect("second");
    assert_eq!(second.status, 200);
    assert!(
        !second.keep_alive,
        "cap reached: second response must announce Connection: close"
    );
    // The server hung up; a third exchange on this socket cannot
    // produce a response.
    assert!(
        session.post("/v1/distill", &corpus[0].0).is_err(),
        "third request on a capped connection should fail"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn warmup_prefills_the_parse_cache() {
    let (_, ds) = pipeline();
    let warmup_docs: Vec<String> = ds.dev.examples.iter().map(|e| e.context.clone()).collect();
    let n_docs = warmup_docs.len();
    let handle = server(ServeConfig {
        parse_cache: 2048,
        warmup_docs,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    // Before any distill request: warmup counts are reported and the
    // cache is populated.
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    let root = gced_datasets::json::parse(&metrics).expect("metrics JSON");
    let warm = root.get("warmup").expect("warmup in metrics");
    let wnum = |k: &str| {
        warm.get(k)
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert!(wnum("docs") >= 1.0, "no warmup docs reported: {metrics}");
    assert!(wnum("docs") <= n_docs as f64);
    assert!(wnum("sentences") >= wnum("docs"), "sentences < docs");
    let pc = root.get("parse_cache").expect("parse_cache in metrics");
    let len = pc
        .get("len")
        .and_then(gced_datasets::json::Json::as_f64)
        .unwrap_or(0.0);
    assert!(len > 0.0, "warmup left the parse cache empty: {metrics}");

    // A first (cold-connection) request over a warmed corpus document
    // must hit the cache — and stay byte-identical to offline.
    let corpus = offline_corpus(2);
    let hits_before = {
        let text = client::get(addr, "/metrics").expect("metrics").text();
        let root = gced_datasets::json::parse(&text).expect("metrics JSON");
        root.get("parse_cache")
            .and_then(|p| p.get("hits"))
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(0.0)
    };
    for (request, expected) in &corpus {
        let r = client::post(addr, "/v1/distill", request).expect("post");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, expected.as_bytes(), "warmed body diverged");
    }
    let hits_after = {
        let text = client::get(addr, "/metrics").expect("metrics").text();
        let root = gced_datasets::json::parse(&text).expect("metrics JSON");
        root.get("parse_cache")
            .and_then(|p| p.get("hits"))
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(
        hits_after > hits_before,
        "first requests missed the warmed cache: {hits_before} -> {hits_after}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn healthz_metrics_and_error_statuses() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr();

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let root = gced_datasets::json::parse(&health.text()).expect("health JSON");
    assert_eq!(
        root.get("status")
            .and_then(gced_datasets::json::Json::as_str),
        Some("ok")
    );

    // Unknown route, wrong method, malformed body, empty answer.
    assert_eq!(client::get(addr, "/nope").expect("404").status, 404);
    assert_eq!(client::get(addr, "/v1/distill").expect("405").status, 405);
    assert_eq!(
        client::post(addr, "/healthz", "{}").expect("405").status,
        405
    );
    assert_eq!(
        client::post(addr, "/v1/distill", "not json")
            .expect("400")
            .status,
        400
    );
    assert_eq!(
        client::post(addr, "/v1/distill", "{\"question\":\"q\"}")
            .expect("400")
            .status,
        400
    );
    let unprocessable = client::post(
        addr,
        "/v1/distill",
        &render_request(&DistillRequest {
            question: "q?".to_string(),
            answer: "   ".to_string(),
            context: "Some context.".to_string(),
        }),
    )
    .expect("422");
    assert_eq!(unprocessable.status, 422);
    assert!(
        unprocessable.text().contains("answer"),
        "{}",
        unprocessable.text()
    );

    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let root = gced_datasets::json::parse(&metrics.text()).expect("metrics JSON");
    let num = |k: &str| {
        root.get(k)
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert!(num("requests_total") >= 6.0);
    assert!(num("http_errors") >= 4.0);
    assert!(num("distill_error") >= 1.0);
    assert!(num("pool_threads") >= 2.0);

    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_via_endpoint_drains_and_stops() {
    let corpus = offline_corpus(2);
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    let ok = client::post(addr, "/v1/distill", &corpus[0].0).expect("pre-shutdown");
    assert_eq!(ok.status, 200);

    let bye = client::post(addr, "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200);
    handle.join(); // blocks until drained — the real assertion

    // The port no longer answers.
    assert!(
        client::get(addr, "/healthz").is_err(),
        "server still accepting after shutdown"
    );
}

/// Blank out the four timing-valued keys of a recorded span-tree JSON
/// document, leaving structure and counters intact. Timings are the
/// only run-varying content a `/debug/requests/{id}` answer may carry.
fn strip_timings(s: &str) -> String {
    let mut out = s.to_string();
    for key in [
        "\"start_ns\":",
        "\"dur_ns\":",
        "\"queue_ns\":",
        "\"total_ns\":",
    ] {
        let mut result = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(i) = rest.find(key) {
            let end = i + key.len();
            result.push_str(&rest[..end]);
            result.push('X');
            rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        result.push_str(rest);
        out = result;
    }
    out
}

#[test]
fn tracing_on_keeps_served_bytes_identical_to_offline() {
    // The span tracer is on by default (the flight recorder depends on
    // it), so every parity test in this file already runs traced. This
    // one makes the coupling explicit: the recorder must actually have
    // captured the requests whose bodies stayed byte-identical.
    assert!(
        ServeConfig::default().trace,
        "tracing must default on — the flight recorder depends on it"
    );
    let corpus = offline_corpus(4);
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    for (request, expected) in &corpus {
        let r = client::post(addr, "/v1/distill", request).expect("post");
        assert_eq!(r.status, 200, "{}", r.text());
        assert_eq!(
            r.body,
            expected.as_bytes(),
            "traced body diverged from offline"
        );
    }
    let listing = client::get(addr, "/debug/requests")
        .expect("listing")
        .text();
    let root = gced_datasets::json::parse(&listing).expect("listing JSON");
    let recorded = root
        .get("recorded_total")
        .and_then(gced_datasets::json::Json::as_f64)
        .unwrap_or(0.0);
    assert!(
        recorded >= corpus.len() as f64,
        "recorder missed traced requests: {listing}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn request_ids_are_echoed_and_served_by_the_flight_recorder() {
    let corpus = offline_corpus(1);
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    let r = client::post(addr, "/v1/distill", &corpus[0].0).expect("post");
    assert_eq!(r.status, 200);
    let id = r
        .request_id
        .expect("X-Gced-Request-Id on a distill response");
    // Non-distill endpoints carry no request id.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.request_id, None);

    // The id from the response header appears in the listing...
    let listing = client::get(addr, "/debug/requests")
        .expect("listing")
        .text();
    let root = gced_datasets::json::parse(&listing).expect("listing JSON");
    let ids: Vec<u64> = root
        .get("requests")
        .and_then(gced_datasets::json::Json::as_arr)
        .expect("requests array")
        .iter()
        .filter_map(|r| r.get("id").and_then(gced_datasets::json::Json::as_f64))
        .map(|v| v as u64)
        .collect();
    assert!(ids.contains(&id), "id {id} not in listing: {listing}");

    // ...and the detail endpoint serves its span tree, rooted at the
    // batch that carried it.
    let detail = client::get(addr, &format!("/debug/requests/{id}")).expect("detail");
    assert_eq!(detail.status, 200);
    let doc = gced_datasets::json::parse(&detail.text()).expect("detail JSON");
    assert_eq!(
        doc.get("id").and_then(gced_datasets::json::Json::as_f64),
        Some(id as f64)
    );
    let spans = doc.get("spans").expect("span tree in detail");
    assert_eq!(
        spans
            .get("name")
            .and_then(gced_datasets::json::Json::as_str),
        Some("batch.coalesce")
    );
    // An id the recorder never saw is a 404.
    let missing = client::get(addr, "/debug/requests/9999999").expect("missing");
    assert_eq!(missing.status, 404);
    handle.shutdown();
    handle.join();
}

#[test]
fn recorded_span_trees_are_deterministic_across_runs() {
    // Two fresh servers given the same single request must record the
    // same span tree — names, nesting, and counter payloads — with only
    // the timing fields free to differ.
    let corpus = offline_corpus(1);
    let capture = || {
        let handle = server(ServeConfig::default());
        let addr = handle.addr();
        let r = client::post(addr, "/v1/distill", &corpus[0].0).expect("post");
        assert_eq!(r.status, 200);
        let id = r.request_id.expect("request id");
        let detail = client::get(addr, &format!("/debug/requests/{id}")).expect("detail");
        assert_eq!(detail.status, 200);
        let text = detail.text();
        handle.shutdown();
        handle.join();
        (id, text)
    };
    let (id_a, run_a) = capture();
    let (id_b, run_b) = capture();
    assert_eq!(id_a, id_b, "fresh servers must assign identical ids");
    assert_eq!(
        strip_timings(&run_a),
        strip_timings(&run_b),
        "span tree diverged between identical runs"
    );
    // The stripping actually removed something — otherwise the equality
    // above silently proves less than it claims.
    assert_ne!(strip_timings(&run_a), run_a, "no timings found to strip");
}

#[test]
fn repeated_request_is_a_cache_hit_with_identical_bytes() {
    let corpus = offline_corpus(1);
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    let (request, expected) = &corpus[0];

    let cold = client::post(addr, "/v1/distill", request).expect("cold post");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.cache.as_deref(), Some("miss"), "first post must miss");
    assert_eq!(cold.body, expected.as_bytes(), "cold body diverged");
    let eid = cold.evidence_id.clone().expect("evidence id on a miss");

    let warm = client::post(addr, "/v1/distill", request).expect("warm post");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.cache.as_deref(), Some("hit"), "second post must hit");
    assert_eq!(warm.evidence_id.as_deref(), Some(eid.as_str()));
    assert_eq!(
        warm.body, cold.body,
        "cache hit bytes diverged from the cold miss"
    );
    assert_eq!(warm.body, expected.as_bytes(), "hit body diverged offline");

    // The counters saw exactly this traffic and decompose.
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    let root = gced_datasets::json::parse(&metrics).expect("metrics JSON");
    let num = |k: &str| {
        root.get(k)
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("cache_hits_total"), 1.0, "{metrics}");
    assert_eq!(num("cache_misses_total"), 1.0, "{metrics}");
    assert_eq!(
        num("cache_hits_total") + num("cache_misses_total"),
        num("distill_requests_total"),
        "cache counters do not decompose distill traffic: {metrics}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn evidence_endpoint_replays_stored_bytes_after_unrelated_traffic() {
    let corpus = offline_corpus(5);
    let handle = server(ServeConfig::default());
    let addr = handle.addr();
    let (request, expected) = &corpus[0];
    let first = client::post(addr, "/v1/distill", request).expect("post");
    assert_eq!(first.status, 200);
    let eid = first.evidence_id.expect("evidence id header");

    // Unrelated traffic between store and replay.
    for (other, _) in &corpus[1..] {
        let r = client::post(addr, "/v1/distill", other).expect("post");
        assert_eq!(r.status, 200);
    }

    let replay = client::get(addr, &format!("/v1/evidence/{eid}")).expect("replay");
    assert_eq!(replay.status, 200, "{}", replay.text());
    assert_eq!(replay.cache.as_deref(), Some("hit"));
    assert_eq!(replay.evidence_id.as_deref(), Some(eid.as_str()));
    assert_eq!(
        replay.body,
        expected.as_bytes(),
        "evidence replay diverged from the stored response"
    );

    // Contract edges: malformed id and never-stored id are 404, wrong
    // method is 405, and replays are counted outside the distill
    // decomposition.
    assert_eq!(
        client::get(addr, "/v1/evidence/not-hex")
            .expect("404")
            .status,
        404
    );
    let absent = format!("{:032x}", 0xdead_beefu64);
    assert_eq!(
        client::get(addr, &format!("/v1/evidence/{absent}"))
            .expect("404")
            .status,
        404
    );
    assert_eq!(
        client::post(addr, &format!("/v1/evidence/{eid}"), "{}")
            .expect("405")
            .status,
        405
    );
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    let root = gced_datasets::json::parse(&metrics).expect("metrics JSON");
    let num = |k: &str| {
        root.get(k)
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("evidence_replays_total"), 1.0, "{metrics}");
    assert_eq!(num("distill_requests_total"), corpus.len() as f64);
    handle.shutdown();
    handle.join();
}

#[test]
fn cache_disabled_serves_every_request_through_the_pipeline() {
    let corpus = offline_corpus(1);
    let handle = server(ServeConfig {
        cache_entries: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (request, expected) = &corpus[0];
    for pass in 0..3 {
        let r = client::post(addr, "/v1/distill", request).expect("post");
        assert_eq!(r.status, 200);
        assert_eq!(r.cache, None, "pass {pass}: cache tag with cache off");
        // The body still carries the (purely request-derived) id.
        assert!(r.evidence_id.is_some(), "pass {pass}: no evidence id");
        assert_eq!(r.body, expected.as_bytes(), "pass {pass}: body diverged");
    }
    // Stored nothing, so replay is a 404 and the counters stayed zero.
    let eid = gced_store::evidence_id(gced_store::request_fingerprint(
        "ignored", "ignored", "ignored",
    ));
    assert_eq!(
        client::get(addr, &format!("/v1/evidence/{eid}"))
            .expect("404")
            .status,
        404
    );
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    let root = gced_datasets::json::parse(&metrics).expect("metrics JSON");
    let num = |k: &str| {
        root.get(k)
            .and_then(gced_datasets::json::Json::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("cache_hits_total"), 0.0, "{metrics}");
    assert_eq!(num("cache_misses_total"), 0.0, "{metrics}");
    let enabled = root.get("cache").and_then(|c| c.get("enabled"));
    assert_eq!(
        enabled,
        Some(&gced_datasets::json::Json::Bool(false)),
        "{metrics}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn served_response_parses_as_the_wire_document() {
    let corpus = offline_corpus(1);
    let handle = server(ServeConfig::default());
    let r = client::post(handle.addr(), "/v1/distill", &corpus[0].0).expect("post");
    assert_eq!(r.status, 200);
    let root = gced_datasets::json::parse(&r.text()).expect("response JSON");
    for key in [
        "evidence_id",
        "evidence",
        "evidence_tokens",
        "scores",
        "word_reduction",
        "aos",
    ] {
        assert!(root.get(key).is_some(), "response missing {key:?}");
    }
    handle.shutdown();
    handle.join();
}
