//! End-to-end integration tests spanning all crates: generate a dataset,
//! fit the pipeline, distill, and check the paper's qualitative claims.

use gced::{Ablation, ClipMode, Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use std::sync::OnceLock;

struct Fixture {
    gced: Gced,
    dataset: gced_datasets::Dataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dataset = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 200,
                dev: 60,
                seed: 11,
            },
        );
        let gced = Gced::fit(&dataset, GcedConfig::default());
        Fixture { gced, dataset }
    })
}

#[test]
fn distills_every_answerable_dev_example() {
    let fix = fixture();
    let mut ok = 0;
    let mut total = 0;
    for ex in fix
        .dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(20)
    {
        total += 1;
        if fix
            .gced
            .distill(&ex.question, &ex.answer, &ex.context)
            .is_ok()
        {
            ok += 1;
        }
    }
    assert_eq!(ok, total, "distillation failed on {}/{total}", total - ok);
}

#[test]
fn evidences_are_informative_concise_readable_on_average() {
    let fix = fixture();
    let mut i_scores = Vec::new();
    let mut reductions = Vec::new();
    let mut readabilities = Vec::new();
    for ex in fix
        .dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(24)
    {
        let d = fix
            .gced
            .distill(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        i_scores.push(d.scores.informativeness);
        reductions.push(d.word_reduction);
        readabilities.push(d.scores.readability);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&i_scores) > 0.6,
        "mean informativeness {}",
        mean(&i_scores)
    );
    assert!(
        mean(&reductions) > 0.5,
        "mean reduction {}",
        mean(&reductions)
    );
    assert!(
        mean(&readabilities) > 0.1,
        "mean readability {}",
        mean(&readabilities)
    );
}

#[test]
fn evidence_tokens_come_from_the_context() {
    let fix = fixture();
    for ex in fix
        .dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(12)
    {
        let d = fix
            .gced
            .distill(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        let ctx_words: std::collections::HashSet<String> = gced_text::analyze(&ex.context)
            .tokens
            .iter()
            .map(|t| t.text.clone())
            .collect();
        for tok in &d.evidence_tokens {
            assert!(
                ctx_words.contains(tok),
                "{}: token {tok:?} not from context",
                ex.id
            );
        }
    }
}

#[test]
fn evidence_token_order_is_by_original_index() {
    // "rearrange nodes in terms of the indexes" (Sec. III-F): evidence
    // tokens must appear in the same order as in the AOS text.
    let fix = fixture();
    for ex in fix
        .dataset
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(8)
    {
        let d = fix
            .gced
            .distill(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        let aos_tokens: Vec<String> = gced_text::analyze(&d.aos_text)
            .tokens
            .iter()
            .map(|t| t.text.clone())
            .collect();
        // Evidence tokens must be a subsequence of the AOS token stream.
        let mut pos = 0usize;
        for tok in &d.evidence_tokens {
            let found = aos_tokens[pos..].iter().position(|t| t == tok);
            assert!(
                found.is_some(),
                "{}: {tok:?} breaks subsequence order",
                ex.id
            );
            pos += found.unwrap() + 1;
        }
    }
}

#[test]
fn works_on_all_four_dataset_kinds() {
    for kind in DatasetKind::all() {
        let ds = generate(
            kind,
            GeneratorConfig {
                train: 100,
                dev: 20,
                seed: 3,
            },
        );
        let gced = Gced::fit(&ds, GcedConfig::default());
        let ex = ds
            .dev
            .examples
            .iter()
            .find(|e| e.answerable)
            .expect("answerable example");
        let d = gced.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        assert!(
            !d.evidence_tokens.is_empty(),
            "{kind:?} produced empty evidence"
        );
    }
}

#[test]
fn clip_mode_fixed_bounds_clip_count() {
    let fix = fixture();
    for m in [0usize, 1, 2] {
        let cfg = GcedConfig {
            clip: ClipMode::Fixed(m),
            ..GcedConfig::default()
        };
        let pipeline = fix.gced.clone().with_config(cfg);
        let ex = fix
            .dataset
            .dev
            .examples
            .iter()
            .find(|e| e.answerable)
            .unwrap();
        let d = pipeline
            .distill(&ex.question, &ex.answer, &ex.context)
            .unwrap();
        assert!(
            d.trace.clip_steps.len() <= m,
            "M={m}, clipped {}",
            d.trace.clip_steps.len()
        );
    }
}

#[test]
fn every_single_ablation_variant_runs() {
    let fix = fixture();
    let ex = fix
        .dataset
        .dev
        .examples
        .iter()
        .find(|e| e.answerable)
        .unwrap();
    for c in Ablation::table8_rows() {
        let cfg = GcedConfig {
            ablation: Ablation::without(c),
            ..GcedConfig::default()
        };
        let pipeline = fix.gced.clone().with_config(cfg);
        let d = pipeline
            .distill(&ex.question, &ex.answer, &ex.context)
            .unwrap_or_else(|e| panic!("w/o {c} failed: {e}"));
        assert!(
            !d.evidence_tokens.is_empty(),
            "w/o {c} emitted empty evidence"
        );
    }
}

#[test]
fn grow_ablation_disconnects_and_clip_ablation_lengthens() {
    let fix = fixture();
    let ex = fix
        .dataset
        .dev
        .examples
        .iter()
        .find(|e| e.answerable)
        .unwrap();
    let full = fix
        .gced
        .distill(&ex.question, &ex.answer, &ex.context)
        .unwrap();
    let no_grow_cfg = GcedConfig {
        ablation: Ablation::without("Grow"),
        ..GcedConfig::default()
    };
    let no_grow = fix
        .gced
        .clone()
        .with_config(no_grow_cfg)
        .distill(&ex.question, &ex.answer, &ex.context)
        .unwrap();
    assert!(no_grow.trace.grow_steps.is_empty());
    let no_clip_cfg = GcedConfig {
        ablation: Ablation::without("Clip"),
        ..GcedConfig::default()
    };
    let no_clip = fix
        .gced
        .clone()
        .with_config(no_clip_cfg)
        .distill(&ex.question, &ex.answer, &ex.context)
        .unwrap();
    assert!(no_clip.trace.clip_steps.is_empty());
    assert!(no_clip.evidence_tokens.len() >= full.evidence_tokens.len());
}

#[test]
fn determinism_across_fresh_pipelines() {
    let ds = generate(
        DatasetKind::Squad11,
        GeneratorConfig {
            train: 100,
            dev: 20,
            seed: 5,
        },
    );
    let a = Gced::fit(&ds, GcedConfig::default());
    let b = Gced::fit(&ds, GcedConfig::default());
    let ex = ds.dev.examples.iter().find(|e| e.answerable).unwrap();
    let da = a.distill(&ex.question, &ex.answer, &ex.context).unwrap();
    let db = b.distill(&ex.question, &ex.answer, &ex.context).unwrap();
    assert_eq!(da.evidence, db.evidence);
}
