//! Shared fit-cache acceptance tests: shard workers that map the
//! serialized fit artifact must produce output **byte-identical** to
//! workers that fit fresh, the artifact itself must be
//! byte-deterministic, and a mismatched artifact must fail loudly.

use gced_datasets::{DatasetKind, ShardSpec};
use gced_eval::shard::{
    fit_fingerprint, load_or_fit, run_shard, run_shard_cached, run_sharded_in_process_cached,
    ShardError,
};
use gced_eval::Scale;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gced-fitcache-test-{tag}-{}", std::process::id()));
    // Tests may rerun in one process lifetime; a leftover dir from this
    // pid is ours to recycle.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cached_fit_reproduces_fresh_run_bitwise() {
    let dir = scratch_dir("parity");
    let path = dir.join("fit-cache.bin");
    let scale = Scale::smoke();
    let kind = DatasetKind::Squad11;

    // First cached call fits and publishes the artifact…
    let first = run_shard_cached(
        "reduction",
        kind,
        scale,
        42,
        ShardSpec::single(),
        Some(&path),
    )
    .unwrap();
    let size = std::fs::metadata(&path).unwrap().len();
    assert!(size > 0, "artifact not published");

    // …the second maps it instead of re-fitting; output is identical,
    // and so is a run that never touches the cache.
    let second = run_shard_cached(
        "reduction",
        kind,
        scale,
        42,
        ShardSpec::single(),
        Some(&path),
    )
    .unwrap();
    assert_eq!(first.to_json(), second.to_json());
    let fresh = run_shard("reduction", kind, scale, 42, ShardSpec::single()).unwrap();
    assert_eq!(fresh.to_json(), second.to_json());

    // The artifact is byte-deterministic: re-publishing under a fresh
    // path yields identical bytes (what makes concurrent writers safe).
    let path2 = dir.join("fit-cache-2.bin");
    load_or_fit(kind, scale, 42, Some(&path2)).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap()
    );

    // An in-process sharded run through the same artifact merges
    // byte-identically too.
    let merged =
        run_sharded_in_process_cached("reduction", kind, scale, 42, 3, Some(&path)).unwrap();
    let single = gced_eval::shard::merge(&[fresh]).unwrap();
    assert_eq!(single.render(), merged.render());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_fit_cache_fails_loudly() {
    let dir = scratch_dir("mismatch");
    let path = dir.join("fit-cache.bin");
    let scale = Scale::smoke();
    let kind = DatasetKind::Squad11;
    load_or_fit(kind, scale, 42, Some(&path)).unwrap();

    // Same artifact, different seed → fingerprint mismatch, loud error.
    let err = match run_shard_cached(
        "reduction",
        kind,
        scale,
        7,
        ShardSpec::single(),
        Some(&path),
    ) {
        Ok(_) => panic!("mismatched artifact was accepted"),
        Err(e) => e,
    };
    assert!(matches!(err, ShardError::Cache(_)), "{err}");
    assert!(err.to_string().contains("fingerprint"), "{err}");

    // Garbage bytes → loud decode error, not a silent re-fit.
    std::fs::write(&path, b"not an artifact").unwrap();
    let err = match run_shard_cached(
        "reduction",
        kind,
        scale,
        42,
        ShardSpec::single(),
        Some(&path),
    ) {
        Ok(_) => panic!("corrupt artifact was accepted"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("magic"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fingerprint_separates_runs() {
    let scale = Scale::smoke();
    let a = fit_fingerprint(DatasetKind::Squad11, scale, 42);
    assert_ne!(a, fit_fingerprint(DatasetKind::Squad20, scale, 42));
    assert_ne!(a, fit_fingerprint(DatasetKind::Squad11, scale, 43));
    assert_ne!(a, fit_fingerprint(DatasetKind::Squad11, Scale::full(), 42));
    assert_eq!(a, fit_fingerprint(DatasetKind::Squad11, scale, 42));
}
