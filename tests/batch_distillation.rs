//! Contract tests for `Gced::distill_batch`: element-wise parity with
//! sequential distillation, determinism, and order independence.

use gced::{Distillation, Gced, GcedConfig};
use gced_datasets::{generate, DatasetKind, GeneratorConfig};
use std::sync::OnceLock;

fn pipeline() -> &'static (Gced, gced_datasets::Dataset) {
    static P: OnceLock<(Gced, gced_datasets::Dataset)> = OnceLock::new();
    P.get_or_init(|| {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 150,
                dev: 60,
                seed: 33,
            },
        );
        let g = Gced::fit(&ds, GcedConfig::default());
        (g, ds)
    })
}

fn batch_items(n: usize) -> Vec<(String, String, String)> {
    let (_, ds) = pipeline();
    let items: Vec<(String, String, String)> = ds
        .dev
        .examples
        .iter()
        .filter(|e| e.answerable)
        .take(n)
        .map(|e| (e.question.clone(), e.answer.clone(), e.context.clone()))
        .collect();
    assert_eq!(items.len(), n, "dev split too small for the batch tests");
    items
}

/// Distillations carry traces and floats; equality here means "the same
/// answer to the user and the same decision log".
fn assert_same(a: &Distillation, b: &Distillation, what: &str) {
    assert_eq!(a.evidence, b.evidence, "{what}: evidence text");
    assert_eq!(
        a.evidence_tokens, b.evidence_tokens,
        "{what}: evidence tokens"
    );
    assert_eq!(a.scores, b.scores, "{what}: scores");
    assert_eq!(a.aos_text, b.aos_text, "{what}: AOS");
    assert!(
        (a.word_reduction - b.word_reduction).abs() == 0.0,
        "{what}: word reduction"
    );
    assert_eq!(a.trace.clip_steps, b.trace.clip_steps, "{what}: clip steps");
    assert_eq!(a.trace.grow_steps, b.trace.grow_steps, "{what}: grow steps");
}

#[test]
fn batch_matches_sequential_over_20_examples() {
    let (g, _) = pipeline();
    let items = batch_items(20);
    let batched = g.distill_batch(&items);
    assert_eq!(batched.len(), items.len());
    for (i, (item, out)) in items.iter().zip(&batched).enumerate() {
        let sequential = g
            .distill(&item.0, &item.1, &item.2)
            .expect("sequential distill");
        let out = out.as_ref().expect("batch distill");
        assert_same(out, &sequential, &format!("example {i}"));
    }
}

#[test]
fn batch_is_deterministic() {
    let (g, _) = pipeline();
    let items = batch_items(12);
    let a = g.distill_batch(&items);
    let b = g.distill_batch(&items);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        match (x, y) {
            (Ok(x), Ok(y)) => assert_same(x, y, &format!("run-to-run example {i}")),
            (Err(ex), Err(ey)) => assert_eq!(ex, ey),
            _ => panic!("example {i}: Ok/Err mismatch between runs"),
        }
    }
}

#[test]
fn batch_results_are_order_independent() {
    let (g, _) = pipeline();
    let items = batch_items(12);
    let forward = g.distill_batch(&items);
    let reversed_items: Vec<_> = items.iter().cloned().rev().collect();
    let reversed = g.distill_batch(&reversed_items);
    for i in 0..items.len() {
        let a = forward[i].as_ref().expect("forward ok");
        let b = reversed[items.len() - 1 - i].as_ref().expect("reversed ok");
        assert_same(a, b, &format!("permuted example {i}"));
    }
}

#[test]
fn batch_propagates_per_item_errors() {
    let (g, _) = pipeline();
    let mut items = batch_items(3);
    items.push(("who?".into(), "".into(), "Some context.".into()));
    items.push(("who?".into(), "x".into(), "   ".into()));
    let out = g.distill_batch(&items);
    assert!(out[0].is_ok() && out[1].is_ok() && out[2].is_ok());
    assert!(matches!(out[3], Err(gced::DistillError::EmptyAnswer)));
    assert!(matches!(out[4], Err(gced::DistillError::EmptyContext)));
}

#[test]
fn empty_batch_is_fine() {
    let (g, _) = pipeline();
    let out = g.distill_batch::<&str, &str, &str>(&[]);
    assert!(out.is_empty());
}
