//! Probabilistic CKY with unary closure, plus robust token-level parsing.
//!
//! [`CkyParser::parse_constituency`] runs exact Viterbi CKY over a POS
//! sequence; [`CkyParser::parse_tokens`] wraps it into a total function
//! from tokens to a dependency tree — punctuation/clitics are excluded
//! from the grammar and re-attached afterwards, and out-of-grammar or
//! over-long inputs fall back to a right-branching tree rather than
//! failing (GCED must distill *something* for every context).

use crate::cache::{ParseCache, ParseCacheStats};
use crate::dep::DepTree;
use crate::grammar::{Grammar, HeadSide, Symbol};
use crate::tree::{ConstNode, ConstTree};
use gced_text::{Pos, Token};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Back-pointer for chart entries.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Back {
    /// Preterminal over one token.
    Term,
    /// Unary rewrite from another symbol in the same cell.
    Unary(Symbol),
    /// Binary combination: split point, child symbols, head side.
    Binary(usize, Symbol, Symbol, HeadSide),
}

/// One chart cell: best (log-prob, back-pointer) per symbol.
type Cell = HashMap<Symbol, (f64, Back)>;

/// A CKY parser over a fixed grammar.
#[derive(Debug, Clone)]
pub struct CkyParser {
    grammar: Grammar,
    /// Sentences longer than this (in parseable tokens) skip CKY and use
    /// the right-branching fallback (CKY is O(n³)).
    max_len: usize,
    /// Optional memoization of [`CkyParser::parse_tokens`] keyed by the
    /// POS-tag signature (see [`crate::cache`]). Shared by clones, so a
    /// cloned pipeline keeps feeding the same warm cache.
    cache: Option<Arc<Mutex<ParseCache>>>,
}

impl CkyParser {
    /// Parser over the embedded English grammar.
    pub fn embedded() -> Self {
        CkyParser {
            grammar: Grammar::english(),
            max_len: 72,
            cache: None,
        }
    }

    /// Parser over a custom grammar.
    pub fn new(grammar: Grammar) -> Self {
        CkyParser {
            grammar,
            max_len: 72,
            cache: None,
        }
    }

    /// Change the CKY length cutoff (mostly for tests/benches).
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Memoize [`CkyParser::parse_tokens`] results in a bounded LRU of
    /// `capacity` POS-tag signatures (`0` disables caching). The parse
    /// is a pure function of the tag sequence, so cached output is
    /// bit-identical to an uncached parse.
    pub fn with_parse_cache(mut self, capacity: usize) -> Self {
        self.cache = (capacity > 0).then(|| Arc::new(Mutex::new(ParseCache::new(capacity))));
        self
    }

    /// Hit/miss/occupancy counters of the parse cache, if one is
    /// installed.
    pub fn parse_cache_stats(&self) -> Option<ParseCacheStats> {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("parse cache lock").stats())
    }

    /// The grammar in use.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Exact Viterbi parse of a POS sequence. Returns `None` when the
    /// grammar cannot derive `TOP` (or any full-span constituent) over
    /// the input, or the input is empty/over-long.
    pub fn parse_constituency(&self, tags: &[Pos]) -> Option<ConstTree> {
        let n = tags.len();
        if n == 0 || n > self.max_len {
            return None;
        }
        // chart[i][j] spans tokens i..=i+j (j = width-1).
        let mut chart: Vec<Vec<Cell>> = vec![vec![Cell::new(); n]; n];
        for (i, &pos) in tags.iter().enumerate() {
            let mut cell = Cell::new();
            for r in self.grammar.rules_for_pos(pos) {
                let lp = r.prob.ln();
                match cell.get(&r.lhs) {
                    Some(&(best, _)) if best >= lp => {}
                    _ => {
                        cell.insert(r.lhs, (lp, Back::Term));
                    }
                }
            }
            self.unary_closure(&mut cell);
            chart[i][0] = cell;
        }
        for width in 2..=n {
            for start in 0..=(n - width) {
                let mut cell = Cell::new();
                for split in 1..width {
                    // Clone the (small) left/right views to appease the
                    // borrow checker; cells hold a handful of symbols.
                    let left = chart[start][split - 1].clone();
                    let right = chart[start + split][width - split - 1].clone();
                    for (&ls, &(lp, _)) in &left {
                        for (&rs, &(rp, _)) in &right {
                            for rule in self.grammar.rules_for_children(ls, rs) {
                                let score = lp + rp + rule.prob.ln();
                                match cell.get(&rule.lhs) {
                                    Some(&(best, _)) if best >= score => {}
                                    _ => {
                                        cell.insert(
                                            rule.lhs,
                                            (score, Back::Binary(start + split, ls, rs, rule.head)),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                self.unary_closure(&mut cell);
                chart[start][width - 1] = cell;
            }
        }
        let top_cell = &chart[0][n - 1];
        // Prefer TOP; otherwise the best-scoring full-span symbol.
        let goal = if top_cell.contains_key(&Symbol::Top) {
            Symbol::Top
        } else {
            *top_cell
                .iter()
                .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("no NaN scores"))?
                .0
        };
        let mut nodes = Vec::new();
        let root = self.extract(&chart, tags, 0, n - 1, goal, &mut nodes);
        let tree = ConstTree::new(nodes, root, n);
        debug_assert!(tree.validate().is_ok(), "CKY produced invalid tree");
        Some(tree)
    }

    /// Apply unary rules to a fixed point (grammar unaries are acyclic in
    /// probability: a rewrite is only taken when it improves the score).
    fn unary_closure(&self, cell: &mut Cell) {
        loop {
            let mut changed = false;
            for r in self.grammar.unary_rules() {
                if let Some(&(child_score, _)) = cell.get(&r.child) {
                    let score = child_score + r.prob.ln();
                    match cell.get(&r.lhs) {
                        Some(&(best, _)) if best >= score => {}
                        _ => {
                            cell.insert(r.lhs, (score, Back::Unary(r.child)));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Rebuild the tree from back-pointers; returns the arena id.
    fn extract(
        &self,
        chart: &[Vec<Cell>],
        tags: &[Pos],
        start: usize,
        width_m1: usize,
        sym: Symbol,
        nodes: &mut Vec<ConstNode>,
    ) -> usize {
        let (_, back) = chart[start][width_m1][&sym];
        match back {
            Back::Term => {
                nodes.push(ConstNode::Leaf {
                    token: start,
                    pos: tags[start],
                });
                let leaf = nodes.len() - 1;
                nodes.push(ConstNode::Internal {
                    label: sym,
                    children: vec![leaf],
                    head: start,
                });
                nodes.len() - 1
            }
            Back::Unary(child) => {
                let c = self.extract(chart, tags, start, width_m1, child, nodes);
                let head = head_of_node(nodes, c);
                nodes.push(ConstNode::Internal {
                    label: sym,
                    children: vec![c],
                    head,
                });
                nodes.len() - 1
            }
            Back::Binary(split, ls, rs, head_side) => {
                let lw = split - start - 1;
                let rw = width_m1 - (split - start);
                let l = self.extract(chart, tags, start, lw, ls, nodes);
                let r = self.extract(chart, tags, split, rw, rs, nodes);
                let head = match head_side {
                    HeadSide::Left => head_of_node(nodes, l),
                    HeadSide::Right => head_of_node(nodes, r),
                };
                nodes.push(ConstNode::Internal {
                    label: sym,
                    children: vec![l, r],
                    head,
                });
                nodes.len() - 1
            }
        }
    }

    /// Total parse of a token slice into a dependency tree over local
    /// indices `0..tokens.len()`. Never fails:
    /// 1. punctuation/particle tokens are excluded from the grammar run;
    /// 2. CKY parses the remaining POS sequence;
    /// 3. on failure, a right-branching backbone is used instead;
    /// 4. excluded tokens re-attach to the nearest preceding kept token.
    ///
    /// Every step consults only the POS tags, so with a cache installed
    /// ([`CkyParser::with_parse_cache`]) the result is memoized by the
    /// tag signature. The lock is **not** held across the parse itself:
    /// concurrent misses on one signature parse redundantly and insert
    /// identical trees, trading a little duplicate work for zero
    /// serialization of the O(n³) path.
    pub fn parse_tokens(&self, tokens: &[Token]) -> DepTree {
        let _span = gced_obs::span("parse");
        let Some(cache) = &self.cache else {
            return self.parse_tokens_uncached(tokens);
        };
        let signature: Vec<Pos> = tokens.iter().map(|t| t.pos).collect();
        if let Some(tree) = cache.lock().expect("parse cache lock").get(&signature) {
            gced_obs::counter("parse_cache_hits", 1);
            return tree;
        }
        gced_obs::counter("parse_cache_misses", 1);
        let tree = self.parse_tokens_uncached(tokens);
        cache
            .lock()
            .expect("parse cache lock")
            .insert(signature, tree.clone());
        tree
    }

    fn parse_tokens_uncached(&self, tokens: &[Token]) -> DepTree {
        let n = tokens.len();
        if n == 0 {
            return DepTree::empty();
        }
        let kept: Vec<usize> = (0..n)
            .filter(|&i| !matches!(tokens[i].pos, Pos::Punct | Pos::Particle))
            .collect();
        if kept.is_empty() {
            // All punctuation: chain every token to its predecessor.
            return DepTree::right_branching(n);
        }
        let tags: Vec<Pos> = kept.iter().map(|&i| tokens[i].pos).collect();
        // Edges among kept tokens, in kept-index space.
        let edges: Vec<Option<usize>> = match self.parse_constituency(&tags) {
            Some(tree) => dependency_edges(&tree),
            None => (0..kept.len())
                .map(|i| if i == 0 { None } else { Some(i - 1) })
                .collect(),
        };
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for (ki, edge) in edges.iter().enumerate() {
            parent[kept[ki]] = edge.map(|p| kept[p]);
        }
        // Re-attach excluded tokens to the nearest preceding kept token,
        // or the first kept token when none precedes.
        for i in 0..n {
            if matches!(tokens[i].pos, Pos::Punct | Pos::Particle) {
                let anchor = kept.iter().rev().find(|&&k| k < i).or_else(|| kept.first());
                parent[i] = anchor.copied();
            }
        }
        DepTree::from_parents(parent)
    }
}

/// Head (local token index) of an arena node.
fn head_of_node(nodes: &[ConstNode], id: usize) -> usize {
    match &nodes[id] {
        ConstNode::Leaf { token, .. } => *token,
        ConstNode::Internal { head, .. } => *head,
    }
}

/// Head-percolated dependency extraction: for every constituent, each
/// non-head child's head token depends on the constituent's head token.
/// Returns the parent (in local token space) of each token; the sentence
/// head has parent `None`.
pub fn dependency_edges(tree: &ConstTree) -> Vec<Option<usize>> {
    let n = tree.token_count();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for id in 0..tree.node_count() {
        if let ConstNode::Internal { children, head, .. } = tree.node(id) {
            for &c in children {
                let ch = tree.head_of(c);
                if ch != *head {
                    parent[ch] = Some(*head);
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_text::analyze;

    fn parse(text: &str) -> (Vec<Token>, DepTree) {
        let doc = analyze(text);
        let parser = CkyParser::embedded();
        let tree = parser.parse_tokens(&doc.tokens);
        (doc.tokens, tree)
    }

    #[test]
    fn parses_simple_transitive_clause() {
        let doc = analyze("The Broncos defeated the Panthers");
        let parser = CkyParser::embedded();
        let tags: Vec<Pos> = doc.tokens.iter().map(|t| t.pos).collect();
        let tree = parser.parse_constituency(&tags).expect("should parse");
        tree.validate().unwrap();
        // Sentence head should be the verb "defeated" (index 2).
        assert_eq!(tree.head_of(tree.root()), 2);
    }

    #[test]
    fn dependency_edges_form_a_tree() {
        let (tokens, tree) = parse("The Broncos defeated the Panthers.");
        assert_eq!(tree.len(), tokens.len());
        tree.validate().unwrap();
        // verb is root
        let root = tree.root();
        assert_eq!(tokens[root].text, "defeated");
        // subject and object heads attach to the verb
        let broncos = tokens.iter().position(|t| t.text == "Broncos").unwrap();
        let panthers = tokens.iter().position(|t| t.text == "Panthers").unwrap();
        assert_eq!(tree.parent(broncos), Some(root));
        assert_eq!(tree.parent(panthers), Some(root));
    }

    #[test]
    fn determiners_attach_to_their_nouns() {
        let (tokens, tree) = parse("The Broncos defeated the Panthers.");
        let broncos = tokens.iter().position(|t| t.text == "Broncos").unwrap();
        assert_eq!(tree.parent(0), Some(broncos)); // "The" -> "Broncos"
    }

    #[test]
    fn pp_attaches_into_clause() {
        let (tokens, tree) = parse("The duke led troops in the battle.");
        tree.validate().unwrap();
        let inn = tokens.iter().position(|t| t.text == "in").unwrap();
        let battle = tokens.iter().position(|t| t.text == "battle").unwrap();
        // preposition heads its NP; battle under "in"
        assert_eq!(tree.parent(battle), Some(inn));
    }

    #[test]
    fn punctuation_attaches_to_preceding_token() {
        let (tokens, tree) = parse("The Broncos won.");
        let dot = tokens.iter().position(|t| t.text == ".").unwrap();
        assert_eq!(tree.parent(dot), Some(dot - 1));
    }

    #[test]
    fn unparseable_input_falls_back() {
        // A POS soup the grammar cannot derive: conj conj conj.
        let doc = analyze("and or but and");
        let parser = CkyParser::embedded();
        let tree = parser.parse_tokens(&doc.tokens);
        assert_eq!(tree.len(), 4);
        tree.validate().unwrap();
    }

    #[test]
    fn all_punctuation_input() {
        let doc = analyze("!!! ???");
        let parser = CkyParser::embedded();
        let tree = parser.parse_tokens(&doc.tokens);
        assert_eq!(tree.len(), doc.tokens.len());
        tree.validate().unwrap();
    }

    #[test]
    fn over_long_input_uses_fallback() {
        let long = (0..100).map(|_| "word").collect::<Vec<_>>().join(" ");
        let doc = analyze(&long);
        let parser = CkyParser::embedded();
        let tree = parser.parse_tokens(&doc.tokens);
        assert_eq!(tree.len(), 100);
        tree.validate().unwrap();
    }

    #[test]
    fn empty_input() {
        let parser = CkyParser::embedded();
        let tree = parser.parse_tokens(&[]);
        assert_eq!(tree.len(), 0);
    }

    #[test]
    fn coordination_parses() {
        let (_, tree) = parse("The duke and the king led troops.");
        tree.validate().unwrap();
    }

    #[test]
    fn copula_parses() {
        let (tokens, tree) = parse("Paris is the capital of France.");
        tree.validate().unwrap();
        let is = tokens.iter().position(|t| t.text == "is").unwrap();
        let root = tree.root();
        // Either "is" (copula as aux-root) or "capital"; both acceptable —
        // what matters is the NP internal structure.
        let capital = tokens.iter().position(|t| t.text == "capital").unwrap();
        assert!(
            root == is || root == capital,
            "root = {}",
            tokens[root].text
        );
    }

    #[test]
    fn parse_is_deterministic() {
        let (_, t1) = parse("The famous singer performed in many competitions.");
        let (_, t2) = parse("The famous singer performed in many competitions.");
        assert_eq!(t1, t2);
    }

    #[test]
    fn parentheticals_do_not_break_parsing() {
        let (tokens, tree) = parse("Football Conference (AFC) champion Denver Broncos won.");
        tree.validate().unwrap();
        assert_eq!(tree.len(), tokens.len());
    }

    #[test]
    fn cached_parse_is_identical_and_counts_hits() {
        let plain = CkyParser::embedded();
        let cached = CkyParser::embedded().with_parse_cache(64);
        let texts = [
            "The Broncos defeated the Panthers.",
            "The duke led troops in the battle.",
            "The Broncos defeated the Panthers.", // repeat → hit
            "The Eagles defeated the Falcons.",   // same POS shape → hit
        ];
        for text in texts {
            let doc = analyze(text);
            assert_eq!(
                cached.parse_tokens(&doc.tokens),
                plain.parse_tokens(&doc.tokens),
                "{text}"
            );
        }
        let stats = cached.parse_cache_stats().expect("cache installed");
        assert!(stats.hits >= 2, "stats: {stats:?}");
        assert!(stats.misses >= 2, "stats: {stats:?}");
        assert!(stats.len <= 64);
        assert!(plain.parse_cache_stats().is_none());
    }

    #[test]
    fn cache_is_shared_across_clones() {
        let cached = CkyParser::embedded().with_parse_cache(16);
        let clone = cached.clone();
        let doc = analyze("The Broncos won the title.");
        let a = cached.parse_tokens(&doc.tokens);
        let b = clone.parse_tokens(&doc.tokens);
        assert_eq!(a, b);
        let stats = clone.parse_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let parser = CkyParser::embedded().with_parse_cache(0);
        assert!(parser.parse_cache_stats().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn word() -> impl Strategy<Value = &'static str> {
        prop::sample::select(vec![
            "the", "a", "famous", "duke", "battle", "troops", "led", "defeated", "in", "of", "and",
            "quickly", "Broncos", "title", "won", ",", ".", "1066",
        ])
    }

    proptest! {
        /// parse_tokens is total: any word soup yields a valid dependency
        /// tree covering every token.
        #[test]
        fn parse_tokens_total(ws in prop::collection::vec(word(), 1..18)) {
            let text = ws.join(" ");
            let doc = gced_text::analyze(&text);
            let parser = CkyParser::embedded();
            let tree = parser.parse_tokens(&doc.tokens);
            prop_assert_eq!(tree.len(), doc.tokens.len());
            prop_assert!(tree.validate().is_ok());
        }

        /// A cached parser is observationally identical to an uncached
        /// one over arbitrary word soups, even with a tiny capacity that
        /// forces constant eviction.
        #[test]
        fn cached_parser_matches_uncached(
            soups in prop::collection::vec(prop::collection::vec(word(), 1..14), 1..24)
        ) {
            let plain = CkyParser::embedded();
            let cached = CkyParser::embedded().with_parse_cache(4);
            for ws in &soups {
                let doc = gced_text::analyze(&ws.join(" "));
                prop_assert_eq!(
                    cached.parse_tokens(&doc.tokens),
                    plain.parse_tokens(&doc.tokens)
                );
            }
            let stats = cached.parse_cache_stats().expect("cache installed");
            prop_assert!(stats.len <= 4);
            prop_assert_eq!(stats.hits + stats.misses, soups.len() as u64);
        }
    }
}
