//! The probabilistic grammar: symbols, rules, head directions.
//!
//! The grammar is expressed directly in the binary/unary form CKY needs:
//! * preterminal rules `NT -> Pos` anchor nonterminals to POS tags;
//! * unary rules `NT -> NT` are closed over during parsing;
//! * binary rules `NT -> NT NT` carry a [`HeadSide`] marking which child
//!   contributes the lexical head — the "lexicalized" part of L-PCFG that
//!   the dependency extraction of Sec. III-D consumes.
//!
//! Rule weights are relative; [`GrammarBuilder::build`] normalizes them
//! into probabilities per left-hand side.

use gced_text::Pos;
use std::collections::HashMap;

/// Grammar nonterminal symbols (plus the goal symbol `Top`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// Goal symbol.
    Top,
    /// Clause.
    S,
    /// Noun phrase.
    Np,
    /// Nominal core (adjectives + nouns).
    Nbar,
    /// Lexical noun head.
    N,
    /// Verb phrase.
    Vp,
    /// Lexical verb head.
    V,
    /// Auxiliary wrapper.
    Aux,
    /// Prepositional phrase.
    Pp,
    /// Preposition wrapper.
    In,
    /// Adjective phrase.
    Adjp,
    /// Adverb phrase.
    Advp,
    /// Determiner wrapper.
    Dt,
    /// Coordination tail for NPs (`CC NP`).
    CcNp,
    /// Coordination tail for VPs (`CC VP`).
    CcVp,
    /// Coordination tail for clauses (`CC S`).
    CcS,
    /// Conjunction wrapper.
    Cc,
    /// Number wrapper.
    Num,
}

impl Symbol {
    /// Short label for tree rendering.
    pub fn label(self) -> &'static str {
        match self {
            Symbol::Top => "TOP",
            Symbol::S => "S",
            Symbol::Np => "NP",
            Symbol::Nbar => "NBAR",
            Symbol::N => "N",
            Symbol::Vp => "VP",
            Symbol::V => "V",
            Symbol::Aux => "AUX",
            Symbol::Pp => "PP",
            Symbol::In => "IN",
            Symbol::Adjp => "ADJP",
            Symbol::Advp => "ADVP",
            Symbol::Dt => "DT",
            Symbol::CcNp => "CCNP",
            Symbol::CcVp => "CCVP",
            Symbol::CcS => "CCS",
            Symbol::Cc => "CC",
            Symbol::Num => "NUM",
        }
    }
}

/// Which child of a binary rule carries the lexical head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadSide {
    /// Left child is the head.
    Left,
    /// Right child is the head.
    Right,
}

/// `lhs -> pos` with probability `prob`.
#[derive(Debug, Clone, Copy)]
pub struct PretermRule {
    pub lhs: Symbol,
    pub pos: Pos,
    pub prob: f64,
}

/// `lhs -> child` with probability `prob` (head = child).
#[derive(Debug, Clone, Copy)]
pub struct UnaryRule {
    pub lhs: Symbol,
    pub child: Symbol,
    pub prob: f64,
}

/// `lhs -> left right` with probability `prob` and a head side.
#[derive(Debug, Clone, Copy)]
pub struct BinaryRule {
    pub lhs: Symbol,
    pub left: Symbol,
    pub right: Symbol,
    pub prob: f64,
    pub head: HeadSide,
}

/// A normalized, indexed PCFG.
#[derive(Debug, Clone)]
pub struct Grammar {
    preterm: Vec<PretermRule>,
    unary: Vec<UnaryRule>,
    binary: Vec<BinaryRule>,
    /// pos -> rules producing it (for CKY initialization).
    by_pos: HashMap<Pos, Vec<PretermRule>>,
    /// (left, right) -> binary rules (for CKY combination).
    by_children: HashMap<(Symbol, Symbol), Vec<BinaryRule>>,
}

impl Grammar {
    /// All preterminal rules.
    pub fn preterminal_rules(&self) -> &[PretermRule] {
        &self.preterm
    }

    /// All unary rules.
    pub fn unary_rules(&self) -> &[UnaryRule] {
        &self.unary
    }

    /// All binary rules.
    pub fn binary_rules(&self) -> &[BinaryRule] {
        &self.binary
    }

    /// Preterminal rules that yield `pos`.
    pub fn rules_for_pos(&self, pos: Pos) -> &[PretermRule] {
        self.by_pos.get(&pos).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Binary rules over a `(left, right)` child pair.
    pub fn rules_for_children(&self, left: Symbol, right: Symbol) -> &[BinaryRule] {
        self.by_children
            .get(&(left, right))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The embedded English grammar used throughout the reproduction.
    ///
    /// Weights are hand-set relative frequencies tuned on the synthetic
    /// corpora; `build` normalizes them per LHS.
    pub fn english() -> Grammar {
        let mut g = GrammarBuilder::new();
        use HeadSide::{Left, Right};
        use Symbol::*;

        // ---- preterminals ------------------------------------------------
        g.preterm(N, Pos::Noun, 6.0);
        g.preterm(N, Pos::ProperNoun, 5.0);
        g.preterm(N, Pos::Pronoun, 1.5);
        g.preterm(N, Pos::Num, 0.8);
        g.preterm(N, Pos::Other, 0.2);
        g.preterm(N, Pos::Wh, 0.1);
        g.preterm(V, Pos::Verb, 1.0);
        g.preterm(Aux, Pos::Aux, 1.0);
        g.preterm(In, Pos::Prep, 1.0);
        g.preterm(Dt, Pos::Det, 1.0);
        g.preterm(Cc, Pos::Conj, 1.0);
        g.preterm(Adjp, Pos::Adj, 1.0);
        g.preterm(Advp, Pos::Adv, 1.0);
        g.preterm(Num, Pos::Num, 1.0);

        // ---- unaries ------------------------------------------------------
        g.unary(Top, S, 8.0);
        g.unary(Top, Np, 1.5); // fragments: titles, appositives
        g.unary(Top, Vp, 0.5);
        g.unary(Nbar, N, 5.0);
        g.unary(Np, Nbar, 4.0);
        g.unary(Vp, V, 1.0);

        // ---- clauses ------------------------------------------------------
        g.binary(S, Np, Vp, 9.0, Right);
        g.binary(S, S, CcS, 0.6, Left);
        g.binary(CcS, Cc, S, 1.0, Right);
        g.binary(S, Advp, S, 0.4, Right);

        // ---- noun phrases ---------------------------------------------------
        g.binary(Np, Dt, Nbar, 4.5, Right);
        g.binary(Np, Np, Pp, 2.0, Left);
        g.binary(Np, Num, Nbar, 0.6, Right);
        g.binary(Np, Np, CcNp, 0.8, Left);
        g.binary(CcNp, Cc, Np, 1.0, Right);
        g.binary(Nbar, Adjp, Nbar, 2.2, Right);
        g.binary(Nbar, N, Nbar, 2.8, Right); // noun compounds, right-headed
        g.binary(Nbar, Num, Nbar, 0.4, Right);
        g.binary(Np, Np, Np, 0.3, Left); // appositions ("the duke William")

        // ---- verb phrases ---------------------------------------------------
        g.binary(Vp, V, Np, 4.0, Left);
        g.binary(Vp, V, Pp, 1.2, Left);
        g.binary(Vp, Vp, Pp, 2.0, Left);
        g.binary(Vp, Aux, Vp, 1.4, Right);
        g.binary(Vp, Aux, Np, 0.7, Right); // copula: "is the capital"
        g.binary(Vp, Aux, Adjp, 0.5, Right);
        g.binary(Vp, Aux, Pp, 0.4, Right);
        g.binary(Vp, Advp, Vp, 0.4, Right);
        g.binary(Vp, Vp, Advp, 0.4, Left);
        g.binary(Vp, V, Adjp, 0.3, Left);
        g.binary(Vp, Vp, CcVp, 0.5, Left);
        g.binary(CcVp, Cc, Vp, 1.0, Right);
        g.binary(Vp, Vp, Np, 0.3, Left); // ditransitive tail
        g.binary(Vp, V, S, 0.2, Left); // clausal complement

        // ---- prepositional / modifier phrases --------------------------------
        g.binary(Pp, In, Np, 1.0, Left); // preposition heads its phrase
        g.binary(Adjp, Advp, Adjp, 0.3, Right);
        g.binary(Adjp, Adjp, Adjp, 0.1, Right);

        g.build()
    }
}

/// Incremental grammar construction with per-LHS normalization.
#[derive(Debug, Default)]
pub struct GrammarBuilder {
    preterm: Vec<PretermRule>,
    unary: Vec<UnaryRule>,
    binary: Vec<BinaryRule>,
}

impl GrammarBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a preterminal rule with relative weight `w`.
    pub fn preterm(&mut self, lhs: Symbol, pos: Pos, w: f64) -> &mut Self {
        self.preterm.push(PretermRule { lhs, pos, prob: w });
        self
    }

    /// Add a unary rule with relative weight `w`.
    pub fn unary(&mut self, lhs: Symbol, child: Symbol, w: f64) -> &mut Self {
        self.unary.push(UnaryRule {
            lhs,
            child,
            prob: w,
        });
        self
    }

    /// Add a binary rule with relative weight `w` and head side.
    pub fn binary(
        &mut self,
        lhs: Symbol,
        left: Symbol,
        right: Symbol,
        w: f64,
        head: HeadSide,
    ) -> &mut Self {
        self.binary.push(BinaryRule {
            lhs,
            left,
            right,
            prob: w,
            head,
        });
        self
    }

    /// Normalize weights per LHS (across all three rule kinds) and index.
    pub fn build(&self) -> Grammar {
        let mut totals: HashMap<Symbol, f64> = HashMap::new();
        for r in &self.preterm {
            *totals.entry(r.lhs).or_insert(0.0) += r.prob;
        }
        for r in &self.unary {
            *totals.entry(r.lhs).or_insert(0.0) += r.prob;
        }
        for r in &self.binary {
            *totals.entry(r.lhs).or_insert(0.0) += r.prob;
        }
        let norm = |lhs: Symbol, p: f64| p / totals[&lhs];

        let preterm: Vec<PretermRule> = self
            .preterm
            .iter()
            .map(|r| PretermRule {
                prob: norm(r.lhs, r.prob),
                ..*r
            })
            .collect();
        let unary: Vec<UnaryRule> = self
            .unary
            .iter()
            .map(|r| UnaryRule {
                prob: norm(r.lhs, r.prob),
                ..*r
            })
            .collect();
        let binary: Vec<BinaryRule> = self
            .binary
            .iter()
            .map(|r| BinaryRule {
                prob: norm(r.lhs, r.prob),
                ..*r
            })
            .collect();

        let mut by_pos: HashMap<Pos, Vec<PretermRule>> = HashMap::new();
        for r in &preterm {
            by_pos.entry(r.pos).or_default().push(*r);
        }
        let mut by_children: HashMap<(Symbol, Symbol), Vec<BinaryRule>> = HashMap::new();
        for r in &binary {
            by_children.entry((r.left, r.right)).or_default().push(*r);
        }
        Grammar {
            preterm,
            unary,
            binary,
            by_pos,
            by_children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_grammar_normalizes_per_lhs() {
        let g = Grammar::english();
        let mut sums: HashMap<Symbol, f64> = HashMap::new();
        for r in g.preterminal_rules() {
            *sums.entry(r.lhs).or_insert(0.0) += r.prob;
        }
        for r in g.unary_rules() {
            *sums.entry(r.lhs).or_insert(0.0) += r.prob;
        }
        for r in g.binary_rules() {
            *sums.entry(r.lhs).or_insert(0.0) += r.prob;
        }
        for (lhs, total) in sums {
            assert!((total - 1.0).abs() < 1e-9, "{lhs:?} sums to {total}");
        }
    }

    #[test]
    fn pos_index_covers_open_classes() {
        let g = Grammar::english();
        for pos in [
            Pos::Noun,
            Pos::ProperNoun,
            Pos::Verb,
            Pos::Adj,
            Pos::Adv,
            Pos::Det,
            Pos::Prep,
        ] {
            assert!(!g.rules_for_pos(pos).is_empty(), "{pos:?} unproducible");
        }
    }

    #[test]
    fn children_index_finds_s_rule() {
        let g = Grammar::english();
        let rules = g.rules_for_children(Symbol::Np, Symbol::Vp);
        assert!(rules
            .iter()
            .any(|r| r.lhs == Symbol::S && r.head == HeadSide::Right));
    }

    #[test]
    fn probabilities_positive() {
        let g = Grammar::english();
        assert!(g.preterminal_rules().iter().all(|r| r.prob > 0.0));
        assert!(g.unary_rules().iter().all(|r| r.prob > 0.0));
        assert!(g.binary_rules().iter().all(|r| r.prob > 0.0));
    }

    #[test]
    fn labels_render() {
        assert_eq!(Symbol::Np.label(), "NP");
        assert_eq!(Symbol::Top.label(), "TOP");
    }
}
