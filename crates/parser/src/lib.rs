//! # gced-parser — L-PCFG constituency parsing and dependency trees
//!
//! The Weighted Syntactic Parsing Tree Constructor (Sec. III-D of the
//! GCED paper) uses Lexicalized Probabilistic Context-Free Grammars
//! (L-PCFGs, Charniak/Collins style) to build a tree over the
//! answer-oriented sentences, where **each node is a word indexed by its
//! position** (Fig. 6). This crate provides the whole substrate the paper
//! got from Stanford CoreNLP:
//!
//! * [`grammar`] — a hand-built English PCFG in binary + unary form with
//!   per-rule head directions (the "L" of L-PCFG), normalized at build
//!   time;
//! * [`cky`] — exact probabilistic CKY over POS-tag terminals with unary
//!   closure and a right-branching fallback for out-of-grammar input
//!   (failure injection: parsing never panics and never fails);
//! * [`tree`] — the lexicalized constituency tree;
//! * [`dep`] — head-percolated dependency trees over token indices: the
//!   exact structure SGS/SCS search over. Punctuation and clitic tokens
//!   (skipped by the grammar) are re-attached to their preceding token;
//!   multi-sentence inputs are chained root-to-root so the final tree is
//!   always single-rooted and connected.
//!
//! ```
//! use gced_parser::parse_document;
//! let doc = gced_text::analyze("The Broncos defeated the Panthers.");
//! let tree = parse_document(&doc);
//! assert_eq!(tree.len(), doc.len());
//! tree.validate().unwrap();
//! ```

pub mod cache;
pub mod cky;
pub mod dep;
pub mod grammar;
pub mod tree;

pub use cache::{ParseCache, ParseCacheStats};
pub use cky::CkyParser;
pub use dep::{DepTree, TreeError};
pub use grammar::{Grammar, HeadSide, Symbol};
pub use tree::{ConstNode, ConstTree};

use gced_text::Document;

/// Parse a whole analysed document into one dependency tree over global
/// token indices. Sentences are parsed independently with the embedded
/// grammar and chained root-to-root (sentence *k+1*'s root becomes a
/// child of sentence *k*'s root), so the result is always a single
/// connected tree covering every token.
pub fn parse_document(doc: &Document) -> DepTree {
    let parser = CkyParser::embedded();
    parse_document_with(doc, &parser)
}

/// [`parse_document`] with a caller-supplied parser (custom grammar).
pub fn parse_document_with(doc: &Document, parser: &CkyParser) -> DepTree {
    let mut trees = Vec::with_capacity(doc.sentences.len());
    for s in &doc.sentences {
        let toks = &doc.tokens[s.token_start..s.token_end];
        let local = parser.parse_tokens(toks);
        trees.push((s.token_start, local));
    }
    DepTree::chain(trees, doc.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_text::analyze;

    #[test]
    fn parse_document_covers_all_tokens() {
        let doc = analyze("The Broncos defeated the Panthers. They earned the title.");
        let tree = parse_document(&doc);
        assert_eq!(tree.len(), doc.len());
        tree.validate().unwrap();
    }

    #[test]
    fn empty_document_gives_empty_tree() {
        let doc = analyze("");
        let tree = parse_document(&doc);
        assert_eq!(tree.len(), 0);
    }

    #[test]
    fn single_token_document() {
        let doc = analyze("Broncos");
        let tree = parse_document(&doc);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.root(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn multi_sentence_is_single_rooted() {
        let doc = analyze("A cat sat. A dog ran. A bird flew.");
        let tree = parse_document(&doc);
        tree.validate().unwrap();
        let roots: Vec<usize> = (0..tree.len())
            .filter(|&i| tree.parent(i).is_none())
            .collect();
        assert_eq!(roots.len(), 1);
    }
}
