//! Dependency trees over token indices.
//!
//! This is the tree type the Grow-and-Clip search operates on: every node
//! is a token (identified by index, exactly like the numbered nodes of
//! Fig. 6 in the paper), each non-root node has one parent, and the tree
//! is connected. [`DepTree::chain`] combines per-sentence trees into one
//! document tree by linking sentence roots.

use std::fmt;

/// Structural invariant violations detected by [`DepTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Not exactly one root (index of the extra root, if any).
    RootCount(usize),
    /// A parent/children inconsistency at this node.
    Inconsistent(usize),
    /// A cycle reachable from this node.
    Cycle(usize),
    /// A node unreachable from the root.
    Disconnected(usize),
    /// Parent index out of bounds at this node.
    OutOfBounds(usize),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::RootCount(n) => write!(f, "expected exactly 1 root, found {n}"),
            TreeError::Inconsistent(i) => write!(f, "parent/children mismatch at node {i}"),
            TreeError::Cycle(i) => write!(f, "cycle through node {i}"),
            TreeError::Disconnected(i) => write!(f, "node {i} unreachable from root"),
            TreeError::OutOfBounds(i) => write!(f, "parent index out of bounds at node {i}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted dependency tree over token indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepTree {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl DepTree {
    /// The empty tree (zero tokens).
    pub fn empty() -> Self {
        DepTree {
            parent: Vec::new(),
            children: Vec::new(),
            root: 0,
        }
    }

    /// Build from a parent vector (exactly one `None` = root). Children
    /// are derived; panics if no root exists and `parents` is non-empty.
    pub fn from_parents(parents: Vec<Option<usize>>) -> Self {
        let n = parents.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut root = 0;
        for (i, p) in parents.iter().enumerate() {
            match p {
                Some(p) => children[*p].push(i),
                None => root = i,
            }
        }
        assert!(
            n == 0 || parents.iter().any(Option::is_none),
            "no root in parent vector"
        );
        DepTree {
            parent: parents,
            children,
            root,
        }
    }

    /// A right-branching chain: token 0 is the root, token *i* attaches
    /// to token *i−1*. The universal fallback structure.
    pub fn right_branching(n: usize) -> Self {
        let parents = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        DepTree::from_parents(parents)
    }

    /// Combine per-sentence trees (given as `(token_offset, tree)`) into
    /// one document tree of `total_len` tokens. Sentence *k+1*'s root
    /// attaches to sentence *k*'s root.
    pub fn chain(trees: Vec<(usize, DepTree)>, total_len: usize) -> Self {
        if total_len == 0 {
            return DepTree::empty();
        }
        let mut parents: Vec<Option<usize>> = vec![None; total_len];
        let mut prev_root: Option<usize> = None;
        for (offset, tree) in &trees {
            for i in 0..tree.len() {
                parents[offset + i] = tree.parent(i).map(|p| offset + p);
            }
            if !tree.is_empty() {
                let global_root = offset + tree.root();
                if let Some(pr) = prev_root {
                    parents[global_root] = Some(pr);
                }
                prev_root = Some(global_root);
            }
        }
        // Tokens not covered by any sentence tree (should not happen for
        // analyzer output, but keep the function total): attach to the
        // previous token or become the root.
        let first_root = trees
            .iter()
            .find(|(_, t)| !t.is_empty())
            .map(|(o, t)| o + t.root());
        for (i, parent) in parents.iter_mut().enumerate() {
            let covered = trees.iter().any(|(o, t)| i >= *o && i < o + t.len());
            if !covered {
                *parent = match first_root {
                    Some(r) if r != i => Some(r),
                    _ => {
                        if i == 0 {
                            None
                        } else {
                            Some(i - 1)
                        }
                    }
                };
            }
        }
        if first_root.is_none() && total_len > 0 {
            parents[0] = None;
        }
        DepTree::from_parents(parents)
    }

    /// Number of nodes (tokens).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of node `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Children of node `i`, in insertion (≈ left-to-right) order.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// All descendants of `i`, including `i` itself (preorder).
    pub fn subtree(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in &self.children[x] {
                stack.push(c);
            }
        }
        out
    }

    /// True if `anc` is an ancestor of `node` (or equal to it).
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = Some(node);
        while let Some(x) = cur {
            if x == anc {
                return true;
            }
            cur = self.parent[x];
        }
        false
    }

    /// Depth of node `i` (root = 0).
    pub fn depth(&self, i: usize) -> usize {
        let mut d = 0;
        let mut cur = self.parent[i];
        while let Some(p) = cur {
            d += 1;
            cur = self.parent[p];
        }
        d
    }

    /// Path from `i` up to the root, inclusive of both ends.
    pub fn path_to_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = self.parent[i];
        while let Some(p) = cur {
            path.push(p);
            cur = self.parent[p];
        }
        path
    }

    /// Check all structural invariants.
    pub fn validate(&self) -> Result<(), TreeError> {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        let roots: Vec<usize> = (0..n).filter(|&i| self.parent[i].is_none()).collect();
        if roots.len() != 1 {
            return Err(TreeError::RootCount(roots.len()));
        }
        if roots[0] != self.root {
            return Err(TreeError::Inconsistent(self.root));
        }
        for i in 0..n {
            if let Some(p) = self.parent[i] {
                if p >= n {
                    return Err(TreeError::OutOfBounds(i));
                }
                if !self.children[p].contains(&i) {
                    return Err(TreeError::Inconsistent(i));
                }
            }
            for &c in &self.children[i] {
                if self.parent[c] != Some(i) {
                    return Err(TreeError::Inconsistent(c));
                }
            }
        }
        // Reachability (also proves acyclicity given the 1-parent rule).
        let reach = self.subtree(self.root);
        if reach.len() != n {
            let missing = (0..n)
                .find(|i| !reach.contains(i))
                .expect("some node missing");
            // Distinguish cycles from plain disconnection.
            let mut seen = vec![false; n];
            let mut cur = Some(missing);
            while let Some(x) = cur {
                if seen[x] {
                    return Err(TreeError::Cycle(x));
                }
                seen[x] = true;
                cur = self.parent[x];
            }
            return Err(TreeError::Disconnected(missing));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 <- 1 <- {2, 3}; 3 <- 4
    fn sample() -> DepTree {
        DepTree::from_parents(vec![None, Some(0), Some(1), Some(1), Some(3)])
    }

    #[test]
    fn from_parents_builds_children() {
        let t = sample();
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(1), &[2, 3]);
        assert_eq!(t.parent(4), Some(3));
        t.validate().unwrap();
    }

    #[test]
    fn subtree_collects_descendants() {
        let t = sample();
        let mut s = t.subtree(1);
        s.sort_unstable();
        assert_eq!(s, vec![1, 2, 3, 4]);
        assert_eq!(t.subtree(4), vec![4]);
    }

    #[test]
    fn ancestor_and_depth() {
        let t = sample();
        assert!(t.is_ancestor(0, 4));
        assert!(t.is_ancestor(1, 2));
        assert!(!t.is_ancestor(2, 3));
        assert!(t.is_ancestor(3, 3));
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(4), 3);
        assert_eq!(t.path_to_root(4), vec![4, 3, 1, 0]);
    }

    #[test]
    fn right_branching_shape() {
        let t = DepTree::right_branching(4);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(3), Some(2));
        t.validate().unwrap();
    }

    #[test]
    fn chain_links_sentence_roots() {
        let s1 = DepTree::from_parents(vec![Some(1), None]); // root at 1
        let s2 = DepTree::from_parents(vec![None, Some(0)]); // root at 0
        let t = DepTree::chain(vec![(0, s1), (2, s2)], 4);
        t.validate().unwrap();
        assert_eq!(t.root(), 1);
        assert_eq!(t.parent(2), Some(1)); // second sentence root -> first root
        assert_eq!(t.parent(3), Some(2));
    }

    #[test]
    fn chain_empty() {
        let t = DepTree::chain(vec![], 0);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn validate_detects_multiple_roots() {
        let t = DepTree {
            parent: vec![None, None],
            children: vec![vec![], vec![]],
            root: 0,
        };
        assert_eq!(t.validate(), Err(TreeError::RootCount(2)));
    }

    #[test]
    fn validate_detects_cycle() {
        let t = DepTree {
            parent: vec![None, Some(2), Some(1)],
            children: vec![vec![], vec![2], vec![1]],
            root: 0,
        };
        assert!(matches!(t.validate(), Err(TreeError::Cycle(_))));
    }

    #[test]
    fn validate_detects_inconsistency() {
        let t = DepTree {
            parent: vec![None, Some(0)],
            children: vec![vec![], vec![]], // missing child link
            root: 0,
        };
        assert_eq!(t.validate(), Err(TreeError::Inconsistent(1)));
    }

    #[test]
    #[should_panic(expected = "no root")]
    fn from_parents_requires_root() {
        let _ = DepTree::from_parents(vec![Some(1), Some(0)]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            TreeError::RootCount(2).to_string(),
            "expected exactly 1 root, found 2"
        );
        assert!(TreeError::Cycle(3).to_string().contains("cycle"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Generate a random valid parent vector: node i attaches to some
    /// node < i (node 0 is the root), then a random permutation is NOT
    /// applied (prefix-closed trees are general enough here).
    fn arb_tree(max: usize) -> impl Strategy<Value = DepTree> {
        (1..max).prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<Option<usize>>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(None).boxed()
                    } else {
                        (0..i).prop_map(Some).boxed()
                    }
                })
                .collect();
            parents.prop_map(DepTree::from_parents)
        })
    }

    proptest! {
        #[test]
        fn generated_trees_validate(t in arb_tree(24)) {
            prop_assert!(t.validate().is_ok());
        }

        /// Subtree sizes sum to n + total depth identity: every node is
        /// in exactly depth(i)+1 subtrees.
        #[test]
        fn subtree_membership_counts(t in arb_tree(16)) {
            let n = t.len();
            let total: usize = (0..n).map(|i| t.subtree(i).len()).sum();
            let depths: usize = (0..n).map(|i| t.depth(i) + 1).sum();
            prop_assert_eq!(total, depths);
        }

        /// path_to_root always ends at the root and has depth+1 entries.
        #[test]
        fn paths_reach_root(t in arb_tree(16)) {
            for i in 0..t.len() {
                let p = t.path_to_root(i);
                prop_assert_eq!(*p.last().unwrap(), t.root());
                prop_assert_eq!(p.len(), t.depth(i) + 1);
            }
        }

        /// chain() over a partition of sentence trees is valid and keeps
        /// the first sentence's root.
        #[test]
        fn chain_valid(sizes in prop::collection::vec(1usize..6, 1..5)) {
            let mut trees = Vec::new();
            let mut offset = 0;
            for &s in &sizes {
                trees.push((offset, DepTree::right_branching(s)));
                offset += s;
            }
            let t = DepTree::chain(trees, offset);
            prop_assert!(t.validate().is_ok());
            prop_assert_eq!(t.root(), 0);
        }
    }
}
