//! Lexicalized constituency trees (arena representation).

use crate::grammar::Symbol;
use gced_text::Pos;

/// One node of a constituency tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstNode {
    /// A leaf anchored to a token (by local index within the parsed span).
    Leaf {
        /// Local token index.
        token: usize,
        /// The token's POS tag.
        pos: Pos,
    },
    /// An internal constituent.
    Internal {
        /// Nonterminal label.
        label: Symbol,
        /// Children node ids, left to right.
        children: Vec<usize>,
        /// Local index of the lexical head token (percolated).
        head: usize,
    },
}

/// An arena-allocated constituency tree over a token span.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstTree {
    nodes: Vec<ConstNode>,
    root: usize,
    /// Number of tokens the tree spans.
    n_tokens: usize,
}

impl ConstTree {
    /// Assemble from an arena and root id. The caller guarantees the
    /// arena is a tree (no sharing); `validate` checks it.
    pub fn new(nodes: Vec<ConstNode>, root: usize, n_tokens: usize) -> Self {
        ConstTree {
            nodes,
            root,
            n_tokens,
        }
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: usize) -> &ConstNode {
        &self.nodes[id]
    }

    /// Number of nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tokens spanned.
    pub fn token_count(&self) -> usize {
        self.n_tokens
    }

    /// The lexical head token (local index) of a node.
    pub fn head_of(&self, id: usize) -> usize {
        match &self.nodes[id] {
            ConstNode::Leaf { token, .. } => *token,
            ConstNode::Internal { head, .. } => *head,
        }
    }

    /// The tokens (local indices) in the yield of `id`, left to right.
    pub fn yield_of(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_yield(id, &mut out);
        out
    }

    fn collect_yield(&self, id: usize, out: &mut Vec<usize>) {
        match &self.nodes[id] {
            ConstNode::Leaf { token, .. } => out.push(*token),
            ConstNode::Internal { children, .. } => {
                for &c in children {
                    self.collect_yield(c, out);
                }
            }
        }
    }

    /// Pretty-print as a bracketed string, e.g. `(S (NP ...) (VP ...))`.
    /// `words` supplies surface forms by local index.
    pub fn bracketed(&self, words: &[&str]) -> String {
        let mut s = String::new();
        self.render(self.root, words, &mut s);
        s
    }

    fn render(&self, id: usize, words: &[&str], out: &mut String) {
        match &self.nodes[id] {
            ConstNode::Leaf { token, pos } => {
                out.push('(');
                out.push_str(pos.label());
                out.push(' ');
                out.push_str(words.get(*token).copied().unwrap_or("?"));
                out.push(')');
            }
            ConstNode::Internal {
                label, children, ..
            } => {
                out.push('(');
                out.push_str(label.label());
                for &c in children {
                    out.push(' ');
                    self.render(c, words, out);
                }
                out.push(')');
            }
        }
    }

    /// Structural checks: yield of the root covers `0..n_tokens` exactly
    /// once in order; every internal head is in its own yield.
    pub fn validate(&self) -> Result<(), String> {
        let y = self.yield_of(self.root);
        let expect: Vec<usize> = (0..self.n_tokens).collect();
        if y != expect {
            return Err(format!("yield {y:?} != 0..{}", self.n_tokens));
        }
        for id in 0..self.nodes.len() {
            if let ConstNode::Internal { head, .. } = &self.nodes[id] {
                if !self.yield_of(id).contains(head) {
                    return Err(format!("node {id}: head {head} outside its yield"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (S (NP (N cats:0)) (VP (V sleep:1)))
    fn tiny() -> ConstTree {
        let nodes = vec![
            ConstNode::Leaf {
                token: 0,
                pos: Pos::Noun,
            }, // 0
            ConstNode::Leaf {
                token: 1,
                pos: Pos::Verb,
            }, // 1
            ConstNode::Internal {
                label: Symbol::Np,
                children: vec![0],
                head: 0,
            }, // 2
            ConstNode::Internal {
                label: Symbol::Vp,
                children: vec![1],
                head: 1,
            }, // 3
            ConstNode::Internal {
                label: Symbol::S,
                children: vec![2, 3],
                head: 1,
            }, // 4
        ];
        ConstTree::new(nodes, 4, 2)
    }

    #[test]
    fn yield_is_in_order() {
        let t = tiny();
        assert_eq!(t.yield_of(t.root()), vec![0, 1]);
        assert_eq!(t.yield_of(2), vec![0]);
    }

    #[test]
    fn heads_percolate() {
        let t = tiny();
        assert_eq!(t.head_of(t.root()), 1);
        assert_eq!(t.head_of(2), 0);
    }

    #[test]
    fn validate_accepts_good_tree() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_head() {
        let mut nodes = vec![
            ConstNode::Leaf {
                token: 0,
                pos: Pos::Noun,
            },
            ConstNode::Internal {
                label: Symbol::Np,
                children: vec![0],
                head: 5,
            },
        ];
        let t = ConstTree::new(std::mem::take(&mut nodes), 1, 1);
        assert!(t.validate().is_err());
    }

    #[test]
    fn bracketed_rendering() {
        let t = tiny();
        assert_eq!(
            t.bracketed(&["cats", "sleep"]),
            "(S (NP (NN cats)) (VP (VB sleep)))"
        );
    }
}
