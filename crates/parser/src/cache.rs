//! Bounded per-sentence parse memoization keyed by POS-tag signature.
//!
//! [`CkyParser::parse_tokens`](crate::CkyParser::parse_tokens) is a pure
//! function of the token **POS sequence**: the grammar run consumes
//! tags, the punctuation/particle exclusion and re-attachment consult
//! tags, and the right-branching fallback depends only on length. Two
//! sentences with the same tag signature therefore parse to the same
//! [`DepTree`] — so repeated sentences (and, more often than one would
//! guess, merely *similarly shaped* ones) across the requests of a
//! long-lived server can parse once.
//!
//! [`ParseCache`] is a bounded LRU over that signature. Recency is a
//! monotonic tick per entry, indexed by a `BTreeMap<tick, key>` so both
//! the hit path and the eviction path are `O(log capacity)`. A cache
//! hit returns a clone of the memoized tree, which is the exact value a
//! fresh parse would produce — callers observe **bit-identical** output
//! whether the cache is cold, warm, shared across threads, or absent
//! (pinned by the equivalence property test below).

use crate::dep::DepTree;
use gced_text::Pos;
use std::collections::{BTreeMap, HashMap};

/// Counters describing a cache's effectiveness (served by `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real parse.
    pub misses: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

/// A bounded LRU of `POS signature → dependency tree`.
#[derive(Debug)]
pub struct ParseCache {
    capacity: usize,
    /// Monotonic recency clock.
    tick: u64,
    map: HashMap<Vec<Pos>, Entry>,
    /// Recency index: oldest tick first.
    order: BTreeMap<u64, Vec<Pos>>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry {
    tree: DepTree,
    tick: u64,
}

impl ParseCache {
    /// Cache holding at most `capacity` parses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ParseCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a tag signature, refreshing its recency on a hit.
    pub fn get(&mut self, key: &[Pos]) -> Option<DepTree> {
        match self.map.get_mut(key) {
            Some(entry) => {
                self.tick += 1;
                self.order.remove(&entry.tick);
                entry.tick = self.tick;
                self.order.insert(self.tick, key.to_vec());
                self.hits += 1;
                Some(entry.tree.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoize a parse, evicting the least-recently-used entry at
    /// capacity. Re-inserting an existing key refreshes its value and
    /// recency (concurrent writers racing on one signature insert
    /// identical trees, so whoever lands last changes nothing).
    pub fn insert(&mut self, key: Vec<Pos>, tree: DepTree) {
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.tick);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        self.tick += 1;
        self.order.insert(self.tick, key.clone());
        self.map.insert(
            key,
            Entry {
                tree,
                tick: self.tick,
            },
        );
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> ParseCacheStats {
        ParseCacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: usize, salt: usize) -> Vec<Pos> {
        (0..n)
            .map(|i| {
                if (i + salt).is_multiple_of(3) {
                    Pos::Noun
                } else if (i + salt) % 3 == 1 {
                    Pos::Verb
                } else {
                    Pos::Det
                }
            })
            .collect()
    }

    #[test]
    fn hit_returns_inserted_tree() {
        let mut cache = ParseCache::new(4);
        let key = sig(5, 0);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), DepTree::right_branching(5));
        let hit = cache.get(&key).expect("hit");
        assert_eq!(hit, DepTree::right_branching(5));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn capacity_is_enforced_lru() {
        let mut cache = ParseCache::new(2);
        cache.insert(sig(1, 0), DepTree::right_branching(1));
        cache.insert(sig(2, 0), DepTree::right_branching(2));
        // Touch the older entry so the newer one becomes the LRU victim.
        assert!(cache.get(&sig(1, 0)).is_some());
        cache.insert(sig(3, 0), DepTree::right_branching(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&sig(1, 0)).is_some(), "recently used survived");
        assert!(cache.get(&sig(2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&sig(3, 0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let mut cache = ParseCache::new(2);
        cache.insert(sig(4, 0), DepTree::right_branching(4));
        cache.insert(sig(4, 0), DepTree::right_branching(4));
        assert_eq!(cache.len(), 1);
        cache.insert(sig(5, 0), DepTree::right_branching(5));
        cache.insert(sig(6, 0), DepTree::right_branching(6));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut cache = ParseCache::new(0);
        cache.insert(sig(2, 0), DepTree::right_branching(2));
        assert_eq!(cache.len(), 1);
        cache.insert(sig(3, 0), DepTree::right_branching(3));
        assert_eq!(cache.len(), 1);
    }
}
