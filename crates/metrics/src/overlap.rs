//! Answer overlap metrics (paper Eq. 1, SQuAD conventions).
//!
//! Precision = |common| / |prediction|, Recall = |common| / |reference|,
//! F1 = harmonic mean; `common` counts tokens with multiplicity (bag
//! intersection), exactly like the official SQuAD evaluation script the
//! paper cites ([41], [42]).

use std::collections::HashMap;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Scores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl F1Scores {
    /// All-zero scores.
    pub const ZERO: F1Scores = F1Scores {
        precision: 0.0,
        recall: 0.0,
        f1: 0.0,
    };
}

/// SQuAD answer normalization: lowercase, strip punctuation, drop the
/// articles `a`/`an`/`the`, collapse whitespace.
pub fn normalize_answer(s: &str) -> Vec<String> {
    s.to_lowercase()
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c.is_whitespace() {
                c
            } else {
                ' '
            }
        })
        .collect::<String>()
        .split_whitespace()
        .filter(|w| !matches!(*w, "a" | "an" | "the"))
        .map(String::from)
        .collect()
}

/// Exact match after normalization.
pub fn exact_match(prediction: &str, reference: &str) -> bool {
    let p = normalize_answer(prediction);
    let r = normalize_answer(reference);
    !p.is_empty() && p == r || (p.is_empty() && r.is_empty())
}

/// Token-level F1 per Eq. 1 over normalized tokens.
pub fn token_f1(prediction: &str, reference: &str) -> F1Scores {
    let p = normalize_answer(prediction);
    let r = normalize_answer(reference);
    if p.is_empty() && r.is_empty() {
        return F1Scores {
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        };
    }
    if p.is_empty() || r.is_empty() {
        return F1Scores::ZERO;
    }
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for w in &r {
        *counts.entry(w.as_str()).or_insert(0) += 1;
    }
    let mut common = 0i64;
    for w in &p {
        if let Some(c) = counts.get_mut(w.as_str()) {
            if *c > 0 {
                *c -= 1;
                common += 1;
            }
        }
    }
    if common == 0 {
        return F1Scores::ZERO;
    }
    let precision = common as f64 / p.len() as f64;
    let recall = common as f64 / r.len() as f64;
    let f1 = 2.0 * precision * recall / (precision + recall);
    F1Scores {
        precision,
        recall,
        f1,
    }
}

/// Best F1 of a prediction against any of several references (TriviaQA
/// convention: a question may admit several answer aliases).
pub fn best_f1<'a>(prediction: &str, references: impl IntoIterator<Item = &'a str>) -> F1Scores {
    references
        .into_iter()
        .map(|r| token_f1(prediction, r))
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).expect("f1 is never NaN"))
        .unwrap_or(F1Scores::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_strips_articles_and_punct() {
        assert_eq!(
            normalize_answer("The Denver Broncos!"),
            vec!["denver", "broncos"]
        );
        assert_eq!(normalize_answer("a  b the c"), vec!["b", "c"]);
        assert!(normalize_answer("the a an").is_empty());
    }

    #[test]
    fn exact_match_ignores_case_and_articles() {
        assert!(exact_match("The Broncos", "broncos"));
        assert!(exact_match("Denver Broncos", "denver broncos."));
        assert!(!exact_match("Broncos", "Panthers"));
    }

    #[test]
    fn identical_strings_have_f1_one() {
        let s = token_f1("william the conqueror", "William the Conqueror");
        assert!((s.f1 - 1.0).abs() < 1e-12);
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_strings_have_f1_zero() {
        assert_eq!(token_f1("alpha beta", "gamma delta"), F1Scores::ZERO);
    }

    #[test]
    fn partial_overlap_matches_eq1() {
        // prediction: "denver broncos" (2), reference: "denver broncos team" (3)
        // common = 2, P = 1, R = 2/3, F1 = 0.8
        let s = token_f1("Denver Broncos", "Denver Broncos team");
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.f1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_counts_as_bag() {
        // "b b" vs "b": common is 1, P = 0.5, R = 1.
        let s = token_f1("b b", "b");
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(token_f1("", "x"), F1Scores::ZERO);
        assert_eq!(token_f1("x", ""), F1Scores::ZERO);
        let both = token_f1("", "");
        assert!((both.f1 - 1.0).abs() < 1e-12);
        assert!(exact_match("", ""));
    }

    #[test]
    fn best_f1_takes_max_over_aliases() {
        let s = best_f1("JFK", ["John F Kennedy", "JFK", "Kennedy"]);
        assert!((s.f1 - 1.0).abs() < 1e-12);
        assert_eq!(best_f1("nothing", Vec::<&str>::new()), F1Scores::ZERO);
    }

    #[test]
    fn f1_symmetry() {
        let a = token_f1("x y z", "x y");
        let b = token_f1("x y", "x y z");
        assert!((a.f1 - b.f1).abs() < 1e-12);
        assert!((a.precision - b.recall).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn phrase() -> impl Strategy<Value = String> {
        prop::collection::vec(
            prop::sample::select(vec![
                "denver", "broncos", "won", "title", "the", "in", "1066",
            ]),
            0..6,
        )
        .prop_map(|ws| ws.join(" "))
    }

    proptest! {
        /// F1 is bounded, symmetric, and 1.0 on self-comparison.
        #[test]
        fn f1_properties(a in phrase(), b in phrase()) {
            let ab = token_f1(&a, &b);
            let ba = token_f1(&b, &a);
            prop_assert!((0.0..=1.0).contains(&ab.f1));
            prop_assert!((ab.f1 - ba.f1).abs() < 1e-12);
            let aa = token_f1(&a, &a);
            prop_assert!((aa.f1 - 1.0).abs() < 1e-12);
        }

        /// Exact match implies F1 = 1.
        #[test]
        fn em_implies_f1(a in phrase()) {
            if exact_match(&a, &a) {
                prop_assert!((token_f1(&a, &a).f1 - 1.0).abs() < 1e-12);
            }
        }
    }
}
