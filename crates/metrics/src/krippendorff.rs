//! Krippendorff's α for inter-rater agreement (paper Table II).
//!
//! The paper reports α per rater group and criterion over 1–5 ratings and
//! discards items whose agreement falls below 0.7. We implement the
//! standard coincidence-matrix formulation with the **interval** distance
//! metric δ²(c, k) = (c − k)², which is the conventional choice for
//! equally-spaced ordinal scales, plus a per-item agreement score used
//! for the < 0.7 filter.

use std::collections::HashMap;

/// Krippendorff's α with the interval metric.
///
/// `units` is one entry per rated item, containing the ratings that were
/// actually provided (missing ratings simply absent). Items with fewer
/// than two ratings are ignored (they carry no agreement information).
///
/// Returns `None` when no item has two or more ratings. When the data has
/// zero expected disagreement (all ratings identical everywhere), α is
/// 1.0 by convention.
pub fn alpha_interval(units: &[Vec<f64>]) -> Option<f64> {
    // Coincidence counts o[c][k], with values quantized to bit patterns
    // so they can key a HashMap (ratings are small discrete scales).
    let mut values: Vec<f64> = Vec::new();
    let mut o: HashMap<(u64, u64), f64> = HashMap::new();
    let mut n_c: HashMap<u64, f64> = HashMap::new();
    let mut n_total = 0.0f64;

    for unit in units {
        let m = unit.len();
        if m < 2 {
            continue;
        }
        let w = 1.0 / (m as f64 - 1.0);
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                let ci = unit[i].to_bits();
                let ck = unit[j].to_bits();
                *o.entry((ci, ck)).or_insert(0.0) += w;
            }
        }
        for &v in unit {
            *n_c.entry(v.to_bits()).or_insert(0.0) += 1.0;
            n_total += 1.0;
            if !values.contains(&v) {
                values.push(v);
            }
        }
    }
    if n_total < 2.0 {
        return None;
    }
    let delta2 = |a: u64, b: u64| {
        let d = f64::from_bits(a) - f64::from_bits(b);
        d * d
    };
    let d_o: f64 = o.iter().map(|(&(c, k), &w)| w * delta2(c, k)).sum::<f64>() / n_total;
    let mut d_e = 0.0;
    for (&c, &nc) in &n_c {
        for (&k, &nk) in &n_c {
            d_e += nc * nk * delta2(c, k);
        }
    }
    d_e /= n_total * (n_total - 1.0);
    if d_e == 0.0 {
        return Some(if d_o == 0.0 { 1.0 } else { 0.0 });
    }
    Some(1.0 - d_o / d_e)
}

/// Per-item agreement in [0, 1] used for the paper's "< 0.7 discarded"
/// filter: `1 − Var(ratings) / Var_max`, where `Var_max` is the variance
/// of an even split across the extreme points of `scale = (min, max)`.
/// Items with fewer than two ratings count as fully agreed (1.0).
pub fn item_agreement(ratings: &[f64], scale: (f64, f64)) -> f64 {
    if ratings.len() < 2 {
        return 1.0;
    }
    let n = ratings.len() as f64;
    let mean = ratings.iter().sum::<f64>() / n;
    let var = ratings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
    let half_range = (scale.1 - scale.0) / 2.0;
    let var_max = half_range * half_range;
    if var_max <= 0.0 {
        return 1.0;
    }
    (1.0 - var / var_max).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_gives_one() {
        let units = vec![
            vec![3.0, 3.0, 3.0],
            vec![5.0, 5.0, 5.0],
            vec![1.0, 1.0, 1.0],
        ];
        let a = alpha_interval(&units).unwrap();
        assert!((a - 1.0).abs() < 1e-9, "alpha = {a}");
    }

    #[test]
    fn constant_data_is_perfect() {
        let units = vec![vec![4.0, 4.0], vec![4.0, 4.0]];
        assert_eq!(alpha_interval(&units), Some(1.0));
    }

    #[test]
    fn known_value_from_krippendorff_example() {
        // Krippendorff (2011) interval example: two observers, 10 units.
        // A: 1 2 3 3 2 1 4 1 2 NA ; B: 1 2 3 3 2 2 4 1 2 5
        // Pairable units exclude the NA column; documented α ≈ 0.975.
        let units = vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![3.0, 3.0],
            vec![2.0, 2.0],
            vec![1.0, 2.0],
            vec![4.0, 4.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![5.0], // single rating, ignored
        ];
        let a = alpha_interval(&units).unwrap();
        assert!(a > 0.9 && a < 1.0, "alpha = {a}");
    }

    #[test]
    fn near_random_data_is_near_zero() {
        // Systematic disagreement patterns close to chance.
        let units = vec![
            vec![1.0, 5.0],
            vec![5.0, 1.0],
            vec![2.0, 4.0],
            vec![4.0, 2.0],
            vec![3.0, 3.0],
            vec![1.0, 4.0],
            vec![4.0, 1.0],
            vec![2.0, 5.0],
            vec![5.0, 2.0],
        ];
        let a = alpha_interval(&units).unwrap();
        assert!(a < 0.2, "alpha = {a}");
    }

    #[test]
    fn insufficient_data_returns_none() {
        assert_eq!(alpha_interval(&[]), None);
        assert_eq!(alpha_interval(&[vec![3.0]]), None);
        assert_eq!(alpha_interval(&[vec![3.0], vec![4.0]]), None);
    }

    #[test]
    fn alpha_is_at_most_one() {
        let units = vec![
            vec![2.0, 2.0, 3.0],
            vec![4.0, 4.0, 4.0],
            vec![1.0, 2.0, 1.0],
        ];
        let a = alpha_interval(&units).unwrap();
        assert!(a <= 1.0 + 1e-12);
    }

    #[test]
    fn item_agreement_unanimous() {
        assert_eq!(item_agreement(&[4.0, 4.0, 4.0], (1.0, 5.0)), 1.0);
    }

    #[test]
    fn item_agreement_extreme_split_is_zero() {
        let a = item_agreement(&[1.0, 5.0], (1.0, 5.0));
        assert!(a.abs() < 1e-9, "agreement = {a}");
    }

    #[test]
    fn item_agreement_moderate() {
        let a = item_agreement(&[3.0, 4.0, 4.0], (1.0, 5.0));
        assert!(a > 0.7 && a < 1.0);
    }

    #[test]
    fn item_agreement_small_samples() {
        assert_eq!(item_agreement(&[], (1.0, 5.0)), 1.0);
        assert_eq!(item_agreement(&[2.0], (1.0, 5.0)), 1.0);
    }

    #[test]
    fn item_agreement_degenerate_scale() {
        assert_eq!(item_agreement(&[1.0, 2.0], (3.0, 3.0)), 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn rating() -> impl Strategy<Value = f64> {
        (1u8..=5).prop_map(|r| r as f64)
    }

    proptest! {
        /// α never exceeds 1 and is defined whenever two ratings co-occur.
        #[test]
        fn alpha_bounded_above(
            units in prop::collection::vec(prop::collection::vec(rating(), 2..5), 2..12)
        ) {
            let a = alpha_interval(&units).expect("enough data");
            prop_assert!(a <= 1.0 + 1e-9);
        }

        /// Item agreement is always within [0, 1].
        #[test]
        fn item_agreement_bounded(rs in prop::collection::vec(rating(), 0..8)) {
            let a = item_agreement(&rs, (1.0, 5.0));
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }
}
