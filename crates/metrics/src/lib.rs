//! # gced-metrics — evaluation metrics for the GCED reproduction
//!
//! * [`overlap`] — SQuAD-style answer normalization, Exact Match, and the
//!   token-level precision/recall/F1 of Eq. 1 (used both as the QA metric
//!   of Tables VI/VII and as the informativeness score I(e));
//! * [`krippendorff`] — Krippendorff's α for the inter-rater agreement of
//!   Table II, plus the per-item agreement used to discard controversial
//!   evidences (< 0.7, Sec. IV-A1);
//! * [`stats`] — small summary-statistics helpers shared by the
//!   experiment harness.

pub mod krippendorff;
pub mod overlap;
pub mod stats;

pub use krippendorff::{alpha_interval, item_agreement};
pub use overlap::{exact_match, normalize_answer, token_f1, F1Scores};
pub use stats::{mean, percent_change, std_dev};
