//! Small summary-statistics helpers for the experiment harness.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Relative change from `base` to `new`, in percent. Returns 0.0 when the
/// base is zero (avoids propagating infinities into report tables).
pub fn percent_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Round to `digits` decimal places (for stable table rendering).
pub fn round_to(x: f64, digits: u32) -> f64 {
    let p = 10f64.powi(digits as i32);
    (x * p).round() / p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percent_change_basic() {
        assert!((percent_change(80.0, 84.0) - 5.0).abs() < 1e-12);
        assert!((percent_change(50.0, 40.0) + 20.0).abs() < 1e-12);
        assert_eq!(percent_change(0.0, 10.0), 0.0);
    }

    #[test]
    fn round_to_basic() {
        assert_eq!(round_to(0.12345, 2), 0.12);
        assert_eq!(round_to(0.875, 2), 0.88);
        assert_eq!(round_to(-1.005, 1), -1.0);
    }
}
