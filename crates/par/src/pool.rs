//! Persistent worker pool.
//!
//! PR 1's `par_map` spawned fresh OS threads through `std::thread::scope`
//! on every call, so the parallel clip path paid a spawn/join round-trip
//! per SCS iteration and every `distill_batch` paid one per batch. This
//! pool spawns its workers once and fans jobs out to them for the life
//! of the process.
//!
//! A *job* is a type-erased closure that drains an atomic cursor owned by
//! the caller; the pool never sees items or results, so `par_map` keeps
//! its exact write-back-by-index semantics and bitwise-sequential output.
//! The posting thread always participates in its own job, which means a
//! pool of `k` workers serves `k + 1`-way parallelism.
//!
//! ## Safety
//!
//! The job closure borrows the poster's stack frame (items, output
//! slots, cursor). Lifetime erasure is sound because the poster (a)
//! disables new claims and (b) blocks until `running == 0` before
//! returning — no worker can hold the closure after `execute` returns.
//!
//! ## Panics
//!
//! A panic inside a claimed task is caught on the worker, recorded, and
//! re-raised on the posting thread as `"par_map worker panicked: …"`
//! after every sibling finished. Workers survive task panics, the pool
//! stays usable, and `Drop` joins every worker unconditionally — no
//! leaked threads even when jobs panicked (see the regression tests).
//!
//! Lock poisoning is **recovered, never propagated**: if any thread
//! panicked while holding a pool mutex, the next locker clears the
//! poison with [`PoisonError::into_inner`] and proceeds. This is sound
//! because every critical section leaves the data consistent at each
//! await/panic point (counters are updated atomically under the lock,
//! the poster mutex guards `()`), and it guarantees one panicked task
//! can never wedge every subsequent `par_map` call.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, TryLockError};

/// Wide pointer to the current job's closure. `Send` is sound because
/// the pointer is only handed out under the pool mutex while the poster
/// is blocked inside [`WorkerPool::execute`], which outlives every use.
struct TaskPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointer is only handed out under the pool mutex while the
// poster blocks inside `execute`, so the pointee (a `Sync` closure)
// outlives and tolerates every cross-thread use.
unsafe impl Send for TaskPtr {}

struct PoolState {
    /// The in-flight job, if any.
    job: Option<TaskPtr>,
    /// Pool workers still allowed to claim the current job.
    claims_left: usize,
    /// Pool workers currently inside the current job.
    running: usize,
    /// Monotonic job id, so a worker never re-claims a job it already
    /// drained (claiming twice would be harmless but wasteful).
    epoch: u64,
    /// Rendered panic payload from a claimed worker, if any.
    panic_msg: Option<String>,
    /// Set by `Drop`; workers exit once no claimable job remains.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Wakes workers when a job is posted or shutdown begins.
    work_cv: Condvar,
    /// Wakes the poster when the last claimed worker retires.
    done_cv: Condvar,
    /// Workers that have fully exited (asserted by the drop tests).
    exited: AtomicUsize,
}

impl Shared {
    /// Lock the pool state, clearing any poison (module docs, Panics).
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes posters. `try_lock` failure means the pool is busy —
    /// possibly with a job posted further up this very call chain
    /// (nested `par_map`) — so the nested map degrades to running on
    /// the caller alone instead of deadlocking. The same degradation
    /// applies to genuinely concurrent posters from unrelated threads:
    /// one wins the pool, the others run sequentially. Output is
    /// identical either way; only scheduling changes. (In-repo callers
    /// never overlap jobs: `distill_batch` disables inner clip
    /// parallelism, so the batch dimension is the only poster.)
    poster: Mutex<()>,
}

impl WorkerPool {
    /// Spawn a pool with `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                claims_left: 0,
                running: 0,
                epoch: 0,
                panic_msg: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            exited: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gced-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            poster: Mutex::new(()),
        }
    }

    /// Number of worker threads (the pool serves `size() + 1`-way
    /// parallelism including the posting thread).
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Run `task` on the calling thread plus up to `extra` pool workers.
    /// Returns once every participant has finished. If the pool is busy
    /// (nested call) or `extra` is zero, the caller runs the task alone.
    fn execute(&self, extra: usize, task: &(dyn Fn() + Sync)) {
        let guard = match self.poster.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                task();
                return;
            }
            // A previous poster panicked with the guard held. The data
            // under this mutex is `()` — nothing to repair — so clear
            // the poison and keep serializing posters instead of
            // wedging every later `par_map` call.
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let extra = extra.min(self.handles.len());
        if extra == 0 {
            task();
            return;
        }
        // SAFETY: lifetime erasure only — the poster blocks in this call
        // until `running == 0`, so the borrow outlives every worker's
        // use of the erased reference (module docs, Soundness).
        let task_static: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &(dyn Fn() + Sync)>(task) };
        {
            let mut st = self.shared.lock_state();
            st.job = Some(TaskPtr(task_static as *const _));
            st.claims_left = extra;
            st.running = 0;
            st.epoch += 1;
            st.panic_msg = None;
        }
        self.shared.work_cv.notify_all();
        let own = catch_unwind(AssertUnwindSafe(task));
        let mut st = self.shared.lock_state();
        st.claims_left = 0; // no new claims once the poster is draining
        while st.running > 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let worker_panic = st.panic_msg.take();
        drop(st);
        drop(guard);
        if let Err(payload) = own {
            panic!("par_map worker panicked: {}", panic_text(&payload));
        }
        if let Some(msg) = worker_panic {
            panic!("par_map worker panicked: {msg}");
        }
    }

    /// Order-preserving parallel map over `items` using up to `threads`
    /// participants (the caller plus `threads - 1` pool workers), with a
    /// per-participant scratch state created by `init`.
    ///
    /// `out[i] = f(scratch, i, &items[i])` — bitwise identical to the
    /// sequential map for any thread count, completion order, or pool
    /// contention, because results are written back by input index.
    pub fn par_map_with_threads<T, R, S, F, I>(
        &self,
        items: &[T],
        threads: usize,
        init: I,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut S, usize, &T) -> R + Sync,
        I: Fn() -> S + Sync,
    {
        let n = items.len();
        let threads = threads.min(n);
        if threads <= 1 || n < 2 {
            let mut scratch = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut scratch, i, t))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
        let task = || {
            let mut scratch = init();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&mut scratch, i, &items[i]);
                // SAFETY: the atomic cursor claims each index exactly
                // once, so this is the only writer of slot i; reads
                // happen only after execute() returns (all writers done).
                unsafe { *slots[i].0.get() = Some(r) };
            }
        };
        self.execute(threads - 1, &task);
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("every index produced"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            // Workers catch task panics, so join only fails if a worker
            // itself died — surface that instead of leaking silently.
            h.join().expect("pool worker exited cleanly");
        }
    }
}

/// One result slot, written exactly once by the claiming participant.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: slot i is written by exactly one participant (the atomic
// cursor hands out each index once) and read only after the parallel
// region joins, so shared `&Slot` access never races; `R: Send` lets
// the value cross from the writing worker to the collecting poster.
unsafe impl<R: Send> Sync for Slot<R> {}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    let mut st = shared.lock_state();
    loop {
        if st.shutdown {
            break;
        }
        let claimable = st.job.is_some() && st.claims_left > 0 && st.epoch != seen_epoch;
        if claimable {
            st.claims_left -= 1;
            st.running += 1;
            seen_epoch = st.epoch;
            let task = st.job.as_ref().expect("claimable job").0;
            drop(st);
            // SAFETY: the poster keeps the closure alive until
            // `running == 0`, and this worker was counted into `running`
            // under the lock before taking the pointer.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task)() }));
            st = shared.lock_state();
            st.running -= 1;
            if let Err(payload) = result {
                st.panic_msg.get_or_insert_with(|| panic_text(&payload));
            }
            if st.running == 0 {
                shared.done_cv.notify_all();
            }
        } else {
            st = shared
                .work_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    drop(st);
    shared.exited.fetch_add(1, Ordering::SeqCst);
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(pool: &WorkerPool, n: u64, threads: usize) -> Vec<u64> {
        let items: Vec<u64> = (0..n).collect();
        pool.par_map_with_threads(&items, threads, || (), |(), _, &x| x.wrapping_mul(x))
    }

    #[test]
    fn pool_map_matches_sequential() {
        let pool = WorkerPool::new(3);
        let expected: Vec<u64> = (0..999).map(|x: u64| x.wrapping_mul(x)).collect();
        assert_eq!(squares(&pool, 999, 4), expected);
        // Repeated jobs reuse the same workers.
        for _ in 0..16 {
            assert_eq!(squares(&pool, 999, 4), expected);
        }
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        let shared = Arc::clone(&pool.shared);
        let _ = squares(&pool, 64, 5);
        drop(pool);
        assert_eq!(shared.exited.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn drop_joins_all_workers_after_task_panic() {
        let pool = WorkerPool::new(3);
        let shared = Arc::clone(&pool.shared);
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_with_threads(
                &items,
                4,
                || (),
                |(), _, &x| {
                    assert!(x != 7, "boom");
                    x
                },
            )
        }));
        let msg = panic_text(&*result.expect_err("panic must propagate"));
        assert!(msg.contains("par_map worker panicked"), "msg: {msg}");
        // The pool survives a panicked job…
        let expected: Vec<u64> = (0..64).map(|x: u64| x.wrapping_mul(x)).collect();
        assert_eq!(squares(&pool, 64, 4), expected);
        // …and drop still joins every worker: nothing leaked.
        drop(pool);
        assert_eq!(shared.exited.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn nested_maps_degrade_without_deadlock() {
        let pool = WorkerPool::new(2);
        let items: Vec<u64> = (0..16).collect();
        let out = pool.par_map_with_threads(
            &items,
            3,
            || (),
            |(), _, &x| {
                // A nested map on the same (busy) pool must not deadlock;
                // it runs on this participant alone.
                let inner: Vec<u64> = (0..8).collect();
                pool.par_map_with_threads(&inner, 3, || (), |(), _, &y| y + x)
                    .iter()
                    .sum::<u64>()
            },
        );
        let expected: Vec<u64> = (0..16).map(|x| (0..8).map(|y| y + x).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn zero_extra_runs_on_caller() {
        let pool = WorkerPool::new(1);
        // threads=1 → sequential fast path, no job posted.
        assert_eq!(squares(&pool, 5, 1), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn poisoned_locks_recover_instead_of_wedging() {
        let pool = WorkerPool::new(2);
        let expected: Vec<u64> = (0..64).map(|x: u64| x.wrapping_mul(x)).collect();
        // Poison the poster mutex: a thread panics with the guard held.
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = pool.poster.lock().unwrap();
                panic!("poison the poster lock");
            })
            .join()
        });
        assert!(poisoner.is_err());
        assert!(pool.poster.is_poisoned());
        // A subsequent map clears the poison and runs parallel again
        // (before the fix this panicked "pool poster lock poisoned").
        assert_eq!(squares(&pool, 64, 3), expected);
        // Same recovery for the state mutex shared with the workers.
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = pool.shared.state.lock().unwrap();
                panic!("poison the state lock");
            })
            .join()
        });
        assert!(poisoner.is_err());
        assert_eq!(squares(&pool, 64, 3), expected);
    }
}
