//! # gced-par — minimal scoped-thread data parallelism
//!
//! The distillation pipeline parallelizes two loops: candidate scoring
//! inside Sequential Clip Searching and whole-example batches in
//! `Gced::distill_batch`. The build environment cannot fetch `rayon`,
//! so this crate provides the one primitive both need: an
//! order-preserving parallel map over a slice, built on
//! `std::thread::scope` with work stealing via an atomic cursor.
//!
//! Results are written back by input index, so `par_map` output is
//! **bitwise identical to the sequential map** regardless of thread
//! count or scheduling — a property the clip-search oracle equivalence
//! tests rely on.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread cap: `GCED_THREADS` if set, else the machine's
/// available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("GCED_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map preserving input order: `out[i] = f(i, &items[i])`.
///
/// Falls back to a sequential loop when the input is small or only one
/// worker is available. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, || (), move |(), i, item| f(i, item))
}

/// [`par_map`] with a per-worker scratch state created by `init` — the
/// hook reusable buffers need to stay allocation-free under parallelism.
pub fn par_map_with<T, R, S, F, I>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    par_map_with_threads(items, max_threads(), init, f)
}

/// [`par_map_with`] with an explicit worker count (tests force >1 worker
/// on single-core machines to exercise the parallel path).
pub fn par_map_with_threads<T, R, S, F, I>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 || n < 2 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let mut scratch = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&mut scratch, i, &items[i])));
                }
                local
            }));
        }
        for handle in handles {
            for (i, r) in handle.join().expect("par_map worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let par = par_map(&items, |_, &x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let out = par_map(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn scratch_state_reused_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with(
            &items,
            || Vec::<usize>::with_capacity(8),
            |scratch, _, &x| {
                scratch.clear();
                scratch.extend(0..x % 4);
                scratch.len()
            },
        );
        for (i, len) in out.iter().enumerate() {
            assert_eq!(*len, i % 4);
        }
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Heavily skewed costs still produce ordered, complete output.
        let items: Vec<u64> = (0..40).collect();
        let out = par_map(&items, |_, &x| {
            let spins = if x == 0 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn forced_multithreading_matches_sequential() {
        // available_parallelism may report 1 on CI; force real workers.
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        let par = par_map_with_threads(&items, 4, || (), |(), _, &x| x.wrapping_mul(x) ^ 7);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items = [1u8, 2, 3, 4];
        let _ = par_map_with_threads(
            &items,
            2,
            || (),
            |(), _, &x| {
                assert!(x != 3, "boom");
                x
            },
        );
    }
}
