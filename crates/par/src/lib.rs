//! # gced-par — minimal persistent-pool data parallelism
//!
//! The distillation pipeline parallelizes three loops: candidate scoring
//! inside Sequential Clip Searching, whole-example batches in
//! `Gced::distill_batch`, and whole-dataset shard fan-out in the
//! experiment runner. The build environment cannot fetch `rayon`, so
//! this crate provides the one primitive all three need: an
//! order-preserving parallel map over a slice, with work stealing via
//! an atomic cursor.
//!
//! Work runs on a process-wide [`WorkerPool`] of persistent threads
//! (spawned lazily on the first parallel call) instead of the per-call
//! `std::thread::scope` spawn/join of PR 1 — the parallel clip path
//! used to pay that spawn cost once per SCS iteration. Nested `par_map`
//! calls degrade to the calling thread instead of deadlocking, so
//! callers can compose freely.
//!
//! Results are written back by input index, so `par_map` output is
//! **bitwise identical to the sequential map** regardless of thread
//! count or scheduling — a property the clip-search oracle equivalence
//! tests and the shard-merge parity tests rely on.

// Unsafe operations must sit in explicit `unsafe {}` blocks with their
// own SAFETY comments even inside unsafe fns (the `gced analyze`
// SAFE001 lint checks the comments).
#![deny(unsafe_op_in_unsafe_fn)]

mod pool;

pub use pool::WorkerPool;

use std::sync::OnceLock;

/// Worker-thread cap: `GCED_THREADS` if set, else the machine's
/// available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("GCED_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide worker pool, spawned lazily on the first parallel
/// call. Sized to `max_threads() - 1` (minimum 1) because the posting
/// thread always participates in its own job.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(max_threads().saturating_sub(1).max(1)))
}

/// Effective parallelism of the global pool: its workers plus the
/// posting thread (which always participates in its own job). What a
/// server's `/healthz` and `/metrics` report as distillation capacity.
/// Note this spawns the pool if it is not running yet.
pub fn effective_parallelism() -> usize {
    global_pool().size() + 1
}

/// Parallel map preserving input order: `out[i] = f(i, &items[i])`.
///
/// Falls back to a sequential loop when the input is small or only one
/// worker is available. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, || (), move |(), i, item| f(i, item))
}

/// [`par_map`] with a per-worker scratch state created by `init` — the
/// hook reusable buffers need to stay allocation-free under parallelism.
pub fn par_map_with<T, R, S, F, I>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    par_map_with_threads(items, max_threads(), init, f)
}

/// [`par_map_with`] with an explicit participant count (tests force >1
/// participant on single-core machines to exercise the parallel path).
/// Runs on the [`global_pool`]; if the pool has fewer workers than
/// `threads - 1`, the call uses every worker it can get.
pub fn par_map_with_threads<T, R, S, F, I>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    global_pool().par_map_with_threads(items, threads, init, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let par = par_map(&items, |_, &x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let out = par_map(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn scratch_state_reused_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with(
            &items,
            || Vec::<usize>::with_capacity(8),
            |scratch, _, &x| {
                scratch.clear();
                scratch.extend(0..x % 4);
                scratch.len()
            },
        );
        for (i, len) in out.iter().enumerate() {
            assert_eq!(*len, i % 4);
        }
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Heavily skewed costs still produce ordered, complete output.
        let items: Vec<u64> = (0..40).collect();
        let out = par_map(&items, |_, &x| {
            let spins = if x == 0 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn effective_parallelism_counts_the_poster() {
        assert_eq!(effective_parallelism(), global_pool().size() + 1);
        assert!(effective_parallelism() >= 2);
    }

    #[test]
    fn forced_multithreading_matches_sequential() {
        // available_parallelism may report 1 on CI; force real workers.
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        let par = par_map_with_threads(&items, 4, || (), |(), _, &x| x.wrapping_mul(x) ^ 7);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items = [1u8, 2, 3, 4];
        let _ = par_map_with_threads(
            &items,
            2,
            || (),
            |(), _, &x| {
                assert!(x != 3, "boom");
                x
            },
        );
    }
}
