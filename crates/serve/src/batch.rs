//! The micro-batching request queue.
//!
//! Concurrent `/v1/distill` requests land in one bounded queue. A
//! single batcher thread coalesces them — up to `batch_max` items, or
//! whatever arrived within `flush` of the first queued item — and runs
//! each coalesced batch through [`Gced::distill_batch`] on the
//! persistent `gced-par` worker pool, so server throughput rides the
//! exact parallel path the offline runner uses. Because
//! `distill_batch` is element-wise identical to sequential
//! [`Gced::distill`] and every distillation is deterministic, **how
//! requests happen to batch can never change a response**.
//!
//! Backpressure is load-shedding, not buffering: when the queue holds
//! `capacity` waiting requests, `enqueue` refuses immediately (the
//! connection answers 503) instead of growing an unbounded backlog
//! whose tail latency would be unbounded too. Shutdown is graceful:
//! after [`Batcher::shutdown`] no new work is accepted, every queued
//! request is still batched and answered, and the thread is joined.

use crate::metrics::Metrics;
use gced::{DistillError, Distillation, Gced};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The queue already holds `capacity` waiting requests.
    Full,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
}

/// The answer a waiting connection receives.
pub type DistillOutcome = Result<Distillation, DistillError>;

struct Pending {
    question: String,
    answer: String,
    context: String,
    enqueued_at: Instant,
    tx: mpsc::Sender<DistillOutcome>,
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes the batcher when work arrives or shutdown begins.
    cv: Condvar,
    batch_max: usize,
    flush: Duration,
    capacity: usize,
    metrics: Arc<Metrics>,
}

/// Handle to the batcher thread.
pub struct Batcher {
    inner: Arc<Inner>,
    /// Taken exactly once, by whichever caller performs the shutdown.
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Spawn the batcher thread over a warm pipeline. `batch_max` and
    /// `capacity` are clamped to at least 1.
    pub fn start(
        gced: Arc<Gced>,
        batch_max: usize,
        flush: Duration,
        capacity: usize,
        metrics: Arc<Metrics>,
    ) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            batch_max: batch_max.max(1),
            flush,
            capacity: capacity.max(1),
            metrics,
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("gced-serve-batcher".to_string())
            .spawn(move || batcher_loop(&thread_inner, &gced))
            .expect("spawn batcher thread");
        Batcher {
            inner,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Queue one request. Returns the receiver the caller blocks on; the
    /// batcher always sends exactly one outcome per queued request (also
    /// during shutdown drain).
    pub fn enqueue(
        &self,
        question: String,
        answer: String,
        context: String,
    ) -> Result<mpsc::Receiver<DistillOutcome>, EnqueueError> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.inner.state.lock().expect("batch queue lock");
        if st.shutdown {
            return Err(EnqueueError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.capacity {
            return Err(EnqueueError::Full);
        }
        st.queue.push_back(Pending {
            question,
            answer,
            context,
            enqueued_at: Instant::now(),
            tx,
        });
        drop(st);
        self.inner.cv.notify_one();
        Ok(rx)
    }

    /// Waiting requests right now (tests and `/metrics`).
    pub fn queued(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("batch queue lock")
            .queue
            .len()
    }

    /// Stop accepting work, drain every queued request, join the thread.
    /// Idempotent; concurrent callers race on the handle and exactly one
    /// performs the join.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("batch queue lock");
            st.shutdown = true;
        }
        self.inner.cv.notify_all();
        let handle = self.handle.lock().expect("batcher handle lock").take();
        if let Some(handle) = handle {
            handle.join().expect("batcher thread exited cleanly");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(inner: &Inner, gced: &Gced) {
    loop {
        let batch = {
            let mut st = inner.state.lock().expect("batch queue lock");
            // Sleep until work or shutdown.
            while st.queue.is_empty() {
                if st.shutdown {
                    return;
                }
                st = inner.cv.wait(st).expect("batch queue lock");
            }
            // Coalesce: give the batch `flush` from now to fill up to
            // batch_max. During shutdown, flush immediately — latency
            // no longer buys coalescing, draining fast does.
            let deadline = Instant::now() + inner.flush;
            while st.queue.len() < inner.batch_max && !st.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = inner
                    .cv
                    .wait_timeout(st, deadline - now)
                    .expect("batch queue lock");
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = st.queue.len().min(inner.batch_max);
            st.queue.drain(..take).collect::<Vec<Pending>>()
        };
        let items: Vec<(&str, &str, &str)> = batch
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str(), p.context.as_str()))
            .collect();
        let results = gced.distill_batch(&items);
        inner.metrics.batches_total.fetch_add(1, Ordering::Relaxed);
        inner.metrics.batch_size.record(batch.len() as u64);
        for (pending, result) in batch.into_iter().zip(results) {
            let elapsed_us = pending
                .enqueued_at
                .elapsed()
                .as_micros()
                .min(u128::from(u64::MAX));
            inner.metrics.latency_us.record(elapsed_us as u64);
            match &result {
                Ok(_) => inner.metrics.distill_ok.fetch_add(1, Ordering::Relaxed),
                Err(_) => inner.metrics.distill_error.fetch_add(1, Ordering::Relaxed),
            };
            // A client that hung up just discards its result.
            let _ = pending.tx.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced::GcedConfig;
    use gced_datasets::{generate, DatasetKind, GeneratorConfig};
    use std::sync::OnceLock;

    fn pipeline() -> Arc<Gced> {
        static P: OnceLock<Arc<Gced>> = OnceLock::new();
        Arc::clone(P.get_or_init(|| {
            let ds = generate(
                DatasetKind::Squad11,
                GeneratorConfig {
                    train: 60,
                    dev: 8,
                    seed: 11,
                },
            );
            Arc::new(Gced::fit(&ds, GcedConfig::default()))
        }))
    }

    const Q: &str = "Which team defeated the Panthers?";
    const A: &str = "Denver Broncos";
    const C: &str = "The Denver Broncos defeated the Carolina Panthers to earn the title. \
                     The band played all night.";

    #[test]
    fn answers_match_direct_distillation() {
        let gced = pipeline();
        let metrics = Arc::new(Metrics::new());
        let b = Batcher::start(
            Arc::clone(&gced),
            4,
            Duration::from_millis(1),
            16,
            Arc::clone(&metrics),
        );
        let expected = gced.distill(Q, A, C).unwrap();
        let receivers: Vec<_> = (0..6)
            .map(|_| b.enqueue(Q.into(), A.into(), C.into()).unwrap())
            .collect();
        for rx in receivers {
            let got = rx.recv().unwrap().unwrap();
            assert_eq!(got.evidence, expected.evidence);
            assert_eq!(got.scores, expected.scores);
        }
        b.shutdown();
        assert_eq!(metrics.distill_ok.load(Ordering::Relaxed), 6);
        assert!(metrics.batches_total.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            metrics.batch_size.count(),
            metrics.batches_total.load(Ordering::Relaxed)
        );
        assert_eq!(metrics.latency_us.count(), 6);
    }

    #[test]
    fn pipeline_errors_travel_to_the_caller() {
        let gced = pipeline();
        let metrics = Arc::new(Metrics::new());
        let b = Batcher::start(gced, 4, Duration::from_millis(1), 16, metrics.clone());
        let rx = b.enqueue(Q.into(), String::new(), C.into()).unwrap();
        assert!(matches!(rx.recv().unwrap(), Err(DistillError::EmptyAnswer)));
        b.shutdown();
        assert_eq!(metrics.distill_error.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_sheds_instead_of_buffering() {
        let gced = pipeline();
        let metrics = Arc::new(Metrics::new());
        // A batcher that cannot keep up: long flush window, capacity 2.
        let b = Batcher::start(gced, 64, Duration::from_secs(5), 2, Arc::clone(&metrics));
        // Fill the queue faster than the 5s flush window drains it.
        let _rx1 = b.enqueue(Q.into(), A.into(), C.into()).unwrap();
        let _rx2 = b.enqueue(Q.into(), A.into(), C.into()).unwrap();
        let mut shed = 0;
        for _ in 0..4 {
            if matches!(
                b.enqueue(Q.into(), A.into(), C.into()),
                Err(EnqueueError::Full)
            ) {
                shed += 1;
            }
        }
        assert!(shed > 0, "an over-capacity enqueue must shed");
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let gced = pipeline();
        let metrics = Arc::new(Metrics::new());
        // Huge flush window: requests sit queued until shutdown drains.
        let b = Batcher::start(
            Arc::clone(&gced),
            64,
            Duration::from_secs(30),
            16,
            metrics.clone(),
        );
        let receivers: Vec<_> = (0..3)
            .map(|_| b.enqueue(Q.into(), A.into(), C.into()).unwrap())
            .collect();
        b.shutdown();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok(), "drained request answered");
        }
        assert!(matches!(
            b.enqueue(Q.into(), A.into(), C.into()),
            Err(EnqueueError::ShuttingDown)
        ));
        assert_eq!(metrics.distill_ok.load(Ordering::Relaxed), 3);
    }
}
