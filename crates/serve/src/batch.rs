//! The micro-batching request queue, with fault containment.
//!
//! Concurrent `/v1/distill` requests land in one bounded queue. A
//! single batcher thread coalesces them — up to `batch_max` items, or
//! whatever arrived within `flush` of the first queued item — and runs
//! each coalesced batch through [`Gced::distill_batch`] on the
//! persistent `gced-par` worker pool, so server throughput rides the
//! exact parallel path the offline runner uses. Because
//! `distill_batch` is element-wise identical to sequential
//! [`Gced::distill`] and every distillation is deterministic, **how
//! requests happen to batch can never change a response**.
//!
//! Backpressure is load-shedding, not buffering: when the queue holds
//! `capacity` waiting requests, `enqueue` refuses immediately (the
//! connection answers 503) instead of growing an unbounded backlog
//! whose tail latency would be unbounded too. Requests also carry the
//! server's queue `deadline`: one that expires before the batcher
//! dequeues it is shed at dequeue time ([`Reply::Expired`], answered
//! 503 + `Retry-After`) rather than burning distillation work on an
//! answer the client has given up on.
//!
//! Failure is contained at two rings:
//!
//! 1. each coalesced `distill_batch` call runs under
//!    [`std::panic::catch_unwind`] — a panic answers that batch's
//!    requests with [`Reply::Panicked`] (500) and the thread lives on;
//! 2. if the thread itself dies (a panic outside the catch, e.g. the
//!    `batcher_kill` chaos site), waiting handlers observe their
//!    channel disconnect, answer 500, and call [`Batcher::revive`] to
//!    respawn the thread over the same queue.
//!
//! Shutdown is graceful even under faults: after [`Batcher::shutdown`]
//! no new work is accepted, the live thread drains every queued
//! request, and any leftovers stranded by a dead thread are answered
//! [`Reply::Shutdown`] — **every queued request always receives exactly
//! one reply**.

use crate::fault::{FaultPlan, Site};
use crate::metrics::Metrics;
use crate::recorder::{FlightRecorder, RecordedRequest};
use gced::{DistillError, Distillation, Gced};
use gced_obs::SpanNode;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The queue already holds `capacity` waiting requests.
    Full,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
}

/// The per-item result of a batch that actually ran.
pub type DistillOutcome = Result<Distillation, DistillError>;

/// What a waiting connection hears back. Exactly one `Reply` is sent
/// per successfully enqueued request, whatever happens to the batcher.
#[derive(Debug)]
pub enum Reply {
    /// The batch ran; this is the request's own element-wise result
    /// (boxed: a `Distillation` dwarfs the data-free variants).
    Done(Box<DistillOutcome>),
    /// A panic inside the coalesced `distill_batch` call took out the
    /// batch this request rode in (the request itself may have been
    /// innocent — batching must not change semantics, so the whole
    /// batch answers 500 and the client may retry).
    Panicked,
    /// The request's queue deadline expired before the batcher got to
    /// it; shed without running (503 + `Retry-After`).
    Expired,
    /// The server drained this request during shutdown without running
    /// it (503 + `Retry-After`; only happens when the batcher thread
    /// died with work still queued).
    Shutdown,
}

/// Queue/coalescing knobs, lifted out of `ServeConfig`.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Largest coalesced batch.
    pub batch_max: usize,
    /// How long the batcher waits for the queue to fill after the first
    /// item arrives.
    pub flush: Duration,
    /// Queue slots; an enqueue beyond this sheds with `Full`.
    pub capacity: usize,
    /// Maximum time a request may wait in the queue before it is shed
    /// as `Expired` at dequeue. `Duration::ZERO` disables expiry.
    pub deadline: Duration,
}

struct Pending {
    /// Server-assigned request id (the flight recorder's key).
    id: u64,
    question: String,
    answer: String,
    context: String,
    enqueued_at: Instant,
    tx: mpsc::Sender<Reply>,
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes the batcher when work arrives or shutdown begins.
    cv: Condvar,
    config: BatcherConfig,
    gced: Arc<Gced>,
    faults: Arc<FaultPlan>,
    metrics: Arc<Metrics>,
    recorder: Arc<FlightRecorder>,
}

/// Handle to the batcher thread.
pub struct Batcher {
    inner: Arc<Inner>,
    /// The live thread. `revive` swaps in a fresh one; `shutdown` takes
    /// it for the final join.
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Spawn the batcher thread over a warm pipeline. `batch_max` and
    /// `capacity` are clamped to at least 1.
    pub fn start(
        gced: Arc<Gced>,
        config: BatcherConfig,
        faults: Arc<FaultPlan>,
        metrics: Arc<Metrics>,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            config: BatcherConfig {
                batch_max: config.batch_max.max(1),
                capacity: config.capacity.max(1),
                ..config
            },
            gced,
            faults,
            metrics,
            recorder,
        });
        Batcher {
            handle: Mutex::new(Some(spawn_batcher(&inner))),
            inner,
        }
    }

    /// Queue one request. Returns the receiver the caller blocks on;
    /// exactly one [`Reply`] arrives per queued request — unless the
    /// batcher thread dies with the request in flight, which the caller
    /// observes as a channel disconnect and treats as [`Reply::Panicked`]
    /// (after calling [`Batcher::revive`]).
    pub fn enqueue(
        &self,
        id: u64,
        question: String,
        answer: String,
        context: String,
    ) -> Result<mpsc::Receiver<Reply>, EnqueueError> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.inner.state.lock().expect("batch queue lock");
        if st.shutdown {
            return Err(EnqueueError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.config.capacity {
            return Err(EnqueueError::Full);
        }
        st.queue.push_back(Pending {
            id,
            question,
            answer,
            context,
            enqueued_at: Instant::now(),
            tx,
        });
        drop(st);
        self.inner.cv.notify_one();
        Ok(rx)
    }

    /// Waiting requests right now (tests and `/metrics`).
    pub fn queued(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("batch queue lock")
            .queue
            .len()
    }

    /// True while the batcher thread is running.
    pub fn is_alive(&self) -> bool {
        self.handle
            .lock()
            .expect("batcher handle lock")
            .as_ref()
            .is_some_and(|h| !h.is_finished())
    }

    /// Respawn the batcher thread over the same queue after it died (a
    /// panic outside the `catch_unwind` ring). Returns `true` when a
    /// new thread was actually spawned; `false` when the old one is
    /// still alive (another caller already revived it) or the server is
    /// shutting down. Counted in `batcher_restarts_total`.
    pub fn revive(&self) -> bool {
        let mut slot = self.handle.lock().expect("batcher handle lock");
        if self.inner.state.lock().expect("batch queue lock").shutdown {
            return false;
        }
        if let Some(h) = slot.as_ref() {
            // A dying thread disconnects its waiters while it is still
            // unwinding: the caller can observe the death a moment
            // before `is_finished()` flips. Give the corpse a bounded
            // grace to finish; a healthy thread never finishes, so this
            // still refuses (after the grace) instead of killing it.
            let deadline = Instant::now() + Duration::from_millis(100);
            while !h.is_finished() {
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if let Some(h) = slot.take() {
            // Collect the corpse; a panic here is exactly why we exist.
            let _ = h.join();
        }
        *slot = Some(spawn_batcher(&self.inner));
        self.inner
            .metrics
            .batcher_restarts
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Stop accepting work, drain every queued request, join the
    /// thread. A live thread answers the backlog normally; if the
    /// thread died mid-fault with work still queued, the leftovers are
    /// answered [`Reply::Shutdown`] here so no waiting connection ever
    /// hangs. Idempotent; concurrent callers race on the handle and
    /// exactly one performs the join.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("batch queue lock");
            st.shutdown = true;
        }
        self.inner.cv.notify_all();
        let handle = self.handle.lock().expect("batcher handle lock").take();
        if let Some(handle) = handle {
            // Tolerate a chaos-killed thread: drain still completes.
            let _ = handle.join();
        }
        let mut st = self.inner.state.lock().expect("batch queue lock");
        for pending in st.queue.drain(..) {
            let _ = pending.tx.send(Reply::Shutdown);
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_batcher(inner: &Arc<Inner>) -> std::thread::JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name("gced-serve-batcher".to_string())
        .spawn(move || batcher_loop(&inner))
        .expect("spawn batcher thread")
}

fn batcher_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut st = inner.state.lock().expect("batch queue lock");
            // Sleep until work or shutdown.
            while st.queue.is_empty() {
                if st.shutdown {
                    return;
                }
                st = inner.cv.wait(st).expect("batch queue lock");
            }
            // Coalesce: give the batch `flush` from now to fill up to
            // batch_max. During shutdown, flush immediately — latency
            // no longer buys coalescing, draining fast does.
            let deadline = Instant::now() + inner.config.flush;
            while st.queue.len() < inner.config.batch_max && !st.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = inner
                    .cv
                    .wait_timeout(st, deadline - now)
                    .expect("batch queue lock");
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = st.queue.len().min(inner.config.batch_max);
            st.queue.drain(..take).collect::<Vec<Pending>>()
        };
        // Shed requests whose queue deadline already passed — no
        // distillation work for an answer the client gave up on.
        let mut live = Vec::with_capacity(batch.len());
        for pending in batch {
            if !inner.config.deadline.is_zero()
                && pending.enqueued_at.elapsed() > inner.config.deadline
            {
                let _ = pending.tx.send(Reply::Expired);
            } else {
                live.push(pending);
            }
        }
        if live.is_empty() {
            continue;
        }
        if let Some(ms) = inner.faults.fire(Site::PreBatchDelay) {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if inner.faults.fire(Site::BatcherKill).is_some() {
            // Outside the catch ring on purpose: the thread dies, the
            // in-flight senders drop, waiting handlers observe their
            // channel disconnect and revive us.
            panic!("chaos: batcher_kill fired");
        }
        let items: Vec<(&str, &str, &str)> = live
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str(), p.context.as_str()))
            .collect();
        // Queue wait ends here: the batch is about to run.
        let queue_ns: Vec<u64> = live
            .iter()
            .map(|p| {
                let ns = p.enqueued_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                inner.metrics.queue_wait_ns.record(ns);
                ns
            })
            .collect();
        let batch_started = gced_obs::clock::ticks_ns();
        // Ring 1: a panic anywhere in the coalesced call — including
        // the injected `batch_panic` chaos site — fails this batch, not
        // the thread. `AssertUnwindSafe` is sound because nothing the
        // closure touches is observed again on the panic path: `items`
        // is dropped, the pipeline is internally panic-consistent (its
        // worker pool contains panics per task), and the queue mutex is
        // not held here.
        let results = catch_unwind(AssertUnwindSafe(|| {
            if inner.faults.fire(Site::BatchPanic).is_some() {
                panic!("chaos: batch_panic fired");
            }
            inner.gced.distill_batch_traced(&items)
        }));
        let batch_ns = gced_obs::clock::ticks_ns().saturating_sub(batch_started);
        inner.metrics.batches_total.fetch_add(1, Ordering::Relaxed);
        inner.metrics.batch_size.record(live.len() as u64);
        match results {
            Ok(results) => {
                let batch_size = live.len() as u64;
                for ((pending, (result, tree)), queue_ns) in
                    live.into_iter().zip(results).zip(queue_ns)
                {
                    let elapsed_us = pending
                        .enqueued_at
                        .elapsed()
                        .as_micros()
                        .min(u128::from(u64::MAX));
                    inner.metrics.latency_us.record(elapsed_us as u64);
                    if let Some(tree) = tree {
                        observe(
                            inner,
                            pending.id,
                            result.is_ok(),
                            queue_ns,
                            (batch_started, batch_ns, batch_size),
                            tree,
                        );
                    }
                    // A client that hung up just discards its reply.
                    let _ = pending.tx.send(Reply::Done(Box::new(result)));
                }
            }
            Err(_) => {
                for pending in live {
                    let _ = pending.tx.send(Reply::Panicked);
                }
            }
        }
    }
}

/// Fold one traced request into the stage histograms, the
/// search-effectiveness counters, and the flight recorder. `batch` is
/// the coalesced call this request rode in: `(start ticks, duration
/// ns, size)` — grafted over the request's own tree as a synthetic
/// `batch.coalesce` root.
fn observe(
    inner: &Inner,
    id: u64,
    ok: bool,
    queue_ns: u64,
    batch: (u64, u64, u64),
    tree: SpanNode,
) {
    let m = &inner.metrics;
    m.parse_ns.record(tree.total_ns("parse"));
    m.grow_ns.record(tree.total_ns("grow"));
    m.clip_ns.record(tree.total_ns("clip"));
    m.qa_ns.record(tree.total_ns("qa.predict"));
    m.grow_trials
        .fetch_add(tree.counter_total("trials"), Ordering::Relaxed);
    m.grow_trials_pruned
        .fetch_add(tree.counter_total("trials_pruned"), Ordering::Relaxed);
    m.span_cache_hits
        .fetch_add(tree.counter_total("span_cache_hits"), Ordering::Relaxed);
    m.span_cache_misses
        .fetch_add(tree.counter_total("span_cache_misses"), Ordering::Relaxed);
    let (batch_started, batch_ns, batch_size) = batch;
    let total_ns = queue_ns + tree.dur_ns;
    let mut root = SpanNode::synthetic("batch.coalesce", batch_started, batch_ns);
    root.counters.push(("batch_size", batch_size));
    root.children.push(tree);
    inner.recorder.record(RecordedRequest {
        id,
        ok,
        queue_ns,
        total_ns,
        tree: root,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced::GcedConfig;
    use gced_datasets::{generate, DatasetKind, GeneratorConfig};
    use std::sync::OnceLock;

    fn pipeline() -> Arc<Gced> {
        static P: OnceLock<Arc<Gced>> = OnceLock::new();
        Arc::clone(P.get_or_init(|| {
            let ds = generate(
                DatasetKind::Squad11,
                GeneratorConfig {
                    train: 60,
                    dev: 8,
                    seed: 11,
                },
            );
            Arc::new(Gced::fit(&ds, GcedConfig::default()))
        }))
    }

    fn start(
        batch_max: usize,
        flush: Duration,
        capacity: usize,
        deadline: Duration,
        faults: FaultPlan,
        metrics: &Arc<Metrics>,
    ) -> Batcher {
        Batcher::start(
            pipeline(),
            BatcherConfig {
                batch_max,
                flush,
                capacity,
                deadline,
            },
            Arc::new(faults),
            Arc::clone(metrics),
            Arc::new(FlightRecorder::new(8, 2)),
        )
    }

    const Q: &str = "Which team defeated the Panthers?";
    const A: &str = "Denver Broncos";
    const C: &str = "The Denver Broncos defeated the Carolina Panthers to earn the title. \
                     The band played all night.";

    fn done(reply: Reply) -> DistillOutcome {
        match reply {
            Reply::Done(outcome) => *outcome,
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn answers_match_direct_distillation() {
        let gced = pipeline();
        let metrics = Arc::new(Metrics::new());
        let b = start(
            4,
            Duration::from_millis(1),
            16,
            Duration::ZERO,
            FaultPlan::none(),
            &metrics,
        );
        let expected = gced.distill(Q, A, C).unwrap();
        let receivers: Vec<_> = (0..6)
            .map(|_| b.enqueue(0, Q.into(), A.into(), C.into()).unwrap())
            .collect();
        for rx in receivers {
            let got = done(rx.recv().unwrap()).unwrap();
            assert_eq!(got.evidence, expected.evidence);
            assert_eq!(got.scores, expected.scores);
        }
        b.shutdown();
        assert!(metrics.batches_total.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            metrics.batch_size.count(),
            metrics.batches_total.load(Ordering::Relaxed)
        );
        assert_eq!(metrics.latency_us.count(), 6);
    }

    #[test]
    fn traced_batches_feed_the_recorder_and_stage_metrics() {
        let metrics = Arc::new(Metrics::new());
        let recorder = Arc::new(FlightRecorder::new(8, 2));
        gced_obs::set_enabled(true);
        let b = Batcher::start(
            pipeline(),
            BatcherConfig {
                batch_max: 4,
                flush: Duration::from_millis(1),
                capacity: 16,
                deadline: Duration::ZERO,
            },
            Arc::new(FaultPlan::none()),
            Arc::clone(&metrics),
            Arc::clone(&recorder),
        );
        let rx = b.enqueue(41, Q.into(), A.into(), C.into()).unwrap();
        assert!(done(rx.recv().unwrap()).is_ok());
        b.shutdown();
        gced_obs::set_enabled(false);
        let rec = recorder.get(41).expect("traced request recorded");
        assert!(rec.ok);
        assert_eq!(rec.tree.name, "batch.coalesce");
        assert_eq!(rec.tree.counter_total("batch_size"), 1);
        let distill = &rec.tree.children[0];
        assert_eq!(distill.name, "distill");
        assert!(distill.total_ns("grow") > 0, "grow span recorded");
        assert!(distill.total_ns("clip") > 0, "clip span recorded");
        assert!(metrics.grow_ns.count() >= 1);
        assert!(metrics.queue_wait_ns.count() >= 1);
        assert!(
            metrics.grow_trials.load(Ordering::Relaxed) > 0,
            "trial counters flow from the span tree"
        );
    }

    #[test]
    fn pipeline_errors_travel_to_the_caller() {
        let metrics = Arc::new(Metrics::new());
        let b = start(
            4,
            Duration::from_millis(1),
            16,
            Duration::ZERO,
            FaultPlan::none(),
            &metrics,
        );
        let rx = b.enqueue(0, Q.into(), String::new(), C.into()).unwrap();
        assert!(matches!(
            done(rx.recv().unwrap()),
            Err(DistillError::EmptyAnswer)
        ));
        b.shutdown();
    }

    #[test]
    fn full_queue_sheds_instead_of_buffering() {
        let metrics = Arc::new(Metrics::new());
        // A batcher that cannot keep up: long flush window, capacity 2.
        let b = start(
            64,
            Duration::from_secs(5),
            2,
            Duration::ZERO,
            FaultPlan::none(),
            &metrics,
        );
        // Fill the queue faster than the 5s flush window drains it.
        let _rx1 = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        let _rx2 = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        let mut shed = 0;
        for _ in 0..4 {
            if matches!(
                b.enqueue(0, Q.into(), A.into(), C.into()),
                Err(EnqueueError::Full)
            ) {
                shed += 1;
            }
        }
        assert!(shed > 0, "an over-capacity enqueue must shed");
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let metrics = Arc::new(Metrics::new());
        // Huge flush window: requests sit queued until shutdown drains.
        let b = start(
            64,
            Duration::from_secs(30),
            16,
            Duration::ZERO,
            FaultPlan::none(),
            &metrics,
        );
        let receivers: Vec<_> = (0..3)
            .map(|_| b.enqueue(0, Q.into(), A.into(), C.into()).unwrap())
            .collect();
        b.shutdown();
        for rx in receivers {
            assert!(done(rx.recv().unwrap()).is_ok(), "drained request answered");
        }
        assert!(matches!(
            b.enqueue(0, Q.into(), A.into(), C.into()),
            Err(EnqueueError::ShuttingDown)
        ));
    }

    #[test]
    fn expired_requests_are_shed_at_dequeue() {
        let metrics = Arc::new(Metrics::new());
        // The 40ms flush window holds the request in the queue well past
        // its 1ms deadline, so the batcher sheds it instead of running.
        let b = start(
            64,
            Duration::from_millis(40),
            16,
            Duration::from_millis(1),
            FaultPlan::none(),
            &metrics,
        );
        let rx = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        assert!(matches!(rx.recv().unwrap(), Reply::Expired));
        // No distillation ran for the shed request.
        assert_eq!(metrics.latency_us.count(), 0);
        b.shutdown();
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn batch_panic_is_contained_to_its_batch() {
        let metrics = Arc::new(Metrics::new());
        let faults = FaultPlan::parse("seed=1,batch_panic=1x1").unwrap();
        let b = start(
            4,
            Duration::from_millis(1),
            16,
            Duration::ZERO,
            faults,
            &metrics,
        );
        // First batch rides into the injected panic …
        let rx = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        assert!(matches!(rx.recv().unwrap(), Reply::Panicked));
        // … and the thread survives to answer the next one correctly.
        assert!(b.is_alive(), "batcher thread must outlive a batch panic");
        let rx = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        let got = done(rx.recv().unwrap()).unwrap();
        let expected = pipeline().distill(Q, A, C).unwrap();
        assert_eq!(got.evidence, expected.evidence);
        b.shutdown();
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn a_killed_batcher_disconnects_waiters_and_revives() {
        let metrics = Arc::new(Metrics::new());
        let faults = FaultPlan::parse("seed=1,batcher_kill=1x1").unwrap();
        let b = start(
            4,
            Duration::from_millis(1),
            16,
            Duration::ZERO,
            faults,
            &metrics,
        );
        let rx = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        // The kill site panics outside the catch: the thread dies and
        // the waiting channel disconnects instead of replying.
        assert!(rx.recv().is_err(), "expected a disconnect, not a reply");
        assert!(b.revive(), "dead batcher must revive");
        assert!(b.is_alive());
        assert_eq!(metrics.batcher_restarts.load(Ordering::Relaxed), 1);
        // Reviving an already-live batcher is a no-op.
        assert!(!b.revive());
        // The revived thread serves correctly (the kill was capped x1).
        let rx = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        assert!(done(rx.recv().unwrap()).is_ok());
        b.shutdown();
        // Shutdown forbids revival.
        assert!(!b.revive());
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn shutdown_answers_leftovers_of_a_dead_batcher() {
        let metrics = Arc::new(Metrics::new());
        let faults = FaultPlan::parse("seed=1,batcher_kill=1").unwrap();
        // batch_max 1: the kill takes out only the first request; the
        // rest stay queued behind a dead thread.
        let b = start(
            1,
            Duration::from_millis(1),
            16,
            Duration::ZERO,
            faults,
            &metrics,
        );
        let doomed = b.enqueue(0, Q.into(), A.into(), C.into()).unwrap();
        assert!(doomed.recv().is_err(), "first request rides the kill");
        let stranded: Vec<_> = (0..3)
            .map(|_| b.enqueue(0, Q.into(), A.into(), C.into()).unwrap())
            .collect();
        b.shutdown();
        for rx in stranded {
            assert!(
                matches!(rx.recv().unwrap(), Reply::Shutdown),
                "stranded request answered at drain"
            );
        }
    }
}
