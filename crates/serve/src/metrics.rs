//! Lock-free request counters and fixed-bucket histograms for
//! `GET /metrics`.
//!
//! Everything is `AtomicU64` with relaxed ordering: the hot path pays
//! two atomic increments per observation, and the scrape path renders a
//! consistent-enough snapshot (exact per-counter, not cross-counter
//! atomic — standard for process metrics). Quantiles are estimated from
//! the bucket counts by linear interpolation inside the winning bucket,
//! which is as good as a histogram can answer and plenty for the p50 /
//! p99 the load bench and CI record.

use gced_datasets::json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive) of the request-latency buckets, in
/// microseconds; an implicit overflow bucket catches the rest.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Upper bounds (inclusive) of the coalesced-batch-size buckets.
pub const BATCH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// A fixed-bucket histogram with total count and sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// One counter per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Histogram over `bounds` (ascending upper bounds).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank. The overflow bucket
    /// reports its lower bound (the histogram cannot see further).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut below = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                below += c;
                continue;
            }
            if (below + c) as f64 >= target {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                if i == self.bounds.len() {
                    return lower as f64;
                }
                let upper = self.bounds[i];
                let into = (target - below as f64) / c as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            below += c;
        }
        *self.bounds.last().unwrap_or(&0) as f64
    }

    /// Append the histogram as a JSON object.
    fn push_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum().to_string());
        out.push_str(",\"mean\":");
        json::push_f64(out, self.mean());
        out.push_str(",\"p50\":");
        json::push_f64(out, self.quantile(0.50));
        out.push_str(",\"p99\":");
        json::push_f64(out, self.quantile(0.99));
        out.push_str(",\"buckets\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"le\":");
            match self.bounds.get(i) {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("\"inf\""),
            }
            out.push_str(",\"count\":");
            out.push_str(&c.load(Ordering::Relaxed).to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
}

/// All server counters, shared by connection handlers and the batcher.
///
/// The distill-path counters **decompose exactly**: every request that
/// reaches `/v1/distill` with a parseable body increments
/// `distill_requests_total` and then exactly one of `distill_ok`,
/// `distill_error`, `distill_panics`, `distill_timeouts`, `shed_full`,
/// `shed_expired`, or `shed_shutdown` — all incremented by the
/// connection handler that answers the request, so the equation holds
/// whenever no request is in flight (`tests/serve_chaos.rs` asserts it
/// under randomized concurrent chaos load). `shed_total` is rendered as
/// the sum of the three shed classes.
#[derive(Debug)]
pub struct Metrics {
    /// Requests that parsed into a known route.
    pub requests_total: AtomicU64,
    /// `/v1/distill` requests whose body parsed (the decomposition
    /// base: every one of these gets exactly one outcome counter).
    pub distill_requests_total: AtomicU64,
    /// Distillations answered 200.
    pub distill_ok: AtomicU64,
    /// Distillations answered 422 (per-item pipeline errors).
    pub distill_error: AtomicU64,
    /// Distillations answered 500 because a panic inside the coalesced
    /// `distill_batch` call (or a dying batcher thread) took out the
    /// batch this request rode in.
    pub distill_panics: AtomicU64,
    /// Distillations answered 500 because no batcher reply arrived
    /// within the hang backstop (the batcher is presumed stuck).
    pub distill_timeouts: AtomicU64,
    /// Requests shed with 503 because the queue was full at enqueue.
    pub shed_full: AtomicU64,
    /// Requests shed with 503 because their deadline expired in queue
    /// (shed at dequeue time, before any distillation work).
    pub shed_expired: AtomicU64,
    /// Requests shed with 503 because the server was shutting down
    /// (refused at enqueue, or flushed from a dead batcher's queue).
    pub shed_shutdown: AtomicU64,
    /// Times a dead batcher thread was detected and restarted.
    pub batcher_restarts: AtomicU64,
    /// Connection-handler threads that exited by panic (observed when
    /// the accept loop joins finished handles).
    pub conn_thread_panics: AtomicU64,
    /// Requests rejected at the HTTP layer (400/404/405/408/413).
    pub http_errors: AtomicU64,
    /// TCP connections accepted.
    pub connections_total: AtomicU64,
    /// Requests served on an already-open persistent connection (i.e.
    /// exchanges that skipped a TCP handshake thanks to keep-alive).
    pub keepalive_reuses: AtomicU64,
    /// Coalesced `distill_batch` calls executed.
    pub batches_total: AtomicU64,
    /// Coalesced batch sizes.
    pub batch_size: Histogram,
    /// End-to-end request latency (enqueue → response ready), µs.
    pub latency_us: Histogram,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            distill_requests_total: AtomicU64::new(0),
            distill_ok: AtomicU64::new(0),
            distill_error: AtomicU64::new(0),
            distill_panics: AtomicU64::new(0),
            distill_timeouts: AtomicU64::new(0),
            shed_full: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            shed_shutdown: AtomicU64::new(0),
            batcher_restarts: AtomicU64::new(0),
            conn_thread_panics: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_size: Histogram::new(BATCH_BOUNDS),
            latency_us: Histogram::new(LATENCY_BOUNDS_US),
        }
    }

    /// Render the `/metrics` document. `extra` carries server-shape
    /// fields (pool threads, queue knobs, parse-cache stats) appended as
    /// pre-rendered `"key":value` JSON members.
    pub fn render(&self, extra: &[(&str, String)]) -> String {
        let shed_full = self.shed_full.load(Ordering::Relaxed);
        let shed_expired = self.shed_expired.load(Ordering::Relaxed);
        let shed_shutdown = self.shed_shutdown.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        out.push_str("{\"requests_total\":");
        out.push_str(&self.requests_total.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_requests_total\":");
        out.push_str(
            &self
                .distill_requests_total
                .load(Ordering::Relaxed)
                .to_string(),
        );
        out.push_str(",\"distill_ok\":");
        out.push_str(&self.distill_ok.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_error\":");
        out.push_str(&self.distill_error.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_panics_total\":");
        out.push_str(&self.distill_panics.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_timeouts\":");
        out.push_str(&self.distill_timeouts.load(Ordering::Relaxed).to_string());
        out.push_str(",\"shed_total\":");
        out.push_str(&(shed_full + shed_expired + shed_shutdown).to_string());
        out.push_str(",\"shed_full\":");
        out.push_str(&shed_full.to_string());
        out.push_str(",\"shed_expired\":");
        out.push_str(&shed_expired.to_string());
        out.push_str(",\"shed_shutdown\":");
        out.push_str(&shed_shutdown.to_string());
        out.push_str(",\"batcher_restarts_total\":");
        out.push_str(&self.batcher_restarts.load(Ordering::Relaxed).to_string());
        out.push_str(",\"conn_thread_panics\":");
        out.push_str(&self.conn_thread_panics.load(Ordering::Relaxed).to_string());
        out.push_str(",\"http_errors\":");
        out.push_str(&self.http_errors.load(Ordering::Relaxed).to_string());
        out.push_str(",\"connections_total\":");
        out.push_str(&self.connections_total.load(Ordering::Relaxed).to_string());
        out.push_str(",\"keepalive_reuses\":");
        out.push_str(&self.keepalive_reuses.load(Ordering::Relaxed).to_string());
        out.push_str(",\"batches_total\":");
        out.push_str(&self.batches_total.load(Ordering::Relaxed).to_string());
        out.push_str(",\"batch_size\":");
        self.batch_size.push_json(&mut out);
        out.push_str(",\"latency_us\":");
        self.latency_us.push_json(&mut out);
        for (key, value) in extra {
            out.push(',');
            json::push_string(&mut out, key);
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_datasets::json::Json;

    #[test]
    fn histogram_counts_and_mean() {
        let h = Histogram::new(BATCH_BOUNDS);
        for v in [1, 1, 2, 4, 200] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 208);
        assert!((h.mean() - 41.6).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Histogram::new(LATENCY_BOUNDS_US);
        for _ in 0..100 {
            h.record(300); // bucket (250, 500]
        }
        let p50 = h.quantile(0.5);
        assert!((250.0..=500.0).contains(&p50), "p50 = {p50}");
        // Everything in one bucket: p99 stays inside it too.
        let p99 = h.quantile(0.99);
        assert!((250.0..=500.0).contains(&p99), "p99 = {p99}");
        // Overflow observations report the last bound.
        let o = Histogram::new(BATCH_BOUNDS);
        o.record(10_000);
        assert_eq!(o.quantile(0.5), *BATCH_BOUNDS.last().unwrap() as f64);
        // Empty histogram answers 0.
        assert_eq!(Histogram::new(BATCH_BOUNDS).quantile(0.9), 0.0);
    }

    #[test]
    fn render_is_valid_json_with_extras() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.batch_size.record(4);
        let text = m.render(&[("pool_threads", "8".to_string())]);
        let root = json::parse(&text).expect("valid JSON");
        assert_eq!(root.get("requests_total").and_then(Json::as_f64), Some(3.0));
        assert_eq!(root.get("pool_threads").and_then(Json::as_f64), Some(8.0));
        let batch = root.get("batch_size").expect("batch_size");
        assert_eq!(batch.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(batch.get("buckets").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn render_byte_order_is_pinned() {
        // DET001 audit regression: the /metrics document is hand-emitted
        // in a fixed key order (no map iteration anywhere on the path),
        // so two renders of the same state are byte-identical and the
        // top-level keys always appear in this exact sequence.
        let m = Metrics::new();
        m.requests_total.fetch_add(7, Ordering::Relaxed);
        m.shed_full.fetch_add(1, Ordering::Relaxed);
        m.batch_size.record(4);
        m.latency_us.record(300);
        let extra = [
            ("pool_threads", "8".to_string()),
            ("queue_cap", "64".to_string()),
        ];
        let text = m.render(&extra);
        assert_eq!(text, m.render(&extra), "render must be byte-stable");
        let keys = [
            "\"requests_total\":",
            "\"distill_requests_total\":",
            "\"distill_ok\":",
            "\"distill_error\":",
            "\"distill_panics_total\":",
            "\"distill_timeouts\":",
            "\"shed_total\":",
            "\"shed_full\":",
            "\"shed_expired\":",
            "\"shed_shutdown\":",
            "\"batcher_restarts_total\":",
            "\"conn_thread_panics\":",
            "\"http_errors\":",
            "\"connections_total\":",
            "\"keepalive_reuses\":",
            "\"batches_total\":",
            "\"batch_size\":",
            "\"latency_us\":",
            "\"pool_threads\":",
            "\"queue_cap\":",
        ];
        let mut cursor = 0;
        for key in keys {
            let at = text[cursor..]
                .find(key)
                .unwrap_or_else(|| panic!("{key} missing or out of order in {text}"));
            cursor += at + key.len();
        }
    }

    #[test]
    fn shed_total_is_the_sum_of_the_shed_classes() {
        let m = Metrics::new();
        m.shed_full.fetch_add(2, Ordering::Relaxed);
        m.shed_expired.fetch_add(3, Ordering::Relaxed);
        m.shed_shutdown.fetch_add(5, Ordering::Relaxed);
        let root = json::parse(&m.render(&[])).expect("valid JSON");
        let num = |k: &str| root.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
        assert_eq!(num("shed_total"), 10.0);
        assert_eq!(num("shed_full"), 2.0);
        assert_eq!(num("shed_expired"), 3.0);
        assert_eq!(num("shed_shutdown"), 5.0);
        assert_eq!(num("distill_panics_total"), 0.0);
        assert_eq!(num("batcher_restarts_total"), 0.0);
    }
}
