//! Lock-free request counters and fixed-bucket histograms for
//! `GET /metrics`.
//!
//! Everything is `AtomicU64` with relaxed ordering: the hot path pays
//! two atomic increments per observation, and the scrape path renders a
//! consistent-enough snapshot (exact per-counter, not cross-counter
//! atomic — standard for process metrics). Quantiles are estimated from
//! the bucket counts by linear interpolation inside the winning bucket,
//! which is as good as a histogram can answer and plenty for the p50 /
//! p99 the load bench and CI record.

use gced_datasets::json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive) of the request-latency buckets, in
/// microseconds; an implicit overflow bucket catches the rest.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Upper bounds (inclusive) of the coalesced-batch-size buckets.
pub const BATCH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Upper bounds (inclusive) of the per-stage duration buckets, in
/// nanoseconds (50 µs … 5 s); an implicit overflow bucket catches the
/// rest. Stage durations come from the span tracer, which records ns.
pub const STAGE_BOUNDS_NS: &[u64] = &[
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
];

/// A fixed-bucket histogram with total count and sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// One counter per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Histogram over `bounds` (ascending upper bounds).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank. The overflow bucket
    /// reports its lower bound (the histogram cannot see further).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut below = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                below += c;
                continue;
            }
            if (below + c) as f64 >= target {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                if i == self.bounds.len() {
                    return lower as f64;
                }
                let upper = self.bounds[i];
                let into = (target - below as f64) / c as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            below += c;
        }
        *self.bounds.last().unwrap_or(&0) as f64
    }

    /// Append the histogram as a JSON object.
    fn push_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum().to_string());
        out.push_str(",\"mean\":");
        json::push_f64(out, self.mean());
        out.push_str(",\"p50\":");
        json::push_f64(out, self.quantile(0.50));
        out.push_str(",\"p99\":");
        json::push_f64(out, self.quantile(0.99));
        out.push_str(",\"buckets\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"le\":");
            match self.bounds.get(i) {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("\"inf\""),
            }
            out.push_str(",\"count\":");
            out.push_str(&c.load(Ordering::Relaxed).to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
}

/// All server counters, shared by connection handlers and the batcher.
///
/// The distill-path counters **decompose exactly**: every request that
/// reaches `/v1/distill` with a parseable body increments
/// `distill_requests_total` and then exactly one of `distill_ok`,
/// `distill_error`, `distill_panics`, `distill_timeouts`, `shed_full`,
/// `shed_expired`, or `shed_shutdown` — all incremented by the
/// connection handler that answers the request, so the equation holds
/// whenever no request is in flight (`tests/serve_chaos.rs` asserts it
/// under randomized concurrent chaos load). `shed_total` is rendered as
/// the sum of the three shed classes.
///
/// The response-cache counters decompose the same way: with the cache
/// enabled, every request in the decomposition base probes the store
/// exactly once before the batch queue, so `cache_hits_total +
/// cache_misses_total == distill_requests_total` (and every hit is a
/// `distill_ok`). `evictions_total` counts entries the store dropped
/// (LRU + logical TTL); `evidence_replays_total` counts
/// `GET /v1/evidence/{id}` hits, which are deliberately *outside* the
/// distill decomposition.
#[derive(Debug)]
pub struct Metrics {
    /// Requests that parsed into a known route.
    pub requests_total: AtomicU64,
    /// `/v1/distill` requests whose body parsed (the decomposition
    /// base: every one of these gets exactly one outcome counter).
    pub distill_requests_total: AtomicU64,
    /// Distillations answered 200.
    pub distill_ok: AtomicU64,
    /// Distillations answered 422 (per-item pipeline errors).
    pub distill_error: AtomicU64,
    /// Distillations answered 500 because a panic inside the coalesced
    /// `distill_batch` call (or a dying batcher thread) took out the
    /// batch this request rode in.
    pub distill_panics: AtomicU64,
    /// Distillations answered 500 because no batcher reply arrived
    /// within the hang backstop (the batcher is presumed stuck).
    pub distill_timeouts: AtomicU64,
    /// Requests shed with 503 because the queue was full at enqueue.
    pub shed_full: AtomicU64,
    /// Requests shed with 503 because their deadline expired in queue
    /// (shed at dequeue time, before any distillation work).
    pub shed_expired: AtomicU64,
    /// Requests shed with 503 because the server was shutting down
    /// (refused at enqueue, or flushed from a dead batcher's queue).
    pub shed_shutdown: AtomicU64,
    /// Times a dead batcher thread was detected and restarted.
    pub batcher_restarts: AtomicU64,
    /// Connection-handler threads that exited by panic (observed when
    /// the accept loop joins finished handles).
    pub conn_thread_panics: AtomicU64,
    /// Requests rejected at the HTTP layer (400/404/405/408/413).
    pub http_errors: AtomicU64,
    /// TCP connections accepted.
    pub connections_total: AtomicU64,
    /// Requests served on an already-open persistent connection (i.e.
    /// exchanges that skipped a TCP handshake thanks to keep-alive).
    pub keepalive_reuses: AtomicU64,
    /// Response-cache probes answered from the store (skipped the
    /// batch queue entirely).
    pub cache_hits: AtomicU64,
    /// Response-cache probes that missed and rode the pipeline.
    pub cache_misses: AtomicU64,
    /// Entries the response store evicted (LRU + logical TTL).
    pub cache_evictions: AtomicU64,
    /// `GET /v1/evidence/{id}` requests answered from the store.
    pub evidence_replays: AtomicU64,
    /// Coalesced `distill_batch` calls executed.
    pub batches_total: AtomicU64,
    /// Coalesced batch sizes.
    pub batch_size: Histogram,
    /// End-to-end request latency (enqueue → response ready), µs.
    pub latency_us: Histogram,
    /// ASE grow trials scored (span-tracer counter, traced requests).
    pub grow_trials: AtomicU64,
    /// ASE grow trials pruned before scoring (never QA-scored).
    pub grow_trials_pruned: AtomicU64,
    /// Selection-score span-cache hits across grow + clip.
    pub span_cache_hits: AtomicU64,
    /// Selection-score span-cache misses across grow + clip.
    pub span_cache_misses: AtomicU64,
    /// Per-request time inside `parse` spans (CKY), ns.
    pub parse_ns: Histogram,
    /// Per-request time inside the ASE `grow` span, ns.
    pub grow_ns: Histogram,
    /// Per-request time inside the OEC `clip` span, ns.
    pub clip_ns: Histogram,
    /// Per-request time inside `qa.predict` spans, ns.
    pub qa_ns: Histogram,
    /// Time requests waited in the batch queue before dequeue, ns.
    pub queue_wait_ns: Histogram,
}

/// `num / den` as a rate in `[0, 1]`; 0.0 when the denominator is 0.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            distill_requests_total: AtomicU64::new(0),
            distill_ok: AtomicU64::new(0),
            distill_error: AtomicU64::new(0),
            distill_panics: AtomicU64::new(0),
            distill_timeouts: AtomicU64::new(0),
            shed_full: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            shed_shutdown: AtomicU64::new(0),
            batcher_restarts: AtomicU64::new(0),
            conn_thread_panics: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            evidence_replays: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_size: Histogram::new(BATCH_BOUNDS),
            latency_us: Histogram::new(LATENCY_BOUNDS_US),
            grow_trials: AtomicU64::new(0),
            grow_trials_pruned: AtomicU64::new(0),
            span_cache_hits: AtomicU64::new(0),
            span_cache_misses: AtomicU64::new(0),
            parse_ns: Histogram::new(STAGE_BOUNDS_NS),
            grow_ns: Histogram::new(STAGE_BOUNDS_NS),
            clip_ns: Histogram::new(STAGE_BOUNDS_NS),
            qa_ns: Histogram::new(STAGE_BOUNDS_NS),
            queue_wait_ns: Histogram::new(STAGE_BOUNDS_NS),
        }
    }

    /// Render the `/metrics` document. `extra` carries server-shape
    /// fields (pool threads, queue knobs, parse-cache stats) appended as
    /// pre-rendered `"key":value` JSON members.
    pub fn render(&self, extra: &[(&str, String)]) -> String {
        let shed_full = self.shed_full.load(Ordering::Relaxed);
        let shed_expired = self.shed_expired.load(Ordering::Relaxed);
        let shed_shutdown = self.shed_shutdown.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        out.push_str("{\"requests_total\":");
        out.push_str(&self.requests_total.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_requests_total\":");
        out.push_str(
            &self
                .distill_requests_total
                .load(Ordering::Relaxed)
                .to_string(),
        );
        out.push_str(",\"distill_ok\":");
        out.push_str(&self.distill_ok.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_error\":");
        out.push_str(&self.distill_error.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_panics_total\":");
        out.push_str(&self.distill_panics.load(Ordering::Relaxed).to_string());
        out.push_str(",\"distill_timeouts\":");
        out.push_str(&self.distill_timeouts.load(Ordering::Relaxed).to_string());
        out.push_str(",\"shed_total\":");
        out.push_str(&(shed_full + shed_expired + shed_shutdown).to_string());
        out.push_str(",\"shed_full\":");
        out.push_str(&shed_full.to_string());
        out.push_str(",\"shed_expired\":");
        out.push_str(&shed_expired.to_string());
        out.push_str(",\"shed_shutdown\":");
        out.push_str(&shed_shutdown.to_string());
        out.push_str(",\"batcher_restarts_total\":");
        out.push_str(&self.batcher_restarts.load(Ordering::Relaxed).to_string());
        out.push_str(",\"conn_thread_panics\":");
        out.push_str(&self.conn_thread_panics.load(Ordering::Relaxed).to_string());
        out.push_str(",\"http_errors\":");
        out.push_str(&self.http_errors.load(Ordering::Relaxed).to_string());
        out.push_str(",\"connections_total\":");
        out.push_str(&self.connections_total.load(Ordering::Relaxed).to_string());
        out.push_str(",\"keepalive_reuses\":");
        out.push_str(&self.keepalive_reuses.load(Ordering::Relaxed).to_string());
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        out.push_str(",\"cache_hits_total\":");
        out.push_str(&cache_hits.to_string());
        out.push_str(",\"cache_misses_total\":");
        out.push_str(&cache_misses.to_string());
        out.push_str(",\"cache_hit_rate\":");
        json::push_f64(&mut out, ratio(cache_hits, cache_hits + cache_misses));
        out.push_str(",\"evictions_total\":");
        out.push_str(&self.cache_evictions.load(Ordering::Relaxed).to_string());
        out.push_str(",\"evidence_replays_total\":");
        out.push_str(&self.evidence_replays.load(Ordering::Relaxed).to_string());
        out.push_str(",\"batches_total\":");
        out.push_str(&self.batches_total.load(Ordering::Relaxed).to_string());
        out.push_str(",\"batch_size\":");
        self.batch_size.push_json(&mut out);
        out.push_str(",\"latency_us\":");
        self.latency_us.push_json(&mut out);
        let trials = self.grow_trials.load(Ordering::Relaxed);
        let pruned = self.grow_trials_pruned.load(Ordering::Relaxed);
        let sc_hits = self.span_cache_hits.load(Ordering::Relaxed);
        let sc_misses = self.span_cache_misses.load(Ordering::Relaxed);
        out.push_str(",\"grow_trials_total\":");
        out.push_str(&trials.to_string());
        out.push_str(",\"grow_trials_pruned\":");
        out.push_str(&pruned.to_string());
        // Prune rate over every grow candidate: each one is either
        // pruned or scored as a trial.
        out.push_str(",\"grow_prune_rate\":");
        json::push_f64(&mut out, ratio(pruned, trials + pruned));
        out.push_str(",\"span_cache_hits\":");
        out.push_str(&sc_hits.to_string());
        out.push_str(",\"span_cache_misses\":");
        out.push_str(&sc_misses.to_string());
        out.push_str(",\"span_cache_hit_rate\":");
        json::push_f64(&mut out, ratio(sc_hits, sc_hits + sc_misses));
        out.push_str(",\"parse_ns\":");
        self.parse_ns.push_json(&mut out);
        out.push_str(",\"grow_ns\":");
        self.grow_ns.push_json(&mut out);
        out.push_str(",\"clip_ns\":");
        self.clip_ns.push_json(&mut out);
        out.push_str(",\"qa_ns\":");
        self.qa_ns.push_json(&mut out);
        out.push_str(",\"queue_wait_ns\":");
        self.queue_wait_ns.push_json(&mut out);
        for (key, value) in extra {
            out.push(',');
            json::push_string(&mut out, key);
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_datasets::json::Json;

    #[test]
    fn histogram_counts_and_mean() {
        let h = Histogram::new(BATCH_BOUNDS);
        for v in [1, 1, 2, 4, 200] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 208);
        assert!((h.mean() - 41.6).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Histogram::new(LATENCY_BOUNDS_US);
        for _ in 0..100 {
            h.record(300); // bucket (250, 500]
        }
        let p50 = h.quantile(0.5);
        assert!((250.0..=500.0).contains(&p50), "p50 = {p50}");
        // Everything in one bucket: p99 stays inside it too.
        let p99 = h.quantile(0.99);
        assert!((250.0..=500.0).contains(&p99), "p99 = {p99}");
        // Overflow observations report the last bound.
        let o = Histogram::new(BATCH_BOUNDS);
        o.record(10_000);
        assert_eq!(o.quantile(0.5), *BATCH_BOUNDS.last().unwrap() as f64);
        // Empty histogram answers 0.
        assert_eq!(Histogram::new(BATCH_BOUNDS).quantile(0.9), 0.0);
    }

    #[test]
    fn quantile_edges_empty_extremes_and_clamping() {
        // Empty histogram: every quantile answers 0, including the
        // extremes.
        let h = Histogram::new(BATCH_BOUNDS);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        // A single observation: every quantile lands in its bucket.
        h.record(3); // bucket (2, 4]
        for q in [0.0, 0.25, 0.5, 1.0] {
            let v = h.quantile(q);
            assert!((2.0..=4.0).contains(&v), "q={q}: {v}");
        }
        // Out-of-range q clamps instead of exploding.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_on_a_single_bucket_histogram() {
        static ONE: &[u64] = &[10];
        let h = Histogram::new(ONE);
        h.record(5);
        h.record(7);
        let p0 = h.quantile(0.0);
        let p100 = h.quantile(1.0);
        assert!((0.0..=10.0).contains(&p0), "p0 = {p0}");
        assert!((0.0..=10.0).contains(&p100), "p100 = {p100}");
        assert!(p0 <= p100);
    }

    #[test]
    fn values_beyond_the_last_bound_report_its_lower_bound() {
        let h = Histogram::new(BATCH_BOUNDS);
        h.record(u64::MAX);
        // The overflow bucket cannot interpolate; both extremes answer
        // the last finite bound.
        assert_eq!(h.quantile(0.0), 128.0);
        assert_eq!(h.quantile(0.5), 128.0);
        assert_eq!(h.quantile(1.0), 128.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn effectiveness_rates_render_from_the_counters() {
        let m = Metrics::new();
        m.grow_trials.fetch_add(30, Ordering::Relaxed);
        m.grow_trials_pruned.fetch_add(10, Ordering::Relaxed);
        m.span_cache_hits.fetch_add(3, Ordering::Relaxed);
        m.span_cache_misses.fetch_add(1, Ordering::Relaxed);
        m.parse_ns.record(1_000_000);
        let root = json::parse(&m.render(&[])).expect("valid JSON");
        let num = |k: &str| root.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
        assert_eq!(num("grow_trials_total"), 30.0);
        assert_eq!(num("grow_trials_pruned"), 10.0);
        assert!((num("grow_prune_rate") - 0.25).abs() < 1e-9);
        assert!((num("span_cache_hit_rate") - 0.75).abs() < 1e-9);
        assert_eq!(
            root.get("parse_ns")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        // Zero denominators render 0, not NaN.
        let fresh = json::parse(&Metrics::new().render(&[])).expect("valid JSON");
        assert_eq!(
            fresh.get("grow_prune_rate").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn render_is_valid_json_with_extras() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.batch_size.record(4);
        let text = m.render(&[("pool_threads", "8".to_string())]);
        let root = json::parse(&text).expect("valid JSON");
        assert_eq!(root.get("requests_total").and_then(Json::as_f64), Some(3.0));
        assert_eq!(root.get("pool_threads").and_then(Json::as_f64), Some(8.0));
        let batch = root.get("batch_size").expect("batch_size");
        assert_eq!(batch.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(batch.get("buckets").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn render_byte_order_is_pinned() {
        // DET001 audit regression: the /metrics document is hand-emitted
        // in a fixed key order (no map iteration anywhere on the path),
        // so two renders of the same state are byte-identical and the
        // top-level keys always appear in this exact sequence.
        let m = Metrics::new();
        m.requests_total.fetch_add(7, Ordering::Relaxed);
        m.shed_full.fetch_add(1, Ordering::Relaxed);
        m.batch_size.record(4);
        m.latency_us.record(300);
        let extra = [
            ("pool_threads", "8".to_string()),
            ("queue_cap", "64".to_string()),
        ];
        let text = m.render(&extra);
        assert_eq!(text, m.render(&extra), "render must be byte-stable");
        let keys = [
            "\"requests_total\":",
            "\"distill_requests_total\":",
            "\"distill_ok\":",
            "\"distill_error\":",
            "\"distill_panics_total\":",
            "\"distill_timeouts\":",
            "\"shed_total\":",
            "\"shed_full\":",
            "\"shed_expired\":",
            "\"shed_shutdown\":",
            "\"batcher_restarts_total\":",
            "\"conn_thread_panics\":",
            "\"http_errors\":",
            "\"connections_total\":",
            "\"keepalive_reuses\":",
            "\"cache_hits_total\":",
            "\"cache_misses_total\":",
            "\"cache_hit_rate\":",
            "\"evictions_total\":",
            "\"evidence_replays_total\":",
            "\"batches_total\":",
            "\"batch_size\":",
            "\"latency_us\":",
            "\"grow_trials_total\":",
            "\"grow_trials_pruned\":",
            "\"grow_prune_rate\":",
            "\"span_cache_hits\":",
            "\"span_cache_misses\":",
            "\"span_cache_hit_rate\":",
            "\"parse_ns\":",
            "\"grow_ns\":",
            "\"clip_ns\":",
            "\"qa_ns\":",
            "\"queue_wait_ns\":",
            "\"pool_threads\":",
            "\"queue_cap\":",
        ];
        let mut cursor = 0;
        for key in keys {
            let at = text[cursor..]
                .find(key)
                .unwrap_or_else(|| panic!("{key} missing or out of order in {text}"));
            cursor += at + key.len();
        }
    }

    #[test]
    fn cache_counters_render_with_their_hit_rate() {
        let m = Metrics::new();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.cache_evictions.fetch_add(2, Ordering::Relaxed);
        m.evidence_replays.fetch_add(5, Ordering::Relaxed);
        let root = json::parse(&m.render(&[])).expect("valid JSON");
        let num = |k: &str| root.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
        assert_eq!(num("cache_hits_total"), 3.0);
        assert_eq!(num("cache_misses_total"), 1.0);
        assert!((num("cache_hit_rate") - 0.75).abs() < 1e-9);
        assert_eq!(num("evictions_total"), 2.0);
        assert_eq!(num("evidence_replays_total"), 5.0);
        // Zero denominator renders 0, not NaN.
        let fresh = json::parse(&Metrics::new().render(&[])).expect("valid JSON");
        assert_eq!(
            fresh.get("cache_hit_rate").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn shed_total_is_the_sum_of_the_shed_classes() {
        let m = Metrics::new();
        m.shed_full.fetch_add(2, Ordering::Relaxed);
        m.shed_expired.fetch_add(3, Ordering::Relaxed);
        m.shed_shutdown.fetch_add(5, Ordering::Relaxed);
        let root = json::parse(&m.render(&[])).expect("valid JSON");
        let num = |k: &str| root.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
        assert_eq!(num("shed_total"), 10.0);
        assert_eq!(num("shed_full"), 2.0);
        assert_eq!(num("shed_expired"), 3.0);
        assert_eq!(num("shed_shutdown"), 5.0);
        assert_eq!(num("distill_panics_total"), 0.0);
        assert_eq!(num("batcher_restarts_total"), 0.0);
    }
}
