//! # gced-serve — a warm, micro-batching online distillation server
//!
//! PRs 1–3 made the pipeline fast *offline*: `gced run` fits, shards,
//! distills, and exits. This crate opens the online workload the paper
//! frames — evidence distilled per (question, answer, context) request
//! next to a QA model — as a persistent HTTP/1.1 server over
//! `std::net` with zero external dependencies:
//!
//! * the fitted substrates load **once** at startup (from a fit-cache
//!   artifact or a fresh fit) and stay warm across requests;
//! * concurrent `POST /v1/distill` requests are **micro-batched**
//!   ([`batch`]): coalesced up to a batch size bound or a flush
//!   deadline, then run through `Gced::distill_batch` on the persistent
//!   `gced-par` worker pool — server throughput rides the same parallel
//!   path as the offline batch runner;
//! * per-sentence CKY parses are memoized across requests
//!   (`Gced::with_parse_cache`), so repeated or same-shaped sentences
//!   parse once;
//! * backpressure **sheds load**: a bounded queue answers 503 when
//!   full instead of buffering unboundedly;
//! * a sharded, byte-deterministic **response cache** (`gced-store`)
//!   is probed before the batch queue: a warm hit answers with the
//!   exact stored bytes and skips coalescing entirely, and every
//!   successful distillation becomes a durable evidence artifact
//!   replayable via `GET /v1/evidence/{id}` (the id — the hex request
//!   fingerprint — rides the body and the `X-Gced-Evidence-Id`
//!   header); eviction is LRU plus a logical TTL measured in
//!   subsequent insertions, never wall-clock;
//! * `GET /healthz` and `GET /metrics` expose liveness, counters, and
//!   batch-size / latency histograms ([`metrics`]);
//! * shutdown (`POST /shutdown` or [`ServerHandle::shutdown`]) is
//!   graceful: accepting stops, in-flight connections finish, queued
//!   requests drain through the batcher, every thread is joined;
//! * failure is **contained** ([`batch`], [`fault`]): a panic inside a
//!   coalesced `distill_batch` answers only that batch with 500 and the
//!   batcher lives on; a dead batcher thread is detected and restarted;
//!   queued requests carry a deadline and are shed (503 +
//!   `Retry-After`) instead of waiting forever; slow-loris peers are
//!   cut off by a total per-request read deadline (408); and a seeded
//!   [`fault::FaultPlan`] can deterministically inject faults at named
//!   sites to prove all of the above (`tests/serve_chaos.rs`).
//!
//! The determinism pin: a served response body is **byte-identical** to
//! the offline rendering of the same input ([`wire::render_distillation`]
//! over [`gced::Gced::distill`]) — cold or warm parse cache, any
//! concurrency, any batching. `tests/serve_parity.rs` hammers this with
//! multi-threaded clients; CI `cmp`s a served body against the offline
//! `gced distill` of the same request.

pub mod batch;
pub mod client;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod recorder;
pub mod wire;

use batch::{Batcher, BatcherConfig, EnqueueError, Reply};
use fault::{FaultPlan, Site};
use metrics::Metrics;
use recorder::FlightRecorder;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Seconds a shed (503) response tells the client to back off before
/// retrying, via the `Retry-After` header. [`client::Session`] honors
/// it.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Server knobs. `Default` is tuned for a laptop-scale deployment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Maximum requests coalesced into one `distill_batch` call.
    pub batch_max: usize,
    /// How long the batcher waits for co-arriving requests after the
    /// first queued item before flushing a partial batch.
    pub flush: Duration,
    /// Bounded queue depth; requests beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Parse-cache capacity in POS signatures (0 disables).
    pub parse_cache: usize,
    /// Per-connection socket read timeout — also the keep-alive idle
    /// timeout between requests on a persistent connection.
    pub read_timeout: Duration,
    /// Maximum requests served on one persistent connection before the
    /// server answers `Connection: close` (bounds per-client hogging).
    pub max_requests_per_conn: usize,
    /// Maximum time a queued request may wait before it is shed with
    /// 503 + `Retry-After` (expiry is checked at dequeue; the waiting
    /// handler also uses this to size its hang backstop).
    /// `Duration::ZERO` disables expiry.
    pub request_deadline: Duration,
    /// Total time the request head + body may take to arrive
    /// (slow-loris protection on top of `read_timeout`, which bounds
    /// each individual read and keep-alive idle). Exceeding it answers
    /// 408. `Duration::ZERO` disables it.
    pub read_deadline: Duration,
    /// Deterministic fault-injection plan (chaos testing). `None` or an
    /// empty plan means no faults; see [`fault::FaultPlan::parse`].
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Contexts pre-parsed into the parse cache at startup (typically
    /// the dev corpus of the served fingerprint), so first requests hit
    /// a warm cache. Ignored when `parse_cache` is 0.
    pub warmup_docs: Vec<String>,
    /// Per-request span tracing plus the `/debug/requests` flight
    /// recorder. On by default: traces are a sidecar channel (response
    /// bodies stay byte-identical to offline rendering), and the cost
    /// per span is two monotonic-clock reads and a thread-local push.
    pub trace: bool,
    /// Recent-ring capacity of the flight recorder — the last N traced
    /// requests are kept (the slowest few are kept besides; see
    /// [`recorder::DEFAULT_SLOW`]).
    pub flight_requests: usize,
    /// Response-cache entry capacity across shards (0 disables the
    /// cache and the evidence store).
    pub cache_entries: usize,
    /// Response-cache byte budget across shards (0 disables).
    pub cache_bytes: usize,
    /// Logical TTL: a cached entry expires after this many subsequent
    /// insertions into its shard (0 = entries never expire by age).
    pub cache_ttl_ops: u64,
    /// Response-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_max: 16,
            flush: Duration::from_millis(2),
            queue_capacity: 256,
            parse_cache: 4096,
            read_timeout: Duration::from_secs(10),
            max_requests_per_conn: 128,
            request_deadline: Duration::from_secs(10),
            read_deadline: Duration::from_secs(30),
            fault_plan: None,
            warmup_docs: Vec::new(),
            trace: true,
            flight_requests: recorder::DEFAULT_RECENT,
            cache_entries: 4096,
            cache_bytes: 32 << 20,
            cache_ttl_ops: 0,
            cache_shards: 8,
        }
    }
}

/// What the startup warmup did, reported under `warmup` in `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
struct WarmupStats {
    docs: usize,
    sentences: usize,
}

struct Shared {
    gced: Arc<gced::Gced>,
    batcher: Batcher,
    faults: Arc<FaultPlan>,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    config: ServeConfig,
    addr: SocketAddr,
    warmup: WarmupStats,
    /// Live connection sockets, keyed by a per-connection id. Shutdown
    /// shrinks every socket's read timeout so idle keep-alive
    /// connections stop blocking in `read_request` promptly instead of
    /// stalling the drain for the full idle timeout; in-flight
    /// exchanges still finish and close via the shutdown flag.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// The flight recorder the batcher feeds (`/debug/requests`).
    recorder: Arc<FlightRecorder>,
    /// Server-assigned `/v1/distill` request ids, echoed as
    /// `X-Gced-Request-Id` (ids start at 1).
    next_request_id: AtomicU64,
    /// The response cache + durable evidence store, probed before the
    /// batch queue and filled on every successful distillation.
    store: gced_store::ResponseStore,
    /// Process-epoch stopwatch behind `uptime_seconds`.
    started: gced_obs::clock::Stopwatch,
}

/// Removes a connection's registry entry when its handler exits (also
/// on unwind).
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut conns) = self.shared.conns.lock() {
            conns.remove(&self.id);
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or `POST /shutdown`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Bind, spawn the batcher and the accept loop, and return immediately.
/// The pipeline is wrapped with the configured parse cache; pass a
/// pre-warmed `Gced` (fit or fit-cache decode) — `start` never fits.
pub fn start(gced: gced::Gced, mut config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let gced = if config.parse_cache > 0 {
        gced.with_parse_cache(config.parse_cache)
    } else {
        gced
    };
    // Batch-aware warmup: pre-parse the configured corpus through the
    // exact per-sentence path requests use, so the first real batch hits
    // a warm parse cache instead of paying every CKY parse cold. The
    // corpus is taken out of the config — it is startup-only data and
    // would otherwise sit in memory for the server's lifetime.
    let warmup_docs = std::mem::take(&mut config.warmup_docs);
    let mut warmup = WarmupStats::default();
    if config.parse_cache > 0 {
        for doc in &warmup_docs {
            let sentences = gced.warm_parse_cache(doc);
            if sentences > 0 {
                warmup.docs += 1;
                warmup.sentences += sentences;
            }
        }
    }
    drop(warmup_docs);
    let gced = Arc::new(gced);
    let metrics = Arc::new(Metrics::new());
    let faults = config
        .fault_plan
        .clone()
        .unwrap_or_else(|| Arc::new(FaultPlan::none()));
    if config.trace {
        // Tracing is process-global but recording is scoped: spans hit
        // only threads inside a capture (the batcher's traced batches),
        // and traces never touch response bytes.
        gced_obs::set_enabled(true);
    }
    let flight = Arc::new(FlightRecorder::new(
        config.flight_requests,
        recorder::DEFAULT_SLOW,
    ));
    let store_config = gced_store::StoreConfig {
        entries: config.cache_entries,
        bytes: config.cache_bytes,
        ttl_ops: config.cache_ttl_ops,
        shards: config.cache_shards,
    };
    let batcher = Batcher::start(
        Arc::clone(&gced),
        BatcherConfig {
            batch_max: config.batch_max,
            flush: config.flush,
            capacity: config.queue_capacity,
            deadline: config.request_deadline,
        },
        Arc::clone(&faults),
        Arc::clone(&metrics),
        Arc::clone(&flight),
    );
    let shared = Arc::new(Shared {
        gced,
        batcher,
        faults,
        metrics,
        shutdown: AtomicBool::new(false),
        config,
        addr,
        warmup,
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
        recorder: flight,
        next_request_id: AtomicU64::new(0),
        store: gced_store::ResponseStore::new(store_config),
        started: gced_obs::clock::Stopwatch::start(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("gced-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolved port when `addr` asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begin graceful shutdown: stop accepting, let in-flight
    /// connections finish, drain the queue. Returns immediately;
    /// [`ServerHandle::join`] waits for completion. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Block until the server has fully shut down (accept loop exited,
    /// connections joined, batcher drained and joined).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread exited cleanly");
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the blocking accept() with a throwaway connection; the
    // accept loop re-checks the flag before handling anything.
    let _ = TcpStream::connect(shared.addr);
    // Idle keep-alive connections are blocked in `read_request` for up
    // to the full idle timeout; shutting down the socket's read half
    // wakes a blocked recv immediately (EOF) while leaving the write
    // half open, so handlers mid-exchange still flush their in-flight
    // response — their loop then closes via the shutdown flag.
    if let Ok(conns) = shared.conns.lock() {
        for stream in conns.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), shared.conns.lock()) {
            conns.insert(conn_id, clone);
        }
        match std::thread::Builder::new()
            .name("gced-serve-conn".to_string())
            .spawn(move || {
                let _guard = ConnGuard {
                    shared: &conn_shared,
                    id: conn_id,
                };
                handle_connection(stream, &conn_shared);
            }) {
            Ok(handle) => connections.push(handle),
            Err(_) => {
                // Spawn refused; connection drops (client sees EOF).
                if let Ok(mut conns) = shared.conns.lock() {
                    conns.remove(&conn_id);
                }
                continue;
            }
        }
        // Reap finished connection threads so the vec stays bounded by
        // the number of *live* connections, not total served. Finished
        // handles are **joined**, not dropped, so a handler that exited
        // by panic is observed (`conn_thread_panics`) instead of
        // silently swallowed.
        connections = connections
            .drain(..)
            .filter_map(|h| {
                if h.is_finished() {
                    reap(h, shared);
                    None
                } else {
                    Some(h)
                }
            })
            .collect();
    }
    // Drain: connections still running may enqueue; the batcher is only
    // shut down (and its queue drained) after every handler returned.
    for handle in connections {
        reap(handle, shared);
    }
    shared.batcher.shutdown();
}

/// Join a connection-thread handle, counting a panicked exit.
fn reap(handle: std::thread::JoinHandle<()>, shared: &Shared) {
    if handle.join().is_err() {
        shared
            .metrics
            .conn_thread_panics
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Serve one connection: a keep-alive loop of read → route → respond,
/// bounded by `max_requests_per_conn`, the client's `Connection`
/// preference, the socket read timeout (idle cap), and shutdown.
/// Framing errors answer with `Connection: close` and end the loop (a
/// desynchronized byte stream cannot be trusted for another request).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    shared
        .metrics
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    let max_requests = shared.config.max_requests_per_conn.max(1);
    for served in 0..max_requests {
        if let Some(ms) = shared.faults.fire(Site::ReadStall) {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let request =
            match http::read_request(&mut reader, &mut writer, shared.config.read_deadline) {
                Ok(r) => r,
                // Idle close / timeout between requests: nothing to answer.
                Err(http::HttpError::Io(_)) => return,
                Err(e) => {
                    shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                    let status = match e {
                        http::HttpError::TooLarge(_) => 413,
                        http::HttpError::TooSlow(_) => 408,
                        _ => 400,
                    };
                    let _ = http::write_response(
                        &mut writer,
                        status,
                        &wire::render_error(&e.to_string()),
                        false,
                    );
                    return;
                }
            };
        if served > 0 {
            shared
                .metrics
                .keepalive_reuses
                .fetch_add(1, Ordering::Relaxed);
        }
        let routed = route(&request, shared);
        // HTTP-layer rejections only: 422/500 are already counted as
        // distill errors, 503 as shed — the counters must decompose.
        if matches!(routed.status, 400 | 404 | 405 | 413) {
            shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
        }
        let keep = request.keep_alive
            && served + 1 < max_requests
            && !shared.shutdown.load(Ordering::SeqCst);
        if write_reply(&mut writer, &routed, keep, shared).is_err() || !keep {
            return;
        }
    }
}

/// Write one response frame, routing through the `torn_write` chaos
/// site: when it fires, only a prefix of the frame reaches the socket
/// and the connection is torn down — the retrying client must survive
/// a response cut mid-frame.
fn write_reply(
    writer: &mut TcpStream,
    routed: &Routed,
    keep_alive: bool,
    shared: &Shared,
) -> std::io::Result<()> {
    let frame = http::render_response_with(
        routed.status,
        &routed.body,
        keep_alive,
        routed.retry_after,
        &http::ResponseTags {
            request_id: routed.request_id,
            evidence_id: routed.evidence_id.as_deref(),
            cache: routed.cache,
        },
    );
    if shared.faults.fire(Site::TornWrite).is_some() {
        let cut = (frame.len() / 2).max(1);
        let _ = writer.write_all(&frame[..cut]);
        let _ = writer.flush();
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "chaos: torn_write fired",
        ));
    }
    writer.write_all(&frame)?;
    writer.flush()
}

/// One routed response: status, body, and the optional headers the
/// endpoint asked for (`Retry-After` on sheds, `X-Gced-Request-Id` on
/// distill requests, `X-Gced-Evidence-Id`/`X-Gced-Cache` on cache-aware
/// responses).
struct Routed {
    status: u16,
    body: String,
    retry_after: Option<u64>,
    request_id: Option<u64>,
    evidence_id: Option<String>,
    cache: Option<&'static str>,
}

impl Routed {
    fn plain(status: u16, body: String) -> Routed {
        Routed {
            status,
            body,
            retry_after: None,
            request_id: None,
            evidence_id: None,
            cache: None,
        }
    }
}

/// Dispatch one parsed request to its endpoint.
fn route(request: &http::Request, shared: &Shared) -> Routed {
    shared
        .metrics
        .requests_total
        .fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Routed::plain(200, healthz_body(shared)),
        ("GET", "/metrics") => Routed::plain(200, metrics_body(shared)),
        ("POST", "/v1/distill") => distill(request, shared),
        ("POST", "/shutdown") => {
            trigger_shutdown(shared);
            Routed::plain(200, "{\"status\":\"shutting down\"}".to_string())
        }
        ("GET", "/debug/requests") => Routed::plain(200, shared.recorder.list_json()),
        ("GET", path) if path.starts_with("/v1/evidence/") => {
            evidence(shared, &path["/v1/evidence/".len()..])
        }
        (_, path) if path.starts_with("/v1/evidence/") => Routed::plain(
            405,
            wire::render_error(&format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        ("GET", path) if path.starts_with("/debug/requests/") => {
            let tail = &path["/debug/requests/".len()..];
            match tail
                .parse::<u64>()
                .ok()
                .and_then(|id| shared.recorder.get_json(id, true))
            {
                Some(body) => Routed::plain(200, body),
                None => Routed::plain(
                    404,
                    wire::render_error(&format!("no recorded request {tail:?}")),
                ),
            }
        }
        (
            "GET" | "POST",
            "/healthz" | "/metrics" | "/v1/distill" | "/shutdown" | "/debug/requests",
        ) => Routed::plain(
            405,
            wire::render_error(&format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        _ => Routed::plain(
            404,
            wire::render_error(&format!("no route for {}", request.path)),
        ),
    }
}

/// How long a handler waits for its batcher reply before presuming the
/// batcher stuck. Generous on purpose — the batcher itself sheds
/// expired requests at dequeue, so this backstop only matters when the
/// batcher stops making progress entirely.
fn recv_backstop(config: &ServeConfig) -> Duration {
    if config.request_deadline.is_zero() {
        Duration::from_secs(300)
    } else {
        config.request_deadline * 2 + config.flush * 2 + Duration::from_secs(1)
    }
}

/// Replay a stored distillation: `GET /v1/evidence/{id}`. A hit serves
/// the exact bytes the original `/v1/distill` response carried;
/// replays count under `evidence_replays_total`, outside the distill
/// decomposition.
fn evidence(shared: &Shared, id: &str) -> Routed {
    let Some(fp) = gced_store::parse_evidence_id(id) else {
        return Routed::plain(
            404,
            wire::render_error(&format!("malformed evidence id {id:?}")),
        );
    };
    match shared.store.get(fp) {
        Some(body) => {
            shared
                .metrics
                .evidence_replays
                .fetch_add(1, Ordering::Relaxed);
            Routed {
                status: 200,
                body,
                retry_after: None,
                request_id: None,
                evidence_id: Some(id.to_string()),
                cache: Some("hit"),
            }
        }
        None => Routed::plain(
            404,
            wire::render_error(&format!("no stored evidence {id:?}")),
        ),
    }
}

/// Run one `/v1/distill` request through the response cache, then (on
/// a miss) the batcher. Every request whose body parses increments
/// `distill_requests_total` and exactly one outcome counter — all from
/// this function, so the `/metrics` decomposition holds exactly (see
/// [`metrics::Metrics`]). With the cache enabled the same requests
/// also increment exactly one of `cache_hits_total` /
/// `cache_misses_total`, probed **before** the batch queue — a warm
/// hit answers the stored bytes and never touches the batcher.
fn distill(request: &http::Request, shared: &Shared) -> Routed {
    let parsed = match wire::parse_request(&request.body) {
        Ok(p) => p,
        Err(e) => return Routed::plain(400, wire::render_error(&e)),
    };
    let m = &shared.metrics;
    m.distill_requests_total.fetch_add(1, Ordering::Relaxed);
    // The id is assigned to every parseable request — shed ones too —
    // and echoed back as `X-Gced-Request-Id`; only requests that rode a
    // traced batch (or probed the cache under tracing) appear under
    // `/debug/requests`.
    let id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    // The fingerprint keys the cache AND derives the evidence id the
    // body carries, so it is computed whether or not the cache is on —
    // offline `gced distill` derives the identical id.
    let fp = gced_store::request_fingerprint(&parsed.question, &parsed.answer, &parsed.context);
    let eid = gced_store::evidence_id(fp);
    if shared.store.enabled() {
        let (probe, tree) = gced_obs::capture("cache.probe", || shared.store.get(fp));
        if let Some(body) = probe {
            m.cache_hits.fetch_add(1, Ordering::Relaxed);
            m.distill_ok.fetch_add(1, Ordering::Relaxed);
            if let Some(tree) = tree {
                // Hits are debuggable too: the flight recorder gets a
                // tree rooted at `cache.probe` instead of
                // `batch.coalesce`, with zero queue wait.
                shared.recorder.record(recorder::RecordedRequest {
                    id,
                    ok: true,
                    queue_ns: 0,
                    total_ns: tree.dur_ns,
                    tree,
                });
            }
            return Routed {
                status: 200,
                body,
                retry_after: None,
                request_id: Some(id),
                evidence_id: Some(eid),
                cache: Some("hit"),
            };
        }
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    let tagged = |status: u16, body: String, retry_after: Option<u64>| Routed {
        status,
        body,
        retry_after,
        request_id: Some(id),
        evidence_id: None,
        cache: None,
    };
    let rx = match shared
        .batcher
        .enqueue(id, parsed.question, parsed.answer, parsed.context)
    {
        Ok(rx) => rx,
        Err(EnqueueError::Full) => {
            m.shed_full.fetch_add(1, Ordering::Relaxed);
            return tagged(
                503,
                wire::render_error("queue full, retry later"),
                Some(RETRY_AFTER_SECS),
            );
        }
        Err(EnqueueError::ShuttingDown) => {
            m.shed_shutdown.fetch_add(1, Ordering::Relaxed);
            return tagged(
                503,
                wire::render_error("server is shutting down"),
                Some(RETRY_AFTER_SECS),
            );
        }
    };
    match rx.recv_timeout(recv_backstop(&shared.config)) {
        Ok(Reply::Done(outcome)) => match *outcome {
            Ok(d) => {
                m.distill_ok.fetch_add(1, Ordering::Relaxed);
                let body = wire::render_distillation_with_id(&eid, &d);
                if shared.store.enabled() {
                    // The single store-fill site: evictions the insert
                    // performed (LRU + logical-TTL sweep) are added
                    // here, keeping `evictions_total` single-sided.
                    let out = shared.store.insert(fp, &body);
                    m.cache_evictions.fetch_add(out.evicted, Ordering::Relaxed);
                }
                Routed {
                    status: 200,
                    body,
                    retry_after: None,
                    request_id: Some(id),
                    evidence_id: Some(eid),
                    cache: shared.store.enabled().then_some("miss"),
                }
            }
            Err(e) => {
                m.distill_error.fetch_add(1, Ordering::Relaxed);
                tagged(
                    422,
                    wire::render_error(&wire::distill_error_message(&e)),
                    None,
                )
            }
        },
        Ok(Reply::Panicked) => {
            m.distill_panics.fetch_add(1, Ordering::Relaxed);
            tagged(
                500,
                wire::render_error("distillation batch panicked, safe to retry"),
                None,
            )
        }
        Ok(Reply::Expired) => {
            m.shed_expired.fetch_add(1, Ordering::Relaxed);
            tagged(
                503,
                wire::render_error("request deadline expired in queue, retry later"),
                Some(RETRY_AFTER_SECS),
            )
        }
        Ok(Reply::Shutdown) => {
            m.shed_shutdown.fetch_add(1, Ordering::Relaxed);
            tagged(
                503,
                wire::render_error("server is shutting down"),
                Some(RETRY_AFTER_SECS),
            )
        }
        // The batcher answers every queued request, so a disconnect
        // means the thread died with this request in flight. Answer
        // 500 (the client may retry — distillation is idempotent) and
        // restart the batcher as a last resort.
        Err(RecvTimeoutError::Disconnected) => {
            m.distill_panics.fetch_add(1, Ordering::Relaxed);
            shared.batcher.revive();
            tagged(
                500,
                wire::render_error("batcher died mid-batch, safe to retry"),
                None,
            )
        }
        // No reply within the backstop: presume the batcher stuck.
        // Never leave the client hanging.
        Err(RecvTimeoutError::Timeout) => {
            m.distill_timeouts.fetch_add(1, Ordering::Relaxed);
            tagged(
                500,
                wire::render_error("no batcher reply within backstop, safe to retry"),
                None,
            )
        }
    }
}

fn healthz_body(shared: &Shared) -> String {
    // The health check doubles as the batcher watchdog: a dead batcher
    // thread (a panic that escaped the per-batch catch) is restarted
    // here as a last resort, so probes heal the server even when no
    // distill traffic is around to notice the corpse.
    if !shared.batcher.is_alive() {
        shared.batcher.revive();
    }
    format!(
        "{{\"status\":\"ok\",\"batcher_alive\":{},\"pool_threads\":{},\"queued\":{},\"batch_max\":{},\"queue_capacity\":{},\"max_requests_per_conn\":{},\"uptime_seconds\":{},\"build_info\":{}}}",
        shared.batcher.is_alive(),
        gced_par::effective_parallelism(),
        shared.batcher.queued(),
        shared.config.batch_max,
        shared.config.queue_capacity,
        shared.config.max_requests_per_conn,
        shared.started.elapsed().as_secs(),
        build_info(),
    )
}

/// Crate version and compiled feature set, under `build_info` in both
/// `/healthz` and `/metrics`.
fn build_info() -> String {
    format!(
        "{{\"version\":\"{}\",\"features\":{{\"chaos\":{}}}}}",
        env!("CARGO_PKG_VERSION"),
        cfg!(feature = "chaos"),
    )
}

fn metrics_body(shared: &Shared) -> String {
    let mut extra = vec![
        (
            "pool_threads",
            gced_par::effective_parallelism().to_string(),
        ),
        ("queued", shared.batcher.queued().to_string()),
        ("batch_max", shared.config.batch_max.to_string()),
        ("queue_capacity", shared.config.queue_capacity.to_string()),
        ("flush_us", shared.config.flush.as_micros().to_string()),
        (
            "max_requests_per_conn",
            shared.config.max_requests_per_conn.to_string(),
        ),
        (
            "request_deadline_ms",
            shared.config.request_deadline.as_millis().to_string(),
        ),
        (
            "read_deadline_ms",
            shared.config.read_deadline.as_millis().to_string(),
        ),
        (
            "uptime_seconds",
            shared.started.elapsed().as_secs().to_string(),
        ),
        ("build_info", build_info()),
        ("trace", shared.config.trace.to_string()),
        (
            "flight_recorded_total",
            shared.recorder.recorded_total().to_string(),
        ),
        (
            "warmup",
            format!(
                "{{\"docs\":{},\"sentences\":{}}}",
                shared.warmup.docs, shared.warmup.sentences
            ),
        ),
    ];
    if let Some(stats) = shared.gced.parse_cache_stats() {
        let mut hit_rate = String::new();
        let lookups = stats.hits + stats.misses;
        gced_datasets::json::push_f64(
            &mut hit_rate,
            if lookups == 0 {
                0.0
            } else {
                stats.hits as f64 / lookups as f64
            },
        );
        extra.push((
            "parse_cache",
            format!(
                "{{\"hits\":{},\"misses\":{},\"len\":{},\"capacity\":{},\"hit_rate\":{}}}",
                stats.hits, stats.misses, stats.len, stats.capacity, hit_rate
            ),
        ));
    }
    let cache_cfg = shared.store.config();
    extra.push((
        "cache",
        format!(
            "{{\"enabled\":{},\"entries\":{},\"bytes\":{},\"ttl_ops\":{},\"shards\":{},\"len\":{},\"bytes_used\":{}}}",
            shared.store.enabled(),
            cache_cfg.entries,
            cache_cfg.bytes,
            cache_cfg.ttl_ops,
            shared.store.shard_count(),
            shared.store.len(),
            shared.store.bytes_used(),
        ),
    ));
    if !shared.faults.is_empty() {
        extra.push(("faults", shared.faults.render_json()));
    }
    shared.metrics.render(&extra)
}
