//! # gced-serve — a warm, micro-batching online distillation server
//!
//! PRs 1–3 made the pipeline fast *offline*: `gced run` fits, shards,
//! distills, and exits. This crate opens the online workload the paper
//! frames — evidence distilled per (question, answer, context) request
//! next to a QA model — as a persistent HTTP/1.1 server over
//! `std::net` with zero external dependencies:
//!
//! * the fitted substrates load **once** at startup (from a fit-cache
//!   artifact or a fresh fit) and stay warm across requests;
//! * concurrent `POST /v1/distill` requests are **micro-batched**
//!   ([`batch`]): coalesced up to a batch size bound or a flush
//!   deadline, then run through `Gced::distill_batch` on the persistent
//!   `gced-par` worker pool — server throughput rides the same parallel
//!   path as the offline batch runner;
//! * per-sentence CKY parses are memoized across requests
//!   (`Gced::with_parse_cache`), so repeated or same-shaped sentences
//!   parse once;
//! * backpressure **sheds load**: a bounded queue answers 503 when
//!   full instead of buffering unboundedly;
//! * `GET /healthz` and `GET /metrics` expose liveness, counters, and
//!   batch-size / latency histograms ([`metrics`]);
//! * shutdown (`POST /shutdown` or [`ServerHandle::shutdown`]) is
//!   graceful: accepting stops, in-flight connections finish, queued
//!   requests drain through the batcher, every thread is joined.
//!
//! The determinism pin: a served response body is **byte-identical** to
//! the offline rendering of the same input ([`wire::render_distillation`]
//! over [`gced::Gced::distill`]) — cold or warm parse cache, any
//! concurrency, any batching. `tests/serve_parity.rs` hammers this with
//! multi-threaded clients; CI `cmp`s a served body against the offline
//! `gced distill` of the same request.

pub mod batch;
pub mod client;
pub mod http;
pub mod metrics;
pub mod wire;

use batch::{Batcher, EnqueueError};
use metrics::Metrics;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server knobs. `Default` is tuned for a laptop-scale deployment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Maximum requests coalesced into one `distill_batch` call.
    pub batch_max: usize,
    /// How long the batcher waits for co-arriving requests after the
    /// first queued item before flushing a partial batch.
    pub flush: Duration,
    /// Bounded queue depth; requests beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Parse-cache capacity in POS signatures (0 disables).
    pub parse_cache: usize,
    /// Per-connection socket read timeout — also the keep-alive idle
    /// timeout between requests on a persistent connection.
    pub read_timeout: Duration,
    /// Maximum requests served on one persistent connection before the
    /// server answers `Connection: close` (bounds per-client hogging).
    pub max_requests_per_conn: usize,
    /// Contexts pre-parsed into the parse cache at startup (typically
    /// the dev corpus of the served fingerprint), so first requests hit
    /// a warm cache. Ignored when `parse_cache` is 0.
    pub warmup_docs: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch_max: 16,
            flush: Duration::from_millis(2),
            queue_capacity: 256,
            parse_cache: 4096,
            read_timeout: Duration::from_secs(10),
            max_requests_per_conn: 128,
            warmup_docs: Vec::new(),
        }
    }
}

/// What the startup warmup did, reported under `warmup` in `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
struct WarmupStats {
    docs: usize,
    sentences: usize,
}

struct Shared {
    gced: Arc<gced::Gced>,
    batcher: Batcher,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    config: ServeConfig,
    addr: SocketAddr,
    warmup: WarmupStats,
    /// Live connection sockets, keyed by a per-connection id. Shutdown
    /// shrinks every socket's read timeout so idle keep-alive
    /// connections stop blocking in `read_request` promptly instead of
    /// stalling the drain for the full idle timeout; in-flight
    /// exchanges still finish and close via the shutdown flag.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// Removes a connection's registry entry when its handler exits (also
/// on unwind).
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut conns) = self.shared.conns.lock() {
            conns.remove(&self.id);
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or `POST /shutdown`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Bind, spawn the batcher and the accept loop, and return immediately.
/// The pipeline is wrapped with the configured parse cache; pass a
/// pre-warmed `Gced` (fit or fit-cache decode) — `start` never fits.
pub fn start(gced: gced::Gced, mut config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let gced = if config.parse_cache > 0 {
        gced.with_parse_cache(config.parse_cache)
    } else {
        gced
    };
    // Batch-aware warmup: pre-parse the configured corpus through the
    // exact per-sentence path requests use, so the first real batch hits
    // a warm parse cache instead of paying every CKY parse cold. The
    // corpus is taken out of the config — it is startup-only data and
    // would otherwise sit in memory for the server's lifetime.
    let warmup_docs = std::mem::take(&mut config.warmup_docs);
    let mut warmup = WarmupStats::default();
    if config.parse_cache > 0 {
        for doc in &warmup_docs {
            let sentences = gced.warm_parse_cache(doc);
            if sentences > 0 {
                warmup.docs += 1;
                warmup.sentences += sentences;
            }
        }
    }
    drop(warmup_docs);
    let gced = Arc::new(gced);
    let metrics = Arc::new(Metrics::new());
    let batcher = Batcher::start(
        Arc::clone(&gced),
        config.batch_max,
        config.flush,
        config.queue_capacity,
        Arc::clone(&metrics),
    );
    let shared = Arc::new(Shared {
        gced,
        batcher,
        metrics,
        shutdown: AtomicBool::new(false),
        config,
        addr,
        warmup,
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("gced-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolved port when `addr` asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begin graceful shutdown: stop accepting, let in-flight
    /// connections finish, drain the queue. Returns immediately;
    /// [`ServerHandle::join`] waits for completion. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Block until the server has fully shut down (accept loop exited,
    /// connections joined, batcher drained and joined).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread exited cleanly");
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the blocking accept() with a throwaway connection; the
    // accept loop re-checks the flag before handling anything.
    let _ = TcpStream::connect(shared.addr);
    // Idle keep-alive connections are blocked in `read_request` for up
    // to the full idle timeout; shutting down the socket's read half
    // wakes a blocked recv immediately (EOF) while leaving the write
    // half open, so handlers mid-exchange still flush their in-flight
    // response — their loop then closes via the shutdown flag.
    if let Ok(conns) = shared.conns.lock() {
        for stream in conns.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), shared.conns.lock()) {
            conns.insert(conn_id, clone);
        }
        match std::thread::Builder::new()
            .name("gced-serve-conn".to_string())
            .spawn(move || {
                let _guard = ConnGuard {
                    shared: &conn_shared,
                    id: conn_id,
                };
                handle_connection(stream, &conn_shared);
            }) {
            Ok(handle) => connections.push(handle),
            Err(_) => {
                // Spawn refused; connection drops (client sees EOF).
                if let Ok(mut conns) = shared.conns.lock() {
                    conns.remove(&conn_id);
                }
                continue;
            }
        }
        // Reap finished connection threads so the vec stays bounded by
        // the number of *live* connections, not total served.
        connections.retain(|h| !h.is_finished());
    }
    // Drain: connections still running may enqueue; the batcher is only
    // shut down (and its queue drained) after every handler returned.
    for handle in connections {
        let _ = handle.join();
    }
    shared.batcher.shutdown();
}

/// Serve one connection: a keep-alive loop of read → route → respond,
/// bounded by `max_requests_per_conn`, the client's `Connection`
/// preference, the socket read timeout (idle cap), and shutdown.
/// Framing errors answer with `Connection: close` and end the loop (a
/// desynchronized byte stream cannot be trusted for another request).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    shared
        .metrics
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    let max_requests = shared.config.max_requests_per_conn.max(1);
    for served in 0..max_requests {
        let request = match http::read_request(&mut reader, &mut writer) {
            Ok(r) => r,
            // Idle close / timeout between requests: nothing to answer.
            Err(http::HttpError::Io(_)) => return,
            Err(e) => {
                shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                let status = match e {
                    http::HttpError::TooLarge(_) => 413,
                    _ => 400,
                };
                let _ = http::write_response(
                    &mut writer,
                    status,
                    &wire::render_error(&e.to_string()),
                    false,
                );
                return;
            }
        };
        if served > 0 {
            shared
                .metrics
                .keepalive_reuses
                .fetch_add(1, Ordering::Relaxed);
        }
        let (status, body) = route(&request, shared);
        // HTTP-layer rejections only: 422/500 are already counted as
        // distill errors, 503 as shed — the counters must decompose.
        if matches!(status, 400 | 404 | 405 | 413) {
            shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
        }
        let keep = request.keep_alive
            && served + 1 < max_requests
            && !shared.shutdown.load(Ordering::SeqCst);
        if http::write_response(&mut writer, status, &body, keep).is_err() || !keep {
            return;
        }
    }
}

/// Dispatch one parsed request to its endpoint.
fn route(request: &http::Request, shared: &Shared) -> (u16, String) {
    shared
        .metrics
        .requests_total
        .fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, healthz_body(shared)),
        ("GET", "/metrics") => (200, metrics_body(shared)),
        ("POST", "/v1/distill") => distill(request, shared),
        ("POST", "/shutdown") => {
            trigger_shutdown(shared);
            (200, "{\"status\":\"shutting down\"}".to_string())
        }
        ("GET" | "POST", "/healthz" | "/metrics" | "/v1/distill" | "/shutdown") => (
            405,
            wire::render_error(&format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        _ => (
            404,
            wire::render_error(&format!("no route for {}", request.path)),
        ),
    }
}

fn distill(request: &http::Request, shared: &Shared) -> (u16, String) {
    let parsed = match wire::parse_request(&request.body) {
        Ok(p) => p,
        Err(e) => return (400, wire::render_error(&e)),
    };
    let rx = match shared
        .batcher
        .enqueue(parsed.question, parsed.answer, parsed.context)
    {
        Ok(rx) => rx,
        Err(e) => {
            shared.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            let msg = match e {
                EnqueueError::Full => "queue full, retry later",
                EnqueueError::ShuttingDown => "server is shutting down",
            };
            return (503, wire::render_error(msg));
        }
    };
    match rx.recv() {
        Ok(Ok(d)) => (200, wire::render_distillation(&d)),
        Ok(Err(e)) => (422, wire::render_error(&wire::distill_error_message(&e))),
        // The batcher answers every queued request, so a closed channel
        // means it died — surface that instead of hanging the client.
        Err(_) => (500, wire::render_error("batcher unavailable")),
    }
}

fn healthz_body(shared: &Shared) -> String {
    format!(
        "{{\"status\":\"ok\",\"pool_threads\":{},\"queued\":{},\"batch_max\":{},\"queue_capacity\":{},\"max_requests_per_conn\":{}}}",
        gced_par::effective_parallelism(),
        shared.batcher.queued(),
        shared.config.batch_max,
        shared.config.queue_capacity,
        shared.config.max_requests_per_conn
    )
}

fn metrics_body(shared: &Shared) -> String {
    let mut extra = vec![
        (
            "pool_threads",
            gced_par::effective_parallelism().to_string(),
        ),
        ("queued", shared.batcher.queued().to_string()),
        ("batch_max", shared.config.batch_max.to_string()),
        ("queue_capacity", shared.config.queue_capacity.to_string()),
        ("flush_us", shared.config.flush.as_micros().to_string()),
        (
            "max_requests_per_conn",
            shared.config.max_requests_per_conn.to_string(),
        ),
        (
            "warmup",
            format!(
                "{{\"docs\":{},\"sentences\":{}}}",
                shared.warmup.docs, shared.warmup.sentences
            ),
        ),
    ];
    if let Some(stats) = shared.gced.parse_cache_stats() {
        extra.push((
            "parse_cache",
            format!(
                "{{\"hits\":{},\"misses\":{},\"len\":{},\"capacity\":{}}}",
                stats.hits, stats.misses, stats.len, stats.capacity
            ),
        ));
    }
    shared.metrics.render(&extra)
}
