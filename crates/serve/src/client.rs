//! A minimal blocking HTTP/1.1 client for exercising the server.
//!
//! Used by the integration tests, the load-generator bench, and anyone
//! poking a local `gced serve` from Rust without external crates. Two
//! flavors: the one-shot [`get`]/[`post`] helpers send
//! `Connection: close` and read to EOF, and [`Session`] holds one
//! persistent connection open across many exchanges (with
//! `Content-Length`-framed reads), including true pipelining — writing
//! several requests before reading the first response.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response: status code plus raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes, exactly as served.
    pub body: Vec<u8>,
    /// True when the server will keep the connection open
    /// (`Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Response {
    /// Body as UTF-8 (servers here only speak JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path` on a fresh connection (`Connection: close`).
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: gced\r\nConnection: close\r\n\r\n"),
    )
}

/// `POST path` with a JSON body on a fresh connection
/// (`Connection: close`).
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: gced\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn exchange(addr: SocketAddr, raw: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(raw.as_bytes())?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    parse_response(&buf)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Split a `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status_line = head.lines().next()?;
    let status = status_line.split(' ').nth(1)?.parse().ok()?;
    // The server always sends Content-Length; read-to-EOF already
    // collected exactly that many bytes (plus nothing — one exchange
    // per connection), so the slice after the blank line is the body.
    Some(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
        keep_alive: header_keep_alive(head),
    })
}

fn header_keep_alive(head: &str) -> bool {
    head.lines().any(|l| {
        l.split_once(':').is_some_and(|(name, value)| {
            name.trim().eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("keep-alive")
        })
    })
}

/// One persistent connection to the server. Each call frames its read
/// by the response's `Content-Length`, so the socket stays usable for
/// the next exchange until the server answers `Connection: close`.
pub struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    /// Connect with a 60 s read timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connect with an explicit read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Session {
            reader,
            writer: stream,
        })
    }

    /// `GET path`, keeping the connection open.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.send_get(path)?;
        self.read_response()
    }

    /// `POST path` with a JSON body, keeping the connection open.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.send_post(path, body)?;
        self.read_response()
    }

    /// Write a GET without reading the response (pipelining half).
    pub fn send_get(&mut self, path: &str) -> std::io::Result<()> {
        let raw = format!("GET {path} HTTP/1.1\r\nHost: gced\r\n\r\n");
        self.writer.write_all(raw.as_bytes())?;
        self.writer.flush()
    }

    /// Write a POST without reading the response (pipelining half).
    pub fn send_post(&mut self, path: &str, body: &str) -> std::io::Result<()> {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: gced\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(raw.as_bytes())?;
        self.writer.flush()
    }

    /// Read one `Content-Length`-framed response (pipelining half).
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut head = String::new();
        let mut status: Option<u16> = None;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a response head",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if status.is_none() {
                // Interim 1xx responses (100 Continue) are skipped.
                let code: u16 = trimmed
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("malformed status line"))?;
                if (100..200).contains(&code) {
                    // Consume the interim head's terminating blank line.
                    let mut blank = String::new();
                    self.reader.read_line(&mut blank)?;
                    continue;
                }
                status = Some(code);
            } else if trimmed.is_empty() {
                break;
            } else if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| bad("bad content-length"))?,
                    );
                }
            }
            head.push_str(trimmed);
            head.push('\n');
        }
        let len = content_length.ok_or_else(|| bad("response without content-length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status: status.expect("status parsed"),
            body,
            keep_alive: header_keep_alive(&head),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\n\r\nhi";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, b"hi");
        assert_eq!(r.text(), "hi");
        assert!(!r.keep_alive);
        let ka = b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";
        assert!(parse_response(ka).unwrap().keep_alive);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_none());
    }
}
