//! A minimal blocking HTTP/1.1 client for exercising the server.
//!
//! Used by the integration tests, the load-generator bench, the chaos
//! suite, and anyone poking a local `gced serve` from Rust without
//! external crates. Two flavors: the one-shot [`get`]/[`post`] helpers
//! send `Connection: close` and read to EOF, and [`Session`] holds one
//! persistent connection open across many exchanges (with
//! `Content-Length`-framed reads), including true pipelining — writing
//! several requests before reading the first response.
//!
//! [`Session::post_with_retry`] rides out server faults: 500s (a
//! panicked batch), 503 sheds, and torn connections are retried under a
//! seeded, jittered exponential backoff ([`RetryPolicy`]) that honors
//! the server's `Retry-After` hint. Retrying blindly is **safe by
//! construction** here: every distillation is deterministic and
//! idempotent, so a retried request can only ever produce the same
//! bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response: status code plus raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes, exactly as served.
    pub body: Vec<u8>,
    /// True when the server will keep the connection open
    /// (`Connection: keep-alive`).
    pub keep_alive: bool,
    /// Parsed `Retry-After` header (seconds), present on shed (503)
    /// responses.
    pub retry_after: Option<u64>,
    /// Parsed `X-Gced-Request-Id` header — the server-assigned id a
    /// distill request can be looked up under at `/debug/requests/{id}`.
    pub request_id: Option<u64>,
    /// Parsed `X-Gced-Evidence-Id` header — the durable id a served
    /// distillation can be replayed under at `/v1/evidence/{id}`.
    pub evidence_id: Option<String>,
    /// Parsed `X-Gced-Cache` header (`"hit"` / `"miss"`), present on
    /// cache-probed distill responses.
    pub cache: Option<String>,
}

impl Response {
    /// Body as UTF-8 (servers here only speak JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path` on a fresh connection (`Connection: close`).
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: gced\r\nConnection: close\r\n\r\n"),
    )
}

/// `POST path` with a JSON body on a fresh connection
/// (`Connection: close`).
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: gced\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn exchange(addr: SocketAddr, raw: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(raw.as_bytes())?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    parse_response(&buf)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Split a `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status_line = head.lines().next()?;
    let status = status_line.split(' ').nth(1)?.parse().ok()?;
    // The server always sends Content-Length; read-to-EOF already
    // collected exactly that many bytes (plus nothing — one exchange
    // per connection), so the slice after the blank line is the body.
    Some(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
        keep_alive: header_keep_alive(head),
        retry_after: header_retry_after(head),
        request_id: header_u64(head, "x-gced-request-id"),
        evidence_id: header_string(head, "x-gced-evidence-id"),
        cache: header_string(head, "x-gced-cache"),
    })
}

fn header_keep_alive(head: &str) -> bool {
    head.lines().any(|l| {
        l.split_once(':').is_some_and(|(name, value)| {
            name.trim().eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("keep-alive")
        })
    })
}

fn header_retry_after(head: &str) -> Option<u64> {
    header_u64(head, "retry-after")
}

fn header_u64(head: &str, header: &str) -> Option<u64> {
    header_string(head, header).and_then(|v| v.parse().ok())
}

fn header_string(head: &str, header: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        if name.trim().eq_ignore_ascii_case(header) {
            Some(value.trim().to_string())
        } else {
            None
        }
    })
}

/// Retry shape for [`Session::post_with_retry`]: seeded, jittered
/// exponential backoff with a budget. The attempt-`n` delay is
/// `min(cap, base·2ⁿ) · jitter` where jitter is drawn deterministically
/// from `seed` in `[0.5, 1.0)`, raised to the server's `Retry-After`
/// hint when one arrived (but never above `cap` — the cap is the
/// client's own bound on how long it is willing to stall).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (budget 0 = try once).
    pub budget: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Largest backoff delay.
    pub cap: Duration,
    /// Jitter stream seed; equal seeds replay equal delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x6ced,
        }
    }
}

impl RetryPolicy {
    /// The deterministic delay before retry number `attempt` (0-based),
    /// honoring an optional `Retry-After` hint in seconds.
    pub fn delay(&self, attempt: u32, retry_after: Option<u64>) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        let jitter = 0.5 + 0.5 * unit(splitmix64(self.seed ^ u64::from(attempt)));
        let jittered = exp.mul_f64(jitter);
        match retry_after {
            Some(secs) => jittered.max(Duration::from_secs(secs).min(self.cap)),
            None => jittered,
        }
    }
}

/// Map a u64 onto `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One persistent connection to the server. Each call frames its read
/// by the response's `Content-Length`, so the socket stays usable for
/// the next exchange until the server answers `Connection: close`.
pub struct Session {
    addr: SocketAddr,
    timeout: Duration,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    /// Connect with a 60 s read timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connect with an explicit read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let (reader, writer) = open(addr, timeout)?;
        Ok(Session {
            addr,
            timeout,
            reader,
            writer,
        })
    }

    /// Drop the current socket and dial a fresh one (same address and
    /// timeout). Used after a torn exchange: a desynchronized byte
    /// stream cannot be trusted for another framed read.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let (reader, writer) = open(self.addr, self.timeout)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// `GET path`, keeping the connection open.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.send_get(path)?;
        self.read_response()
    }

    /// `POST path` with a JSON body, keeping the connection open.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.send_post(path, body)?;
        self.read_response()
    }

    /// `POST path`, retrying through server faults under `policy`:
    /// 500s (panicked batch / dead batcher — idempotence makes the
    /// retry safe), 503 sheds (waiting out `Retry-After`), and torn
    /// connections (reconnecting first). Returns the last outcome when
    /// the budget runs out.
    pub fn post_with_retry(
        &mut self,
        path: &str,
        body: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.post(path, body);
            let retriable = match &outcome {
                Ok(r) => r.status == 500 || r.status == 503,
                Err(_) => true,
            };
            if !retriable || attempt >= policy.budget {
                return outcome;
            }
            let hint = outcome.as_ref().ok().and_then(|r| r.retry_after);
            let reconnect = match &outcome {
                // A clean but final response (`Connection: close`) and
                // any I/O failure both need a fresh socket.
                Ok(r) => !r.keep_alive,
                Err(_) => true,
            };
            std::thread::sleep(policy.delay(attempt, hint));
            attempt += 1;
            if reconnect {
                loop {
                    match self.reconnect() {
                        Ok(()) => break,
                        // A refused dial burns budget like any other retry.
                        Err(e) if attempt >= policy.budget => return Err(e),
                        Err(_) => {
                            std::thread::sleep(policy.delay(attempt, None));
                            attempt += 1;
                        }
                    }
                }
            }
        }
    }

    /// Write a GET without reading the response (pipelining half).
    pub fn send_get(&mut self, path: &str) -> std::io::Result<()> {
        let raw = format!("GET {path} HTTP/1.1\r\nHost: gced\r\n\r\n");
        self.writer.write_all(raw.as_bytes())?;
        self.writer.flush()
    }

    /// Write a POST without reading the response (pipelining half).
    pub fn send_post(&mut self, path: &str, body: &str) -> std::io::Result<()> {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: gced\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(raw.as_bytes())?;
        self.writer.flush()
    }

    /// Read one `Content-Length`-framed response (pipelining half).
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut head = String::new();
        let mut status: Option<u16> = None;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a response head",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if status.is_none() {
                // Interim 1xx responses (100 Continue) are skipped.
                let code: u16 = trimmed
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("malformed status line"))?;
                if (100..200).contains(&code) {
                    // Consume the interim head's terminating blank line.
                    let mut blank = String::new();
                    self.reader.read_line(&mut blank)?;
                    continue;
                }
                status = Some(code);
            } else if trimmed.is_empty() {
                break;
            } else if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| bad("bad content-length"))?,
                    );
                }
            }
            head.push_str(trimmed);
            head.push('\n');
        }
        let len = content_length.ok_or_else(|| bad("response without content-length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status: status.expect("status parsed"),
            body,
            keep_alive: header_keep_alive(&head),
            retry_after: header_retry_after(&head),
            request_id: header_u64(&head, "x-gced-request-id"),
            evidence_id: header_string(&head, "x-gced-evidence-id"),
            cache: header_string(&head, "x-gced-cache"),
        })
    }
}

fn open(addr: SocketAddr, timeout: Duration) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\n\r\nhi";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, b"hi");
        assert_eq!(r.text(), "hi");
        assert!(!r.keep_alive);
        assert_eq!(r.retry_after, None);
        let ka = b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";
        assert!(parse_response(ka).unwrap().keep_alive);
        let shed =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 3\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_response(shed).unwrap().retry_after, Some(3));
        assert_eq!(parse_response(shed).unwrap().request_id, None);
        let tagged = b"HTTP/1.1 200 OK\r\nX-Gced-Request-Id: 42\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_response(tagged).unwrap().request_id, Some(42));
        assert_eq!(parse_response(tagged).unwrap().evidence_id, None);
        assert_eq!(parse_response(tagged).unwrap().cache, None);
        let cached = b"HTTP/1.1 200 OK\r\nX-Gced-Evidence-Id: 00ff\r\nX-Gced-Cache: hit\r\nContent-Length: 0\r\n\r\n";
        let r = parse_response(cached).unwrap();
        assert_eq!(r.evidence_id.as_deref(), Some("00ff"));
        assert_eq!(r.cache.as_deref(), Some("hit"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_none());
    }

    #[test]
    fn backoff_delays_are_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            budget: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(800),
            seed: 7,
        };
        for attempt in 0..8 {
            let d = policy.delay(attempt, None);
            assert_eq!(d, policy.delay(attempt, None), "same seed, same delay");
            let exp = Duration::from_millis(100 * (1 << attempt)).min(policy.cap);
            assert!(d >= exp.mul_f64(0.5), "attempt {attempt}: {d:?} < half-exp");
            assert!(d <= exp, "attempt {attempt}: {d:?} > exp");
        }
        // A different seed draws different jitter somewhere.
        let other = RetryPolicy { seed: 8, ..policy };
        assert!((0..8).any(|a| other.delay(a, None) != policy.delay(a, None)));
        // A Retry-After hint raises the delay, but never beyond cap.
        assert!(policy.delay(0, Some(1)) >= Duration::from_millis(800));
        assert!(policy.delay(0, Some(3600)) <= Duration::from_millis(800));
    }
}
