//! A minimal blocking HTTP/1.1 client for exercising the server.
//!
//! Used by the integration tests, the load-generator bench, and anyone
//! poking a local `gced serve` from Rust without external crates. One
//! request per connection, mirroring the server's `Connection: close`
//! framing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response: status code plus raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes, exactly as served.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (servers here only speak JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: gced\r\n\r\n"))
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: gced\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn exchange(addr: SocketAddr, raw: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(raw.as_bytes())?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    parse_response(&buf)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Split a `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> Option<Response> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status_line = head.lines().next()?;
    let status = status_line.split(' ').nth(1)?.parse().ok()?;
    // The server always sends Content-Length; read-to-EOF already
    // collected exactly that many bytes (plus nothing — one exchange
    // per connection), so the slice after the blank line is the body.
    Some(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\n\r\nhi";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, b"hi");
        assert_eq!(r.text(), "hi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_none());
    }
}
