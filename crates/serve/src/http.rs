//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! The build environment has no async runtime or HTTP crates, so the
//! server hand-rolls the one slice of HTTP it needs: parse a request
//! head plus a `Content-Length` body, write a fixed-header response.
//! Connections are **persistent** per RFC 9112 defaults: HTTP/1.1
//! requests keep the connection open unless the client sends
//! `Connection: close`, HTTP/1.0 closes unless the client asks for
//! `keep-alive`, and the server caps requests per connection and bounds
//! idle time with the socket read timeout.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Parsing limits: a request head (request line + headers) beyond 16 KiB
/// or a body beyond 1 MiB is rejected before buffering it.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// See [`MAX_HEAD_BYTES`].
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client per RFC (not by us).
    pub method: String,
    /// Request target as sent (path + optional query, query unused).
    pub path: String,
    /// Raw body bytes (`Content-Length` of them).
    pub body: Vec<u8>,
    /// True when the protocol defaults plus any `Connection` header ask
    /// for a persistent connection (HTTP/1.1 without `close`; HTTP/1.0
    /// with `keep-alive`).
    pub keep_alive: bool,
}

/// Why a request could not be parsed, mapped onto the status code the
/// connection handler answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field → 400.
    BadRequest(String),
    /// Head or body beyond the fixed limits → 413.
    TooLarge(String),
    /// Head plus body not complete within the total request deadline
    /// (a slow-loris peer dribbling bytes) → 408.
    TooSlow(String),
    /// Socket error / premature EOF; no response is possible.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::TooSlow(m) => write!(f, "request too slow: {m}"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

/// The total header+body deadline clock. It starts at the **first byte
/// of the request line** — not at construction — so keep-alive idle
/// time between requests (bounded separately by the socket read
/// timeout) never counts against the request. A zero limit disables the
/// deadline.
///
/// The clock is checked after every read, so a dribbling peer is cut
/// off at most one socket-read-timeout past the deadline: the per-read
/// timeout bounds each wait, the clock bounds their sum.
#[derive(Debug)]
struct DeadlineClock {
    limit: Duration,
    started: Option<Instant>,
}

impl DeadlineClock {
    fn new(limit: Duration) -> Self {
        DeadlineClock {
            limit,
            started: None,
        }
    }

    /// Start the clock if this is the first byte, then enforce it.
    fn tick(&mut self) -> Result<(), HttpError> {
        if self.limit.is_zero() {
            return Ok(());
        }
        let started = *self.started.get_or_insert_with(Instant::now);
        if started.elapsed() > self.limit {
            return Err(HttpError::TooSlow(format!(
                "request head+body not complete within {} ms",
                self.limit.as_millis()
            )));
        }
        Ok(())
    }
}

impl std::error::Error for HttpError {}

/// Read one `\r\n`-terminated line (the `\r\n` is stripped; a bare
/// `\n` is tolerated), bounding the total head size via `budget` and
/// the total request time via `clock`.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    clock: &mut DeadlineClock,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::Io(format!(
                    "connection closed mid-line after {:?}",
                    String::from_utf8_lossy(&line)
                )))
            }
            Ok(_) => {}
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
        clock.tick()?;
        if *budget == 0 {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        *budget -= 1;
        match byte[0] {
            b'\n' => break,
            b'\r' => {}
            b => line.push(b),
        }
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))
}

/// Parse one request from a buffered stream. `writer` receives the
/// interim `100 Continue` response when the client sent
/// `Expect: 100-continue` — without it, curl (which adds the header
/// for bodies over 1 KiB) stalls for its expect-timeout before
/// transmitting the body.
///
/// `deadline` bounds the **total** time from the first request byte to
/// the last body byte (slow-loris protection on top of the per-read
/// socket timeout); `Duration::ZERO` disables it. Keep-alive idle time
/// before the first byte never counts.
pub fn read_request(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    deadline: Duration,
) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let mut clock = DeadlineClock::new(deadline);
    let request_line = read_line(reader, &mut budget, &mut clock)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut content_length = 0usize;
    let mut expect_continue = false;
    // Persistence default per protocol version (RFC 9112 §9.3).
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let line = read_line(reader, &mut budget, &mut clock)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
        } else if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::BadRequest(format!(
                "unsupported transfer-encoding {value:?}"
            )));
        } else if name == "expect" && value.eq_ignore_ascii_case("100-continue") {
            expect_continue = true;
        } else if name == "connection" {
            // Comma-separated options; `close` wins over everything.
            for opt in value.split(',') {
                let opt = opt.trim();
                if opt.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if opt.eq_ignore_ascii_case("keep-alive") && version == "HTTP/1.0" {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }
    if expect_continue && content_length > 0 {
        writer
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| writer.flush())
            .map_err(|e| HttpError::Io(format!("writing 100 Continue: {e}")))?;
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        // Chunked (not read_exact) so the deadline clock runs between
        // reads: a peer dribbling body bytes is cut off at the deadline
        // instead of resetting the per-read timeout with each byte.
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(HttpError::Io(format!(
                    "connection closed after {filled} of {content_length} body bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) => {
                return Err(HttpError::Io(format!(
                    "reading {content_length}-byte body: {e}"
                )))
            }
        }
        clock.tick()?;
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    })
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render a complete response frame (head + body) into bytes.
/// `retry_after` adds a `Retry-After: <secs>` header (shed responses
/// carry it so retrying clients know when to come back); the body bytes
/// are identical regardless of the header set (the offline/online
/// byte-parity pin compares bodies). Rendering separately from writing
/// lets the chaos layer tear a frame at an exact byte offset.
pub fn render_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
) -> Vec<u8> {
    render_response_tagged(status, body, keep_alive, retry_after, None)
}

/// Optional response headers beyond the fixed set. Every tag is a
/// header only — the body bytes are identical whatever the tag set
/// (the offline/online byte-parity pin compares bodies).
#[derive(Debug, Clone, Default)]
pub struct ResponseTags<'a> {
    /// `X-Gced-Request-Id`: the flight recorder's lookup key, echoed so
    /// clients can correlate a response with its recorded span tree
    /// under `GET /debug/requests/{id}`.
    pub request_id: Option<u64>,
    /// `X-Gced-Evidence-Id`: the durable evidence id of a distillation
    /// (replayable via `GET /v1/evidence/{id}`).
    pub evidence_id: Option<&'a str>,
    /// `X-Gced-Cache`: `"hit"` or `"miss"` on cache-probed responses.
    pub cache: Option<&'static str>,
}

/// [`render_response`] plus the server-assigned `X-Gced-Request-Id`
/// header when `request_id` is present. See [`render_response_with`].
pub fn render_response_tagged(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
    request_id: Option<u64>,
) -> Vec<u8> {
    render_response_with(
        status,
        body,
        keep_alive,
        retry_after,
        &ResponseTags {
            request_id,
            ..ResponseTags::default()
        },
    )
}

/// [`render_response`] plus the optional [`ResponseTags`] headers. The
/// body bytes stay identical whatever the header set.
pub fn render_response_with(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
    tags: &ResponseTags<'_>,
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    );
    if let Some(secs) = retry_after {
        out.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if let Some(id) = tags.request_id {
        out.push_str(&format!("X-Gced-Request-Id: {id}\r\n"));
    }
    if let Some(eid) = tags.evidence_id {
        out.push_str(&format!("X-Gced-Evidence-Id: {eid}\r\n"));
    }
    if let Some(cache) = tags.cache {
        out.push_str(&format!("X-Gced-Cache: {cache}\r\n"));
    }
    out.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Write a complete JSON response (no `Retry-After`).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_retry(stream, status, body, keep_alive, None)
}

/// Write a complete JSON response with an optional `Retry-After`.
pub fn write_response_retry(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, body, keep_alive, retry_after))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(
            &mut BufReader::new(raw.as_bytes()),
            &mut std::io::sink(),
            Duration::ZERO,
        )
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let raw = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nhi";
        let mut interim = Vec::new();
        let req = read_request(
            &mut BufReader::new(raw.as_bytes()),
            &mut interim,
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(req.body, b"hi");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        // No body, no interim response.
        let raw = "GET /x HTTP/1.1\r\nExpect: 100-continue\r\n\r\n";
        let mut interim = Vec::new();
        read_request(
            &mut BufReader::new(raw.as_bytes()),
            &mut interim,
            Duration::ZERO,
        )
        .unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /v1/distill HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/distill");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_persistence_follows_rfc_defaults() {
        // HTTP/1.1 defaults to keep-alive …
        assert!(parse("GET /x HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        // … unless the client says close (any casing, in a list).
        assert!(
            !parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse("GET /x HTTP/1.1\r\nConnection: Keep-Alive, CLOSE\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        // HTTP/1.0 defaults to close unless keep-alive is requested.
        assert!(!parse("GET /x HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse("POST /x HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nhi").unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let req = parse("GET /healthz HTTP/1.0\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_bad_content_length_and_chunked() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_without_buffering_it() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn retry_after_header_is_emitted_only_when_asked() {
        let text = String::from_utf8(render_response(503, "{}", true, Some(1))).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"));

        let text = String::from_utf8(render_response(503, "{}", true, None)).unwrap();
        assert!(!text.contains("Retry-After"), "{text}");
    }

    #[test]
    fn request_id_header_is_emitted_only_when_asked() {
        let text =
            String::from_utf8(render_response_tagged(200, "{}", true, None, Some(7))).unwrap();
        assert!(text.contains("X-Gced-Request-Id: 7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"));
        let text = String::from_utf8(render_response_tagged(200, "{}", true, None, None)).unwrap();
        assert!(!text.contains("X-Gced-Request-Id"), "{text}");
        // Tagging never changes the body bytes.
        assert_eq!(
            render_response(200, "{\"x\":1}", false, None)
                .split(|&b| b == b'\n')
                .next_back()
                .unwrap(),
            render_response_tagged(200, "{\"x\":1}", false, None, Some(9))
                .split(|&b| b == b'\n')
                .next_back()
                .unwrap(),
        );
    }

    #[test]
    fn evidence_and_cache_headers_never_change_the_body() {
        let tags = ResponseTags {
            request_id: Some(3),
            evidence_id: Some("0123456789abcdef0123456789abcdef"),
            cache: Some("hit"),
        };
        let text = String::from_utf8(render_response_with(200, "{}", true, None, &tags)).unwrap();
        assert!(
            text.contains("X-Gced-Evidence-Id: 0123456789abcdef0123456789abcdef\r\n"),
            "{text}"
        );
        assert!(text.contains("X-Gced-Cache: hit\r\n"), "{text}");
        assert!(text.contains("X-Gced-Request-Id: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"));
        let bare = String::from_utf8(render_response_with(
            200,
            "{}",
            true,
            None,
            &ResponseTags::default(),
        ))
        .unwrap();
        assert!(!bare.contains("X-Gced-Evidence-Id"), "{bare}");
        assert!(!bare.contains("X-Gced-Cache"), "{bare}");
        // Tagging never changes the body bytes.
        assert_eq!(
            text.rsplit("\r\n\r\n").next().unwrap(),
            bare.rsplit("\r\n\r\n").next().unwrap()
        );
    }

    #[test]
    fn deadline_cuts_off_a_dribbling_request() {
        // A reader that yields one byte per read, sleeping in between:
        // the per-read progress keeps resetting any per-read timeout,
        // but the total-deadline clock still fires.
        struct Dribbler {
            bytes: Vec<u8>,
            at: usize,
        }
        impl std::io::Read for Dribbler {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.at >= self.bytes.len() {
                    return Ok(0);
                }
                std::thread::sleep(Duration::from_millis(5));
                buf[0] = self.bytes[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 400\r\n\r\n".to_vec();
        let mut reader = BufReader::new(Dribbler { bytes: raw, at: 0 });
        let err =
            read_request(&mut reader, &mut std::io::sink(), Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, HttpError::TooSlow(_)), "{err}");
    }

    #[test]
    fn zero_deadline_disables_the_clock() {
        // Same request parsed with no deadline succeeds however long the
        // reads take (the in-memory reader is instant; this pins the
        // ZERO-means-disabled contract rather than timing).
        let req = parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!(req.body, b"hi");
    }
}
