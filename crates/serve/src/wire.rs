//! The `/v1/distill` JSON wire format.
//!
//! Requests and responses ride the workspace's serde-free JSON codec
//! (`gced_datasets::json`). [`render_distillation`] is the **canonical
//! byte rendering** of a [`Distillation`]: the server body and the
//! offline `gced distill` subcommand both call it, which is what makes
//! the served-vs-offline byte-parity guarantee (and the CI `cmp` smoke
//! check) possible. Keep it free of anything request- or time-dependent.

use gced::{DistillError, Distillation};
use gced_datasets::json::{self, Json};

/// One distillation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistillRequest {
    /// The question being explained.
    pub question: String,
    /// The (gold or predicted) answer.
    pub answer: String,
    /// The context to distill the evidence from.
    pub context: String,
}

/// Parse a `POST /v1/distill` body: an object with string fields
/// `question`, `answer`, and `context`.
pub fn parse_request(body: &[u8]) -> Result<DistillRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let root = json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let field = |key: &str| -> Result<String, String> {
        root.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    Ok(DistillRequest {
        question: field("question")?,
        answer: field("answer")?,
        context: field("context")?,
    })
}

/// Serialize a [`DistillRequest`] (the tiny client and the load bench
/// post exactly what [`parse_request`] reads).
pub fn render_request(req: &DistillRequest) -> String {
    let mut out =
        String::with_capacity(req.question.len() + req.answer.len() + req.context.len() + 64);
    out.push_str("{\"question\":");
    json::push_string(&mut out, &req.question);
    out.push_str(",\"answer\":");
    json::push_string(&mut out, &req.answer);
    out.push_str(",\"context\":");
    json::push_string(&mut out, &req.context);
    out.push('}');
    out
}

/// Canonical response body for one successful distillation, carrying
/// its durable evidence id (the hex-rendered request fingerprint; see
/// `gced_store::evidence_id`). The id is a pure function of the
/// request, so the server and offline `gced distill` derive identical
/// ids — the byte-parity guarantee extends to `GET /v1/evidence/{id}`
/// replays.
pub fn render_distillation_with_id(evidence_id: &str, d: &Distillation) -> String {
    let mut out = String::with_capacity(560);
    out.push_str("{\"evidence_id\":");
    json::push_string(&mut out, evidence_id);
    out.push(',');
    push_distillation_fields(&mut out, d);
    out
}

/// Canonical response body for one successful distillation (no
/// evidence id — the form stored offline artifacts used before ids
/// existed; the server always renders through
/// [`render_distillation_with_id`]).
pub fn render_distillation(d: &Distillation) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    push_distillation_fields(&mut out, d);
    out
}

fn push_distillation_fields(out: &mut String, d: &Distillation) {
    out.push_str("\"evidence\":");
    json::push_string(out, &d.evidence);
    out.push_str(",\"evidence_tokens\":[");
    for (i, t) in d.evidence_tokens.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_string(out, t);
    }
    out.push_str("],\"scores\":{\"informativeness\":");
    json::push_f64(out, d.scores.informativeness);
    out.push_str(",\"conciseness\":");
    json::push_f64(out, d.scores.conciseness);
    out.push_str(",\"readability\":");
    json::push_f64(out, d.scores.readability);
    out.push_str(",\"hybrid\":");
    json::push_f64(out, d.scores.hybrid);
    out.push_str("},\"word_reduction\":");
    json::push_f64(out, d.word_reduction);
    out.push_str(",\"aos\":");
    json::push_string(out, &d.aos_text);
    out.push('}');
}

/// Error body: `{"error": "..."}`.
pub fn render_error(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 12);
    out.push_str("{\"error\":");
    json::push_string(&mut out, message);
    out.push('}');
    out
}

/// Map a per-item pipeline error onto its wire message (stable: part of
/// the response contract).
pub fn distill_error_message(e: &DistillError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_the_codec() {
        let req = DistillRequest {
            question: "Which team \"won\"?".to_string(),
            answer: "Denver Broncos".to_string(),
            context: "Multi-byte: é 😀 — and\nnewlines\ttoo.".to_string(),
        };
        let body = render_request(&req);
        assert_eq!(parse_request(body.as_bytes()).unwrap(), req);
    }

    #[test]
    fn missing_fields_are_rejected_by_name() {
        let err = parse_request(b"{\"question\":\"q\",\"answer\":\"a\"}").unwrap_err();
        assert!(err.contains("context"), "{err}");
        let err =
            parse_request(b"{\"question\":1,\"answer\":\"a\",\"context\":\"c\"}").unwrap_err();
        assert!(err.contains("question"), "{err}");
        assert!(parse_request(b"not json").is_err());
        assert!(parse_request(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn id_bearing_body_is_the_canonical_body_plus_a_leading_id() {
        let d = Distillation {
            evidence: "the broncos won".to_string(),
            evidence_tokens: vec!["the".into(), "broncos".into(), "won".into()],
            scores: gced::EvidenceScores {
                informativeness: 0.5,
                conciseness_raw: 0.1,
                readability_raw: 0.2,
                conciseness: 0.3,
                readability: 0.4,
                hybrid: 0.45,
            },
            aos_text: "the broncos won.".to_string(),
            word_reduction: 0.785,
            trace: Default::default(),
        };
        let plain = render_distillation(&d);
        let id = "0123456789abcdef0123456789abcdef";
        let with_id = render_distillation_with_id(id, &d);
        assert_eq!(
            with_id,
            format!("{{\"evidence_id\":\"{id}\",{}", &plain[1..]),
            "id prefixes the otherwise-unchanged canonical fields"
        );
        let root = json::parse(&with_id).unwrap();
        assert_eq!(root.get("evidence_id").and_then(Json::as_str), Some(id));
    }

    #[test]
    fn error_body_escapes_payload() {
        let body = render_error("bad \"input\"\n");
        let root = gced_datasets::json::parse(&body).unwrap();
        assert_eq!(
            root.get("error").and_then(Json::as_str),
            Some("bad \"input\"\n")
        );
    }
}
