//! The serve flight recorder: a bounded in-memory history of request
//! span trees, served back over `GET /debug/requests`.
//!
//! Every traced `/v1/distill` request that rode a batch leaves one
//! [`RecordedRequest`]: the server-assigned id (echoed to the client as
//! `X-Gced-Request-Id`), its outcome, its queue wait, and the span tree
//! the batcher captured around its distillation. Two bounded retention
//! classes keep memory flat however long the server runs:
//!
//! * a **recent ring** holding the last `recent_cap` requests, and
//! * a **slow keep** holding the `slow_cap` slowest requests seen so
//!   far (ranked by queue wait + distill time), so the requests most
//!   worth debugging survive after the ring has cycled past them.
//!
//! Listings are sorted by request id — a deterministic order for a
//! given request sequence — and trees render through
//! [`SpanNode::render_json`], whose non-timing fields (span names,
//! nesting, counters) are a pure function of the request input.

use gced_obs::SpanNode;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default recent-ring capacity.
pub const DEFAULT_RECENT: usize = 64;
/// Default slow-keep capacity.
pub const DEFAULT_SLOW: usize = 8;

/// One traced request held by the recorder.
#[derive(Debug, Clone)]
pub struct RecordedRequest {
    /// Server-assigned id (the `X-Gced-Request-Id` response header).
    pub id: u64,
    /// Did the distillation succeed (HTTP 200)?
    pub ok: bool,
    /// Time the request waited in the batch queue, ns.
    pub queue_ns: u64,
    /// Queue wait plus distill time, ns — the slow-keep ranking key.
    pub total_ns: u64,
    /// The request's span tree: rooted at `batch.coalesce` for
    /// pipeline-served requests, at `cache.probe` for response-cache
    /// hits (which never reach a batch).
    pub tree: SpanNode,
}

#[derive(Debug, Default)]
struct Inner {
    recent: VecDeque<RecordedRequest>,
    slow: Vec<RecordedRequest>,
    recorded_total: u64,
}

/// Bounded recent + slowest retention of traced requests.
#[derive(Debug)]
pub struct FlightRecorder {
    recent_cap: usize,
    slow_cap: usize,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder keeping the last `recent_cap` and the slowest
    /// `slow_cap` requests (both clamped to at least 1).
    pub fn new(recent_cap: usize, slow_cap: usize) -> Self {
        FlightRecorder {
            recent_cap: recent_cap.max(1),
            slow_cap: slow_cap.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admit one traced request.
    pub fn record(&self, req: RecordedRequest) {
        let mut inner = self.lock();
        inner.recorded_total += 1;
        if inner.slow.len() < self.slow_cap {
            inner.slow.push(req.clone());
        } else if let Some(fastest) = inner
            .slow
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.total_ns)
            .map(|(i, _)| i)
        {
            if req.total_ns > inner.slow[fastest].total_ns {
                inner.slow[fastest] = req.clone();
            }
        }
        inner.recent.push_back(req);
        while inner.recent.len() > self.recent_cap {
            inner.recent.pop_front();
        }
    }

    /// Requests ever recorded (admitted, whether still retained or not).
    pub fn recorded_total(&self) -> u64 {
        self.lock().recorded_total
    }

    /// Look up a retained request by id (recent ring first, then the
    /// slow keep).
    pub fn get(&self, id: u64) -> Option<RecordedRequest> {
        let inner = self.lock();
        inner
            .recent
            .iter()
            .chain(inner.slow.iter())
            .find(|r| r.id == id)
            .cloned()
    }

    /// The `GET /debug/requests` body: every retained request as a
    /// summary line, sorted by id.
    pub fn list_json(&self) -> String {
        let inner = self.lock();
        let slow_ids: Vec<u64> = inner.slow.iter().map(|r| r.id).collect();
        let mut all: Vec<&RecordedRequest> = inner.recent.iter().chain(inner.slow.iter()).collect();
        all.sort_by_key(|r| r.id);
        all.dedup_by_key(|r| r.id);
        let mut out = String::with_capacity(256);
        out.push_str("{\"recorded_total\":");
        out.push_str(&inner.recorded_total.to_string());
        out.push_str(",\"requests\":[");
        for (i, r) in all.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"ok\":{},\"slow\":{},\"queue_ns\":{},\"total_ns\":{}}}",
                r.id,
                r.ok,
                slow_ids.contains(&r.id),
                r.queue_ns,
                r.total_ns,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The `GET /debug/requests/{id}` body: the full span tree. With
    /// `include_timings` false only the deterministic fields render —
    /// what the cross-run determinism test compares.
    pub fn get_json(&self, id: u64, include_timings: bool) -> Option<String> {
        let req = self.get(id)?;
        let mut out = String::with_capacity(512);
        out.push_str(&format!("{{\"id\":{},\"ok\":{}", req.id, req.ok));
        if include_timings {
            out.push_str(&format!(
                ",\"queue_ns\":{},\"total_ns\":{}",
                req.queue_ns, req.total_ns
            ));
        }
        out.push_str(",\"spans\":");
        out.push_str(&req.tree.render_json(include_timings));
        out.push('}');
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, total_ns: u64) -> RecordedRequest {
        RecordedRequest {
            id,
            ok: true,
            queue_ns: 10,
            total_ns,
            tree: SpanNode::synthetic("batch.coalesce", 0, total_ns),
        }
    }

    #[test]
    fn recent_ring_evicts_oldest_but_slow_keep_survives() {
        let rec = FlightRecorder::new(2, 1);
        rec.record(req(1, 900)); // the slowest — must outlive the ring
        rec.record(req(2, 10));
        rec.record(req(3, 20));
        rec.record(req(4, 30));
        // Ring holds 3, 4; the slow keep still holds 1; 2 is gone.
        assert!(rec.get(1).is_some(), "slow request kept past eviction");
        assert!(rec.get(2).is_none(), "fast evicted request dropped");
        assert!(rec.get(3).is_some());
        assert!(rec.get(4).is_some());
        assert_eq!(rec.recorded_total(), 4);
    }

    #[test]
    fn slow_keep_tracks_the_slowest_seen() {
        let rec = FlightRecorder::new(1, 2);
        rec.record(req(1, 100));
        rec.record(req(2, 300));
        rec.record(req(3, 200)); // slower than 1: replaces it
        rec.record(req(4, 50)); // faster than both kept: ignored
        let listed = rec.list_json();
        assert!(listed.contains("\"id\":2,\"ok\":true,\"slow\":true"));
        assert!(listed.contains("\"id\":3,\"ok\":true,\"slow\":true"));
        assert!(!listed.contains("\"id\":1,"));
    }

    #[test]
    fn listing_is_sorted_by_id_without_duplicates() {
        let rec = FlightRecorder::new(4, 2);
        rec.record(req(7, 300));
        rec.record(req(3, 100));
        rec.record(req(5, 200));
        let listed = rec.list_json();
        let i3 = listed.find("\"id\":3").expect("id 3 listed");
        let i5 = listed.find("\"id\":5").expect("id 5 listed");
        let i7 = listed.find("\"id\":7").expect("id 7 listed");
        assert!(i3 < i5 && i5 < i7, "sorted by id: {listed}");
        // 7 sits in both the ring and the slow keep; listed once.
        assert_eq!(listed.matches("\"id\":7").count(), 1);
        assert_eq!(listed, rec.list_json(), "byte-stable");
    }

    #[test]
    fn get_json_renders_with_and_without_timings() {
        let rec = FlightRecorder::new(4, 1);
        rec.record(req(9, 500));
        let full = rec.get_json(9, true).expect("recorded");
        assert!(full.contains("\"queue_ns\":10"));
        assert!(full.contains("\"total_ns\":500"));
        assert!(full.contains("\"spans\":{\"name\":\"batch.coalesce\""));
        let bare = rec.get_json(9, false).expect("recorded");
        assert!(!bare.contains("_ns\""), "{bare}");
        assert_eq!(
            bare,
            "{\"id\":9,\"ok\":true,\"spans\":{\"name\":\"batch.coalesce\",\
             \"counters\":{},\"children\":[]}}"
        );
        assert!(rec.get_json(10, true).is_none());
    }
}
