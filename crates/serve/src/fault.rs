//! Deterministic fault injection ("chaos") for the serve stack.
//!
//! A [`FaultPlan`] arms named injection **sites** in the server's hot
//! paths — latency before a coalesced batch, a panic inside
//! `distill_batch`, the batcher thread dying outright, a torn
//! (partial) socket write, a stalled socket read — each with a seeded
//! Bernoulli rate and an optional cap on total fires. The decision for
//! the *n*-th occurrence of a site is a pure function of
//! `(seed, site, n)`, so a plan replays identically across runs no
//! matter how threads interleave: occurrence numbers are handed out by
//! one atomic counter per site, and whichever thread draws occurrence
//! `n` gets the same verdict every time.
//!
//! The chaos suite (`tests/serve_chaos.rs`) and the CI `chaos-smoke`
//! job drive servers under these plans and assert the containment
//! invariants: no waiting connection hangs, surviving responses stay
//! byte-identical to offline output, the shed/panic counters decompose
//! exactly, and graceful drain still completes.
//!
//! The decision logic is compiled in via the `chaos` cargo feature (a
//! default feature of this crate; build with `--no-default-features`
//! for a binary in which every [`FaultPlan::fire`] call is a constant
//! `None`). Parsing and the plan type are always available so
//! configuration shapes do not change with the feature.

use std::sync::atomic::{AtomicU64, Ordering};

/// True when this build can actually fire faults (the `chaos` feature).
pub const ENABLED: bool = cfg!(feature = "chaos");

/// A named injection site in the serve stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Sleep `arg_ms` on the batcher thread before running a batch.
    PreBatchDelay,
    /// Panic inside the (caught) `distill_batch` call: the whole batch
    /// answers 500, the batcher thread survives.
    BatchPanic,
    /// Panic *outside* the catch: kills the batcher thread itself,
    /// exercising the server's dead-batcher restart path.
    BatcherKill,
    /// Write only a prefix of the rendered response, then break the
    /// connection (a torn write mid-frame).
    TornWrite,
    /// Sleep `arg_ms` before reading a request off a connection.
    ReadStall,
}

impl Site {
    /// Every site, in spec/rendering order.
    pub const ALL: [Site; 5] = [
        Site::PreBatchDelay,
        Site::BatchPanic,
        Site::BatcherKill,
        Site::TornWrite,
        Site::ReadStall,
    ];

    /// The spec key naming this site.
    pub fn key(self) -> &'static str {
        match self {
            Site::PreBatchDelay => "pre_batch_delay",
            Site::BatchPanic => "batch_panic",
            Site::BatcherKill => "batcher_kill",
            Site::TornWrite => "torn_write",
            Site::ReadStall => "read_stall",
        }
    }

    fn index(self) -> usize {
        match self {
            Site::PreBatchDelay => 0,
            Site::BatchPanic => 1,
            Site::BatcherKill => 2,
            Site::TornWrite => 3,
            Site::ReadStall => 4,
        }
    }

    /// Per-site salt so sites with equal rates draw independent
    /// decision streams from the same seed.
    #[cfg_attr(not(feature = "chaos"), allow(dead_code))]
    fn salt(self) -> u64 {
        // Distinct odd constants; any fixed values work.
        [
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
            0xd6e8_feb8_6659_fd93,
            0xa076_1d64_78bd_642f,
        ][self.index()]
    }
}

/// One armed site: rate, fire cap, millisecond argument, counters.
#[derive(Debug)]
#[cfg_attr(not(feature = "chaos"), allow(dead_code))]
struct SiteFault {
    /// Fire threshold in u64 space (`rate` mapped onto `0..=u64::MAX`).
    threshold: u64,
    /// Rate as parsed (rendered back out in `/metrics`).
    rate: f64,
    /// Maximum total fires (`u64::MAX` when uncapped).
    max: u64,
    /// Millisecond argument for delay-style sites (0 when unset).
    arg_ms: u64,
    /// Occurrences assigned so far (decision-stream cursor).
    seen: AtomicU64,
    /// Fires so far (observability only; decisions never read it).
    fired: AtomicU64,
}

/// A deterministic fault plan: a seed plus zero or more armed sites.
///
/// Built from a spec string (`--fault-plan` / `GCED_CHAOS`):
///
/// ```text
/// seed=42,batch_panic=1x1,torn_write=0.25,pre_batch_delay=0.5x4:25
/// ```
///
/// Each site entry is `<site>=<rate>[x<max>][:<ms>]` — fire with
/// probability `rate` per occurrence, at most `max` times total,
/// carrying a `ms` argument for the delay sites.
#[derive(Debug, Default)]
pub struct FaultPlan {
    #[cfg_attr(not(feature = "chaos"), allow(dead_code))]
    seed: u64,
    sites: [Option<SiteFault>; 5],
}

impl FaultPlan {
    /// A plan with no armed sites (every `fire` answers `None`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no site is armed.
    pub fn is_empty(&self) -> bool {
        self.sites.iter().all(Option::is_none)
    }

    /// Parse a spec string (see the type docs for the grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("bad fault seed {value:?}"))?;
                continue;
            }
            let site = Site::ALL
                .into_iter()
                .find(|s| s.key() == key)
                .ok_or_else(|| {
                    format!(
                        "unknown fault site {key:?} (expected one of {:?})",
                        Site::ALL.map(Site::key)
                    )
                })?;
            let (rate_part, arg_ms) = match value.split_once(':') {
                Some((r, ms)) => (
                    r,
                    ms.parse()
                        .map_err(|_| format!("{key}: bad millisecond argument {ms:?}"))?,
                ),
                None => (value, 0),
            };
            let (rate_str, max) = match rate_part.split_once('x') {
                Some((r, m)) => (
                    r,
                    m.parse()
                        .map_err(|_| format!("{key}: bad fire cap {m:?}"))?,
                ),
                None => (rate_part, u64::MAX),
            };
            let rate: f64 = rate_str
                .parse()
                .map_err(|_| format!("{key}: bad rate {rate_str:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{key}: rate {rate} outside [0, 1]"));
            }
            if plan.sites[site.index()].is_some() {
                return Err(format!("fault site {key:?} armed twice"));
            }
            plan.sites[site.index()] = Some(SiteFault {
                threshold: rate_to_threshold(rate),
                rate,
                max,
                arg_ms,
                seen: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            });
        }
        Ok(plan)
    }

    /// Record one occurrence of `site` and decide whether the fault
    /// fires. `Some(arg_ms)` means fire (with the site's millisecond
    /// argument); `None` means proceed normally. Deterministic per
    /// occurrence number regardless of which thread asks.
    #[cfg(feature = "chaos")]
    pub fn fire(&self, site: Site) -> Option<u64> {
        let armed = self.sites[site.index()].as_ref()?;
        let n = armed.seen.fetch_add(1, Ordering::Relaxed);
        if !self.decides(site, armed, n) {
            return None;
        }
        // Honor the fire cap deterministically: occurrence n fires only
        // if fewer than `max` earlier occurrences decided to fire. The
        // scan stays cheap because capped sites dry up quickly.
        if armed.max != u64::MAX {
            let earlier_fires = (0..n).filter(|&j| self.decides(site, armed, j)).count() as u64;
            if earlier_fires >= armed.max {
                return None;
            }
        }
        armed.fired.fetch_add(1, Ordering::Relaxed);
        Some(armed.arg_ms)
    }

    /// Chaos-free builds: every site always passes. `#[inline]` so the
    /// call sites cost nothing.
    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    pub fn fire(&self, _site: Site) -> Option<u64> {
        None
    }

    /// The pure per-occurrence decision (no counters involved).
    #[cfg(feature = "chaos")]
    fn decides(&self, site: Site, armed: &SiteFault, n: u64) -> bool {
        if armed.threshold == u64::MAX {
            return true;
        }
        splitmix64(self.seed ^ site.salt() ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d))
            < armed.threshold
    }

    /// Render the plan's live counters as a JSON object for `/metrics`:
    /// `{"seed":N,"sites":{"batch_panic":{"rate":…,"seen":…,"fired":…},…}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"sites\":{");
        let mut first = true;
        for site in Site::ALL {
            let Some(armed) = &self.sites[site.index()] else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(site.key());
            out.push_str("\":{\"rate\":");
            gced_datasets::json::push_f64(&mut out, armed.rate);
            out.push_str(",\"seen\":");
            out.push_str(&armed.seen.load(Ordering::Relaxed).to_string());
            out.push_str(",\"fired\":");
            out.push_str(&armed.fired.load(Ordering::Relaxed).to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Map a rate in `[0, 1]` onto a u64 comparison threshold.
fn rate_to_threshold(rate: f64) -> u64 {
    if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

/// splitmix64 — the same finalizer the shard seeder uses.
#[cfg(feature = "chaos")]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan =
            FaultPlan::parse("seed=42, batch_panic=1x1, torn_write=0.25, pre_batch_delay=0.5x4:25")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert!(!plan.is_empty());
        let delay = plan.sites[Site::PreBatchDelay.index()].as_ref().unwrap();
        assert_eq!(delay.arg_ms, 25);
        assert_eq!(delay.max, 4);
        assert!((delay.rate - 0.5).abs() < 1e-12);
        let torn = plan.sites[Site::TornWrite.index()].as_ref().unwrap();
        assert_eq!(torn.max, u64::MAX);
        assert_eq!(torn.arg_ms, 0);
        // The empty spec is a valid no-op plan.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("seed=7").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "nonsense",
            "unknown_site=1",
            "batch_panic=2.0",
            "batch_panic=-0.1",
            "batch_panic=abc",
            "batch_panic=0.5xq",
            "read_stall=0.5:ms",
            "seed=notanumber",
            "batch_panic=1,batch_panic=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn decisions_are_deterministic_per_occurrence() {
        let spec = "seed=11,torn_write=0.5";
        let a = FaultPlan::parse(spec).unwrap();
        let b = FaultPlan::parse(spec).unwrap();
        let fires_a: Vec<bool> = (0..256)
            .map(|_| a.fire(Site::TornWrite).is_some())
            .collect();
        let fires_b: Vec<bool> = (0..256)
            .map(|_| b.fire(Site::TornWrite).is_some())
            .collect();
        assert_eq!(fires_a, fires_b, "same seed, same decision stream");
        let n = fires_a.iter().filter(|&&f| f).count();
        assert!(
            (64..192).contains(&n),
            "rate 0.5 over 256 draws fired {n} times"
        );
        // A different seed draws a different stream.
        let c = FaultPlan::parse("seed=12,torn_write=0.5").unwrap();
        let fires_c: Vec<bool> = (0..256)
            .map(|_| c.fire(Site::TornWrite).is_some())
            .collect();
        assert_ne!(fires_a, fires_c);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn fire_cap_and_rate_one_are_exact() {
        let plan = FaultPlan::parse("seed=3,batch_panic=1x2").unwrap();
        let fires: Vec<bool> = (0..16)
            .map(|_| plan.fire(Site::BatchPanic).is_some())
            .collect();
        assert_eq!(
            fires.iter().filter(|&&f| f).count(),
            2,
            "rate 1 x2 fires exactly twice"
        );
        assert!(
            fires[0] && fires[1],
            "rate 1 fires on the first occurrences"
        );
        // Unarmed sites never fire; rate 0 never fires.
        assert!(plan.fire(Site::TornWrite).is_none());
        let zero = FaultPlan::parse("seed=3,read_stall=0:50").unwrap();
        assert!((0..64).all(|_| zero.fire(Site::ReadStall).is_none()));
        // The ms argument rides along on a fire.
        let ms = FaultPlan::parse("seed=3,read_stall=1x1:50").unwrap();
        assert_eq!(ms.fire(Site::ReadStall), Some(50));
    }

    #[test]
    fn render_json_is_valid() {
        let plan = FaultPlan::parse("seed=9,batch_panic=0.5x3,read_stall=1:20").unwrap();
        let text = plan.render_json();
        let root = gced_datasets::json::parse(&text).expect("valid JSON");
        let sites = root.get("sites").expect("sites");
        assert!(sites.get("batch_panic").is_some());
        assert!(sites.get("read_stall").is_some());
        assert!(sites.get("torn_write").is_none());
    }
}
