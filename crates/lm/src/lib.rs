//! # gced-lm — n-gram language model for evidence readability
//!
//! Eq. 3 of the GCED paper scores an evidence's readability by the
//! inverse of its perplexity under a language model (the paper reuses its
//! PLM; here the substitution is an interpolated Kneser–Ney trigram
//! model trained on the corpus of each dataset — see DESIGN.md S3).
//! The property the Grow-and-Clip search needs is that **clipping a
//! constituent mid-phrase raises perplexity** and growing along real
//! syntactic structure lowers it; any well-smoothed n-gram model over the
//! corpus exhibits exactly that.
//!
//! ```
//! use gced_lm::TrigramLm;
//!
//! let corpus: Vec<Vec<String>> = vec![
//!     "the broncos defeated the panthers".split(' ').map(String::from).collect(),
//!     "the panthers lost the game".split(' ').map(String::from).collect(),
//! ];
//! let lm = TrigramLm::train(&corpus);
//! let fluent = lm.perplexity(&["the".into(), "broncos".into(), "defeated".into()]);
//! let garbled = lm.perplexity(&["defeated".into(), "the".into(), "the".into()]);
//! assert!(fluent < garbled);
//! ```

use gced_text::vocab::{Vocab, WordId, UNK};
use std::collections::{HashMap, HashSet};

/// Absolute discount used at every level (standard KN default).
const DISCOUNT: f64 = 0.75;

/// Sentence-start marker id (never produced by the vocabulary).
const BOS: WordId = WordId(u32::MAX);

/// Interpolated Kneser–Ney trigram language model.
#[derive(Debug, Clone)]
pub struct TrigramLm {
    vocab: Vocab,
    /// Raw trigram counts c(u,v,w).
    c3: HashMap<(WordId, WordId, WordId), u64>,
    /// Raw bigram counts c(u,v) over *history* positions (includes BOS).
    c2: HashMap<(WordId, WordId), u64>,
    /// Distinct continuations after history (u,v): N1+(uv·).
    follow2: HashMap<(WordId, WordId), u64>,
    /// Continuation count of bigram (v,w): N1+(·vw).
    cont2: HashMap<(WordId, WordId), u64>,
    /// N1+(·v·) = Σ_w N1+(·vw).
    mid1: HashMap<WordId, u64>,
    /// Distinct continuations after unigram v: N1+(v·).
    follow1: HashMap<WordId, u64>,
    /// Continuation count of unigram w: N1+(·w).
    cont1: HashMap<WordId, u64>,
    /// Total distinct bigram types N1+(··).
    bigram_types: u64,
}

impl TrigramLm {
    /// Train on tokenized, lowercased sentences.
    pub fn train(sentences: &[Vec<String>]) -> Self {
        let mut vocab = Vocab::new();
        let mut c3 = HashMap::new();
        let mut c2 = HashMap::new();
        let mut seen3: HashSet<(WordId, WordId, WordId)> = HashSet::new();
        let mut seen2: HashSet<(WordId, WordId)> = HashSet::new();
        let mut follow2: HashMap<(WordId, WordId), u64> = HashMap::new();
        let mut cont2: HashMap<(WordId, WordId), u64> = HashMap::new();
        let mut follow1: HashMap<WordId, u64> = HashMap::new();
        let mut cont1: HashMap<WordId, u64> = HashMap::new();
        let mut mid1: HashMap<WordId, u64> = HashMap::new();

        for sent in sentences {
            if sent.is_empty() {
                continue;
            }
            let ids: Vec<WordId> = sent.iter().map(|w| vocab.add(w)).collect();
            let padded: Vec<WordId> = std::iter::repeat_n(BOS, 2)
                .chain(ids.iter().copied())
                .collect();
            for i in 2..padded.len() {
                let (u, v, w) = (padded[i - 2], padded[i - 1], padded[i]);
                *c3.entry((u, v, w)).or_insert(0) += 1;
                *c2.entry((u, v)).or_insert(0) += 1;
                if seen3.insert((u, v, w)) {
                    *follow2.entry((u, v)).or_insert(0) += 1;
                }
                if seen2.insert((v, w)) {
                    *cont2.entry((v, w)).or_insert(0) += 1;
                    *cont1.entry(w).or_insert(0) += 1;
                    *mid1.entry(v).or_insert(0) += 1;
                    *follow1.entry(v).or_insert(0) += 1;
                }
            }
        }
        let bigram_types = seen2.len() as u64;
        TrigramLm {
            vocab,
            c3,
            c2,
            follow2,
            cont2,
            mid1,
            follow1,
            cont1,
            bigram_types,
        }
    }

    /// The training vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Smoothed unigram continuation probability. Never zero: additive
    /// smoothing over continuation types gives unseen words mass.
    fn p_uni(&self, w: WordId) -> f64 {
        let cont = self.cont1.get(&w).copied().unwrap_or(0) as f64;
        let v = self.vocab.len() as f64 + 1.0;
        (cont + 0.5) / (self.bigram_types as f64 + 0.5 * v)
    }

    /// Interpolated KN bigram probability P(w | v).
    fn p_bi(&self, v: WordId, w: WordId) -> f64 {
        let mid = self.mid1.get(&v).copied().unwrap_or(0) as f64;
        if mid == 0.0 {
            return self.p_uni(w);
        }
        let cont = self.cont2.get(&(v, w)).copied().unwrap_or(0) as f64;
        let types = self.follow1.get(&v).copied().unwrap_or(0) as f64;
        let disc = (cont - DISCOUNT).max(0.0) / mid;
        let lambda = DISCOUNT * types / mid;
        disc + lambda * self.p_uni(w)
    }

    /// Interpolated KN trigram probability P(w | u, v).
    fn p_tri(&self, u: WordId, v: WordId, w: WordId) -> f64 {
        let hist = self.c2.get(&(u, v)).copied().unwrap_or(0) as f64;
        if hist == 0.0 {
            return self.p_bi(v, w);
        }
        let count = self.c3.get(&(u, v, w)).copied().unwrap_or(0) as f64;
        let types = self.follow2.get(&(u, v)).copied().unwrap_or(0) as f64;
        let disc = (count - DISCOUNT).max(0.0) / hist;
        let lambda = DISCOUNT * types / hist;
        disc + lambda * self.p_bi(v, w)
    }

    /// P(words[i] | words[i-2], words[i-1]) for an arbitrary position of a
    /// word sequence (BOS-padded on the left). Public for diagnostics.
    pub fn word_prob(&self, words: &[String], i: usize) -> f64 {
        let id = |j: isize| -> WordId {
            if j < 0 {
                BOS
            } else {
                self.vocab.get(&words[j as usize])
            }
        };
        let i = i as isize;
        self.p_tri(id(i - 2), id(i - 1), id(i))
    }

    /// Natural-log probability of the full sequence.
    pub fn log_prob(&self, words: &[String]) -> f64 {
        (0..words.len())
            .map(|i| self.word_prob(words, i).max(1e-300).ln())
            .sum()
    }

    /// Intern a word sequence once; repeated scoring then skips the
    /// per-word vocabulary hash lookups.
    pub fn word_ids(&self, words: &[String]) -> Vec<WordId> {
        words.iter().map(|w| self.vocab.get(w)).collect()
    }

    /// `log_prob` over pre-interned ids. Bitwise-identical to
    /// [`TrigramLm::log_prob`] on the source words (same per-position
    /// terms, same left-to-right accumulation).
    pub fn log_prob_ids(&self, ids: &[WordId]) -> f64 {
        let at = |j: isize| if j < 0 { BOS } else { ids[j as usize] };
        (0..ids.len() as isize)
            .map(|i| self.p_tri(at(i - 2), at(i - 1), at(i)).max(1e-300).ln())
            .sum()
    }

    /// Perplexity over pre-interned ids (Eq. 3), bitwise-identical to
    /// [`TrigramLm::perplexity`] on the source words.
    pub fn perplexity_ids(&self, ids: &[WordId]) -> f64 {
        if ids.is_empty() {
            return f64::INFINITY;
        }
        (-self.log_prob_ids(ids) / ids.len() as f64).exp()
    }

    /// Precompute per-position scores of a base sequence so that
    /// rescoring after token removals is incremental
    /// ([`TrigramLm::log_prob_after_removal`]).
    pub fn seq_scores(&self, ids: Vec<WordId>) -> SeqScores {
        let at = |j: isize| if j < 0 { BOS } else { ids[j as usize] };
        let lp: Vec<f64> = (0..ids.len() as isize)
            .map(|i| self.p_tri(at(i - 2), at(i - 1), at(i)).max(1e-300).ln())
            .collect();
        let total = lp.iter().sum();
        SeqScores { ids, lp, total }
    }

    /// Log-probability of the subsequence of `base` obtained by deleting
    /// the (ascending) positions in `removed`.
    ///
    /// **Bitwise-identical** to `log_prob` of the remaining words: terms
    /// are accumulated left to right, and a position whose two
    /// predecessors are unchanged reuses its cached term (the cached
    /// value is itself bitwise-equal to a recomputation). Only positions
    /// inside a trigram window after a removal — at most two per removed
    /// run — are recomputed, so the walk does O(1) hash lookups per
    /// boundary and O(1) adds elsewhere.
    pub fn log_prob_after_removal(&self, base: &SeqScores, removed: &[usize]) -> f64 {
        debug_assert!(
            removed.windows(2).all(|w| w[0] < w[1]),
            "removed must be ascending"
        );
        let mut sum = 0.0f64;
        let mut rm = removed.iter().peekable();
        // Original positions of the previous two *kept* tokens; -1 = BOS.
        let (mut prev1, mut prev2): (isize, isize) = (-1, -1);
        let (mut id1, mut id2) = (BOS, BOS);
        for p in 0..base.ids.len() {
            if rm.peek() == Some(&&p) {
                rm.next();
                continue;
            }
            let pi = p as isize;
            let unchanged = prev1 == pi - 1 && (pi < 2 || prev2 == pi - 2);
            sum += if unchanged {
                base.lp[p]
            } else {
                self.p_tri(id2, id1, base.ids[p]).max(1e-300).ln()
            };
            prev2 = prev1;
            prev1 = pi;
            id2 = id1;
            id1 = base.ids[p];
        }
        sum
    }

    /// O(|removed| + boundaries) estimate of
    /// [`TrigramLm::log_prob_after_removal`] via prefix sums: subtract
    /// the removed terms, then patch the at most two kept positions per
    /// removed run whose trigram context changed. Numerically equal up
    /// to floating-point summation order — use the exact walk wherever
    /// bit-stable argmax decisions matter.
    pub fn log_prob_after_removal_fast(&self, base: &SeqScores, removed: &[usize]) -> f64 {
        debug_assert!(
            removed.windows(2).all(|w| w[0] < w[1]),
            "removed must be ascending"
        );
        let n = base.ids.len();
        let mut sum = base.total;
        for &p in removed {
            sum -= base.lp[p];
        }
        let is_removed = |p: usize| removed.binary_search(&p).is_ok();
        let mut k = 0usize;
        while k < removed.len() {
            // The current contiguous removed run [run_start, run_end].
            let run_start = removed[k];
            let mut run_end = run_start;
            while k + 1 < removed.len() && removed[k + 1] == run_end + 1 {
                k += 1;
                run_end = removed[k];
            }
            k += 1;
            // Context for the first kept position after the run: the two
            // nearest kept tokens before the run (skipping earlier runs).
            let (mut c1, mut c2) = (BOS, BOS);
            let mut found = 0;
            let mut q = run_start;
            while found < 2 && q > 0 {
                q -= 1;
                if !is_removed(q) {
                    if found == 0 {
                        c1 = base.ids[q];
                    } else {
                        c2 = base.ids[q];
                    }
                    found += 1;
                }
            }
            // Patch up to two kept positions after the run; beyond that,
            // the trigram context consists of adjacent kept tokens and
            // the cached term is valid. A position interrupted by the
            // next run is patched by that run instead.
            let mut patched = 0;
            let mut pos = run_end + 1;
            while patched < 2 && pos < n && !is_removed(pos) {
                sum += self.p_tri(c2, c1, base.ids[pos]).max(1e-300).ln() - base.lp[pos];
                c2 = c1;
                c1 = base.ids[pos];
                patched += 1;
                pos += 1;
            }
        }
        sum
    }

    /// Perplexity per Eq. 3: `exp(-log P / L)`. Empty input gives
    /// `f64::INFINITY` (an empty evidence is maximally unreadable).
    pub fn perplexity(&self, words: &[String]) -> f64 {
        if words.is_empty() {
            return f64::INFINITY;
        }
        (-self.log_prob(words) / words.len() as f64).exp()
    }

    /// Readability per Eq. 4: the reciprocal of perplexity.
    pub fn readability(&self, words: &[String]) -> f64 {
        let ppl = self.perplexity(words);
        if ppl.is_finite() && ppl > 0.0 {
            1.0 / ppl
        } else {
            0.0
        }
    }

    /// Perplexity of the subsequence of `base` after deleting the
    /// (ascending) positions in `removed`, via the bit-exact incremental
    /// walk. Empty remainders give `f64::INFINITY`, matching
    /// [`TrigramLm::perplexity`].
    pub fn perplexity_after_removal(&self, base: &SeqScores, removed: &[usize]) -> f64 {
        let remaining = base.len() - removed.len();
        if remaining == 0 {
            return f64::INFINITY;
        }
        (-self.log_prob_after_removal(base, removed) / remaining as f64).exp()
    }

    /// Decompose the fitted model into plain sorted tables
    /// ([`LmParts`]) for serialization. Sorted orders make the encoded
    /// artifact byte-deterministic across runs despite the internal
    /// `HashMap`s.
    pub fn to_parts(&self) -> LmParts {
        fn sorted<K: Ord + Copy>(map: &HashMap<K, u64>) -> Vec<(K, u64)> {
            let mut v: Vec<(K, u64)> = map.iter().map(|(&k, &c)| (k, c)).collect();
            v.sort_unstable_by_key(|&(k, _)| k);
            v
        }
        LmParts {
            words: self
                .vocab
                .iter()
                .map(|(_, w, c)| (w.to_string(), c))
                .collect(),
            c3: sorted(&self.c3),
            c2: sorted(&self.c2),
            follow2: sorted(&self.follow2),
            cont2: sorted(&self.cont2),
            mid1: sorted(&self.mid1),
            follow1: sorted(&self.follow1),
            cont1: sorted(&self.cont1),
            bigram_types: self.bigram_types,
        }
    }

    /// Rebuild a model from [`TrigramLm::to_parts`] output. The result
    /// scores every sequence bitwise-identically to the original: ids,
    /// counts, and continuation tables are restored verbatim and every
    /// probability is a pure function of them.
    pub fn from_parts(parts: LmParts) -> Self {
        TrigramLm {
            vocab: Vocab::from_entries(parts.words.iter().map(|(w, c)| (w.as_str(), *c))),
            c3: parts.c3.into_iter().collect(),
            c2: parts.c2.into_iter().collect(),
            follow2: parts.follow2.into_iter().collect(),
            cont2: parts.cont2.into_iter().collect(),
            mid1: parts.mid1.into_iter().collect(),
            follow1: parts.follow1.into_iter().collect(),
            cont1: parts.cont1.into_iter().collect(),
            bigram_types: parts.bigram_types,
        }
    }

    /// Fraction of words unknown to the model (diagnostic; OOV hurts PPL).
    pub fn oov_rate(&self, words: &[String]) -> f64 {
        if words.is_empty() {
            return 0.0;
        }
        let oov = words.iter().filter(|w| self.vocab.get(w) == UNK).count();
        oov as f64 / words.len() as f64
    }
}

/// A fitted [`TrigramLm`] flattened into plain sorted tables — the
/// serialization interchange form (the fit-cache codec in `gced` turns
/// this into bytes). Word ids are implicit: `words[i]` has id `i + 1`
/// (id 0 is `<unk>`), exactly as [`gced_text::vocab::Vocab`] assigns
/// them during training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmParts {
    /// `(word, count)` in id order (id 1 first).
    pub words: Vec<(String, u64)>,
    /// Trigram counts, sorted by key.
    pub c3: Vec<((WordId, WordId, WordId), u64)>,
    /// History bigram counts, sorted by key.
    pub c2: Vec<((WordId, WordId), u64)>,
    /// Distinct-continuation counts N1+(uv·), sorted by key.
    pub follow2: Vec<((WordId, WordId), u64)>,
    /// Continuation counts N1+(·vw), sorted by key.
    pub cont2: Vec<((WordId, WordId), u64)>,
    /// N1+(·v·), sorted by key.
    pub mid1: Vec<(WordId, u64)>,
    /// N1+(v·), sorted by key.
    pub follow1: Vec<(WordId, u64)>,
    /// N1+(·w), sorted by key.
    pub cont1: Vec<(WordId, u64)>,
    /// Total distinct bigram types.
    pub bigram_types: u64,
}

/// Per-position scores of a base word sequence, the substrate for
/// incremental rescoring after token removals (the Sequential Clip
/// Searching hot path: every candidate clip deletes a subtree from the
/// same base evidence, so everything shared is computed once here).
#[derive(Debug, Clone)]
pub struct SeqScores {
    /// Interned word ids of the base sequence.
    ids: Vec<WordId>,
    /// `lp[i]` = ln P(w_i | w_{i-2}, w_{i-1}), BOS-padded, floored like
    /// [`TrigramLm::log_prob`].
    lp: Vec<f64>,
    /// Σ `lp` (the O(|removed|) fast path starts from the full-sequence
    /// total and subtracts).
    total: f64,
}

impl SeqScores {
    /// Length of the base sequence.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the base sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total log-probability of the full base sequence.
    pub fn total(&self) -> f64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sents(lines: &[&str]) -> Vec<Vec<String>> {
        lines
            .iter()
            .map(|l| l.split(' ').map(String::from).collect())
            .collect()
    }

    fn small_lm() -> TrigramLm {
        TrigramLm::train(&sents(&[
            "the broncos defeated the panthers",
            "the broncos won the title",
            "the panthers lost the game",
            "the team won the championship",
            "the broncos earned the title",
        ]))
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        for i in 0..seq.len() {
            let p = lm.word_prob(&seq, i);
            assert!(p > 0.0 && p <= 1.0, "p = {p}");
        }
    }

    #[test]
    fn trigram_distribution_sums_to_one() {
        let lm = small_lm();
        // Sum P(w | "the", "broncos") over the full vocabulary (+unk).
        let mut total = 0.0;
        let u = lm.vocab.get("the");
        let v = lm.vocab.get("broncos");
        for (id, _, _) in lm.vocab.iter() {
            total += lm.p_tri(u, v, id);
        }
        total += lm.p_tri(u, v, UNK);
        assert!((total - 1.0).abs() < 0.02, "sums to {total}");
    }

    #[test]
    fn fluent_beats_garbled() {
        let lm = small_lm();
        let fluent: Vec<String> = "the broncos won the title"
            .split(' ')
            .map(String::from)
            .collect();
        let garbled: Vec<String> = "title the won broncos the"
            .split(' ')
            .map(String::from)
            .collect();
        assert!(lm.perplexity(&fluent) < lm.perplexity(&garbled));
    }

    #[test]
    fn in_domain_beats_oov() {
        let lm = small_lm();
        let seen: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let unseen: Vec<String> = "zebras quantize kumquats"
            .split(' ')
            .map(String::from)
            .collect();
        assert!(lm.perplexity(&seen) < lm.perplexity(&unseen));
        assert_eq!(lm.oov_rate(&unseen), 1.0);
        assert_eq!(lm.oov_rate(&seen), 0.0);
    }

    #[test]
    fn readability_is_reciprocal_of_perplexity() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let ppl = lm.perplexity(&seq);
        assert!((lm.readability(&seq) - 1.0 / ppl).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_edge_cases() {
        let lm = small_lm();
        assert!(lm.perplexity(&[]).is_infinite());
        assert_eq!(lm.readability(&[]), 0.0);
        assert_eq!(lm.oov_rate(&[]), 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = sents(&["a b c", "b c d", "c d e"]);
        let lm1 = TrigramLm::train(&corpus);
        let lm2 = TrigramLm::train(&corpus);
        let seq: Vec<String> = "a b c d e".split(' ').map(String::from).collect();
        assert_eq!(lm1.log_prob(&seq), lm2.log_prob(&seq));
    }

    #[test]
    fn empty_corpus_is_usable() {
        let lm = TrigramLm::train(&[]);
        let seq: Vec<String> = vec!["anything".into()];
        let p = lm.perplexity(&seq);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn empty_sentences_are_skipped() {
        let lm = TrigramLm::train(&[vec![], vec!["a".into(), "b".into()]]);
        assert!(lm.vocab().contains("a"));
    }

    #[test]
    fn more_context_helps() {
        // The trigram "broncos defeated the" is seen; after training, the
        // model should prefer the attested continuation over an unattested
        // in-vocabulary one.
        let lm = small_lm();
        let attested: Vec<String> = "the broncos defeated the panthers"
            .split(' ')
            .map(String::from)
            .collect();
        let swapped: Vec<String> = "the broncos defeated the game"
            .split(' ')
            .map(String::from)
            .collect();
        assert!(lm.log_prob(&attested) > lm.log_prob(&swapped));
    }

    #[test]
    fn id_paths_match_string_paths_bitwise() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos defeated the panthers zebra"
            .split(' ')
            .map(String::from)
            .collect();
        let ids = lm.word_ids(&seq);
        assert_eq!(lm.log_prob(&seq), lm.log_prob_ids(&ids));
        assert_eq!(lm.perplexity(&seq), lm.perplexity_ids(&ids));
        assert!(lm.perplexity_ids(&[]).is_infinite());
    }

    #[test]
    fn removal_walk_is_bitwise_exact() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won the title in the final game"
            .split(' ')
            .map(String::from)
            .collect();
        let base = lm.seq_scores(lm.word_ids(&seq));
        for removed in [
            vec![],
            vec![0],
            vec![0, 1],
            vec![3],
            vec![2, 3, 4],
            vec![0, 4, 8],
            vec![1, 2, 6, 7],
            (0..seq.len()).collect::<Vec<_>>(),
        ] {
            let remaining: Vec<String> = seq
                .iter()
                .enumerate()
                .filter(|(i, _)| !removed.contains(i))
                .map(|(_, w)| w.clone())
                .collect();
            let direct = lm.log_prob(&remaining);
            let incremental = lm.log_prob_after_removal(&base, &removed);
            assert_eq!(direct, incremental, "removal {removed:?}");
            if !remaining.is_empty() {
                assert_eq!(
                    lm.perplexity(&remaining),
                    lm.perplexity_after_removal(&base, &removed)
                );
            } else {
                assert!(lm.perplexity_after_removal(&base, &removed).is_infinite());
            }
        }
    }

    #[test]
    fn fast_removal_matches_exact_closely() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won the title in the final game of the year"
            .split(' ')
            .map(String::from)
            .collect();
        let base = lm.seq_scores(lm.word_ids(&seq));
        for removed in [
            vec![0],
            vec![5],
            vec![2, 3],
            vec![1, 6, 7, 10],
            vec![0, 2, 4, 6, 8],
        ] {
            let exact = lm.log_prob_after_removal(&base, &removed);
            let fast = lm.log_prob_after_removal_fast(&base, &removed);
            assert!(
                (exact - fast).abs() < 1e-9,
                "removal {removed:?}: exact {exact} vs fast {fast}"
            );
        }
    }

    #[test]
    fn seq_scores_totals() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let base = lm.seq_scores(lm.word_ids(&seq));
        assert_eq!(base.len(), 3);
        assert!(!base.is_empty());
        assert!((base.total() - lm.log_prob(&seq)).abs() < 1e-12);
    }

    #[test]
    fn parts_roundtrip_is_bitwise_identical() {
        let lm = small_lm();
        let parts = lm.to_parts();
        // Sorted tables make the interchange form deterministic.
        assert_eq!(parts, lm.to_parts());
        let back = TrigramLm::from_parts(parts);
        for line in [
            "the broncos won the title",
            "title the won broncos the",
            "zebras quantize kumquats",
            "the",
        ] {
            let seq: Vec<String> = line.split(' ').map(String::from).collect();
            assert_eq!(lm.log_prob(&seq).to_bits(), back.log_prob(&seq).to_bits());
            assert_eq!(
                lm.perplexity(&seq).to_bits(),
                back.perplexity(&seq).to_bits()
            );
        }
        assert_eq!(back.vocab().len(), lm.vocab().len());
        assert_eq!(back.oov_rate(&["zzz".to_string()]), 1.0);
    }

    #[test]
    fn perplexity_positive_for_any_input() {
        let lm = small_lm();
        for seq in [
            vec!["the".to_string()],
            vec!["xyzzy".to_string(), "the".to_string()],
        ] {
            let p = lm.perplexity(&seq);
            assert!(p > 0.0 && p.is_finite());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn word_strategy() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "the".to_string(),
            "broncos".to_string(),
            "panthers".to_string(),
            "won".to_string(),
            "defeated".to_string(),
            "title".to_string(),
            "game".to_string(),
        ])
    }

    proptest! {
        /// Perplexity is finite and positive for any non-empty sequence
        /// over a mixed seen/unseen vocabulary.
        #[test]
        fn ppl_finite_positive(seq in prop::collection::vec(word_strategy(), 1..12)) {
            let lm = TrigramLm::train(&[
                vec!["the".into(), "broncos".into(), "won".into(), "the".into(), "title".into()],
            ]);
            let ppl = lm.perplexity(&seq);
            prop_assert!(ppl.is_finite());
            prop_assert!(ppl > 0.0);
        }

        /// Incremental removal scoring is bitwise-exact against a full
        /// recomputation for arbitrary sequences and removal sets.
        #[test]
        fn removal_walk_exact_on_random_inputs(
            seq in prop::collection::vec(word_strategy(), 1..14),
            mask in prop::collection::vec(0usize..2, 1..14),
        ) {
            let lm = TrigramLm::train(&[
                vec!["the".into(), "broncos".into(), "won".into(), "the".into(), "title".into()],
                vec!["the".into(), "panthers".into(), "defeated".into(), "the".into(), "game".into()],
            ]);
            let removed: Vec<usize> = (0..seq.len())
                .filter(|&i| mask.get(i).copied().unwrap_or(0) == 1)
                .collect();
            let base = lm.seq_scores(lm.word_ids(&seq));
            let remaining: Vec<String> = seq
                .iter()
                .enumerate()
                .filter(|(i, _)| !removed.contains(i))
                .map(|(_, w)| w.clone())
                .collect();
            let direct = lm.log_prob(&remaining);
            let incremental = lm.log_prob_after_removal(&base, &removed);
            prop_assert!(direct == incremental, "removal {:?}: {} vs {}", removed, direct, incremental);
            let fast = lm.log_prob_after_removal_fast(&base, &removed);
            prop_assert!((direct - fast).abs() < 1e-9);
        }

        /// Per-word probabilities stay in (0, 1] for arbitrary sequences.
        #[test]
        fn per_word_probs_bounded(seq in prop::collection::vec(word_strategy(), 1..10)) {
            let lm = TrigramLm::train(&[
                vec!["the".into(), "broncos".into(), "won".into()],
            ]);
            for i in 0..seq.len() {
                let p = lm.word_prob(&seq, i);
                prop_assert!(p > 0.0 && p <= 1.0);
            }
        }
    }
}
