//! # gced-lm — n-gram language model for evidence readability
//!
//! Eq. 3 of the GCED paper scores an evidence's readability by the
//! inverse of its perplexity under a language model (the paper reuses its
//! PLM; here the substitution is an interpolated Kneser–Ney trigram
//! model trained on the corpus of each dataset — see DESIGN.md S3).
//! The property the Grow-and-Clip search needs is that **clipping a
//! constituent mid-phrase raises perplexity** and growing along real
//! syntactic structure lowers it; any well-smoothed n-gram model over the
//! corpus exhibits exactly that.
//!
//! ```
//! use gced_lm::TrigramLm;
//!
//! let corpus: Vec<Vec<String>> = vec![
//!     "the broncos defeated the panthers".split(' ').map(String::from).collect(),
//!     "the panthers lost the game".split(' ').map(String::from).collect(),
//! ];
//! let lm = TrigramLm::train(&corpus);
//! let fluent = lm.perplexity(&["the".into(), "broncos".into(), "defeated".into()]);
//! let garbled = lm.perplexity(&["defeated".into(), "the".into(), "the".into()]);
//! assert!(fluent < garbled);
//! ```

use gced_text::vocab::{Vocab, WordId, UNK};
use std::collections::{HashMap, HashSet};

/// Absolute discount used at every level (standard KN default).
const DISCOUNT: f64 = 0.75;

/// Sentence-start marker id (never produced by the vocabulary).
const BOS: WordId = WordId(u32::MAX);

/// Interpolated Kneser–Ney trigram language model.
#[derive(Debug, Clone)]
pub struct TrigramLm {
    vocab: Vocab,
    /// Raw trigram counts c(u,v,w).
    c3: HashMap<(WordId, WordId, WordId), u64>,
    /// Raw bigram counts c(u,v) over *history* positions (includes BOS).
    c2: HashMap<(WordId, WordId), u64>,
    /// Distinct continuations after history (u,v): N1+(uv·).
    follow2: HashMap<(WordId, WordId), u64>,
    /// Continuation count of bigram (v,w): N1+(·vw).
    cont2: HashMap<(WordId, WordId), u64>,
    /// N1+(·v·) = Σ_w N1+(·vw).
    mid1: HashMap<WordId, u64>,
    /// Distinct continuations after unigram v: N1+(v·).
    follow1: HashMap<WordId, u64>,
    /// Continuation count of unigram w: N1+(·w).
    cont1: HashMap<WordId, u64>,
    /// Total distinct bigram types N1+(··).
    bigram_types: u64,
}

impl TrigramLm {
    /// Train on tokenized, lowercased sentences.
    pub fn train(sentences: &[Vec<String>]) -> Self {
        let mut vocab = Vocab::new();
        let mut c3 = HashMap::new();
        let mut c2 = HashMap::new();
        let mut seen3: HashSet<(WordId, WordId, WordId)> = HashSet::new();
        let mut seen2: HashSet<(WordId, WordId)> = HashSet::new();
        let mut follow2: HashMap<(WordId, WordId), u64> = HashMap::new();
        let mut cont2: HashMap<(WordId, WordId), u64> = HashMap::new();
        let mut follow1: HashMap<WordId, u64> = HashMap::new();
        let mut cont1: HashMap<WordId, u64> = HashMap::new();
        let mut mid1: HashMap<WordId, u64> = HashMap::new();

        for sent in sentences {
            if sent.is_empty() {
                continue;
            }
            let ids: Vec<WordId> = sent.iter().map(|w| vocab.add(w)).collect();
            let padded: Vec<WordId> =
                std::iter::repeat(BOS).take(2).chain(ids.iter().copied()).collect();
            for i in 2..padded.len() {
                let (u, v, w) = (padded[i - 2], padded[i - 1], padded[i]);
                *c3.entry((u, v, w)).or_insert(0) += 1;
                *c2.entry((u, v)).or_insert(0) += 1;
                if seen3.insert((u, v, w)) {
                    *follow2.entry((u, v)).or_insert(0) += 1;
                }
                if seen2.insert((v, w)) {
                    *cont2.entry((v, w)).or_insert(0) += 1;
                    *cont1.entry(w).or_insert(0) += 1;
                    *mid1.entry(v).or_insert(0) += 1;
                    *follow1.entry(v).or_insert(0) += 1;
                }
            }
        }
        let bigram_types = seen2.len() as u64;
        TrigramLm { vocab, c3, c2, follow2, cont2, mid1, follow1, cont1, bigram_types }
    }

    /// The training vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Smoothed unigram continuation probability. Never zero: additive
    /// smoothing over continuation types gives unseen words mass.
    fn p_uni(&self, w: WordId) -> f64 {
        let cont = self.cont1.get(&w).copied().unwrap_or(0) as f64;
        let v = self.vocab.len() as f64 + 1.0;
        (cont + 0.5) / (self.bigram_types as f64 + 0.5 * v)
    }

    /// Interpolated KN bigram probability P(w | v).
    fn p_bi(&self, v: WordId, w: WordId) -> f64 {
        let mid = self.mid1.get(&v).copied().unwrap_or(0) as f64;
        if mid == 0.0 {
            return self.p_uni(w);
        }
        let cont = self.cont2.get(&(v, w)).copied().unwrap_or(0) as f64;
        let types = self.follow1.get(&v).copied().unwrap_or(0) as f64;
        let disc = (cont - DISCOUNT).max(0.0) / mid;
        let lambda = DISCOUNT * types / mid;
        disc + lambda * self.p_uni(w)
    }

    /// Interpolated KN trigram probability P(w | u, v).
    fn p_tri(&self, u: WordId, v: WordId, w: WordId) -> f64 {
        let hist = self.c2.get(&(u, v)).copied().unwrap_or(0) as f64;
        if hist == 0.0 {
            return self.p_bi(v, w);
        }
        let count = self.c3.get(&(u, v, w)).copied().unwrap_or(0) as f64;
        let types = self.follow2.get(&(u, v)).copied().unwrap_or(0) as f64;
        let disc = (count - DISCOUNT).max(0.0) / hist;
        let lambda = DISCOUNT * types / hist;
        disc + lambda * self.p_bi(v, w)
    }

    /// P(words[i] | words[i-2], words[i-1]) for an arbitrary position of a
    /// word sequence (BOS-padded on the left). Public for diagnostics.
    pub fn word_prob(&self, words: &[String], i: usize) -> f64 {
        let id = |j: isize| -> WordId {
            if j < 0 {
                BOS
            } else {
                self.vocab.get(&words[j as usize])
            }
        };
        let i = i as isize;
        self.p_tri(id(i - 2), id(i - 1), id(i))
    }

    /// Natural-log probability of the full sequence.
    pub fn log_prob(&self, words: &[String]) -> f64 {
        (0..words.len()).map(|i| self.word_prob(words, i).max(1e-300).ln()).sum()
    }

    /// Perplexity per Eq. 3: `exp(-log P / L)`. Empty input gives
    /// `f64::INFINITY` (an empty evidence is maximally unreadable).
    pub fn perplexity(&self, words: &[String]) -> f64 {
        if words.is_empty() {
            return f64::INFINITY;
        }
        (-self.log_prob(words) / words.len() as f64).exp()
    }

    /// Readability per Eq. 4: the reciprocal of perplexity.
    pub fn readability(&self, words: &[String]) -> f64 {
        let ppl = self.perplexity(words);
        if ppl.is_finite() && ppl > 0.0 {
            1.0 / ppl
        } else {
            0.0
        }
    }

    /// Fraction of words unknown to the model (diagnostic; OOV hurts PPL).
    pub fn oov_rate(&self, words: &[String]) -> f64 {
        if words.is_empty() {
            return 0.0;
        }
        let oov = words.iter().filter(|w| self.vocab.get(w) == UNK).count();
        oov as f64 / words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sents(lines: &[&str]) -> Vec<Vec<String>> {
        lines.iter().map(|l| l.split(' ').map(String::from).collect()).collect()
    }

    fn small_lm() -> TrigramLm {
        TrigramLm::train(&sents(&[
            "the broncos defeated the panthers",
            "the broncos won the title",
            "the panthers lost the game",
            "the team won the championship",
            "the broncos earned the title",
        ]))
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        for i in 0..seq.len() {
            let p = lm.word_prob(&seq, i);
            assert!(p > 0.0 && p <= 1.0, "p = {p}");
        }
    }

    #[test]
    fn trigram_distribution_sums_to_one() {
        let lm = small_lm();
        // Sum P(w | "the", "broncos") over the full vocabulary (+unk).
        let mut total = 0.0;
        let u = lm.vocab.get("the");
        let v = lm.vocab.get("broncos");
        for (id, _, _) in lm.vocab.iter() {
            total += lm.p_tri(u, v, id);
        }
        total += lm.p_tri(u, v, UNK);
        assert!((total - 1.0).abs() < 0.02, "sums to {total}");
    }

    #[test]
    fn fluent_beats_garbled() {
        let lm = small_lm();
        let fluent: Vec<String> = "the broncos won the title".split(' ').map(String::from).collect();
        let garbled: Vec<String> = "title the won broncos the".split(' ').map(String::from).collect();
        assert!(lm.perplexity(&fluent) < lm.perplexity(&garbled));
    }

    #[test]
    fn in_domain_beats_oov() {
        let lm = small_lm();
        let seen: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let unseen: Vec<String> = "zebras quantize kumquats".split(' ').map(String::from).collect();
        assert!(lm.perplexity(&seen) < lm.perplexity(&unseen));
        assert_eq!(lm.oov_rate(&unseen), 1.0);
        assert_eq!(lm.oov_rate(&seen), 0.0);
    }

    #[test]
    fn readability_is_reciprocal_of_perplexity() {
        let lm = small_lm();
        let seq: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let ppl = lm.perplexity(&seq);
        assert!((lm.readability(&seq) - 1.0 / ppl).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_edge_cases() {
        let lm = small_lm();
        assert!(lm.perplexity(&[]).is_infinite());
        assert_eq!(lm.readability(&[]), 0.0);
        assert_eq!(lm.oov_rate(&[]), 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = sents(&["a b c", "b c d", "c d e"]);
        let lm1 = TrigramLm::train(&corpus);
        let lm2 = TrigramLm::train(&corpus);
        let seq: Vec<String> = "a b c d e".split(' ').map(String::from).collect();
        assert_eq!(lm1.log_prob(&seq), lm2.log_prob(&seq));
    }

    #[test]
    fn empty_corpus_is_usable() {
        let lm = TrigramLm::train(&[]);
        let seq: Vec<String> = vec!["anything".into()];
        let p = lm.perplexity(&seq);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn empty_sentences_are_skipped() {
        let lm = TrigramLm::train(&[vec![], vec!["a".into(), "b".into()]]);
        assert!(lm.vocab().contains("a"));
    }

    #[test]
    fn more_context_helps() {
        // The trigram "broncos defeated the" is seen; after training, the
        // model should prefer the attested continuation over an unattested
        // in-vocabulary one.
        let lm = small_lm();
        let attested: Vec<String> =
            "the broncos defeated the panthers".split(' ').map(String::from).collect();
        let swapped: Vec<String> =
            "the broncos defeated the game".split(' ').map(String::from).collect();
        assert!(lm.log_prob(&attested) > lm.log_prob(&swapped));
    }

    #[test]
    fn perplexity_positive_for_any_input() {
        let lm = small_lm();
        for seq in [vec!["the".to_string()], vec!["xyzzy".to_string(), "the".to_string()]] {
            let p = lm.perplexity(&seq);
            assert!(p > 0.0 && p.is_finite());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn word_strategy() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "the".to_string(),
            "broncos".to_string(),
            "panthers".to_string(),
            "won".to_string(),
            "defeated".to_string(),
            "title".to_string(),
            "game".to_string(),
        ])
    }

    proptest! {
        /// Perplexity is finite and positive for any non-empty sequence
        /// over a mixed seen/unseen vocabulary.
        #[test]
        fn ppl_finite_positive(seq in prop::collection::vec(word_strategy(), 1..12)) {
            let lm = TrigramLm::train(&[
                vec!["the".into(), "broncos".into(), "won".into(), "the".into(), "title".into()],
            ]);
            let ppl = lm.perplexity(&seq);
            prop_assert!(ppl.is_finite());
            prop_assert!(ppl > 0.0);
        }

        /// Per-word probabilities stay in (0, 1] for arbitrary sequences.
        #[test]
        fn per_word_probs_bounded(seq in prop::collection::vec(word_strategy(), 1..10)) {
            let lm = TrigramLm::train(&[
                vec!["the".into(), "broncos".into(), "won".into()],
            ]);
            for i in 0..seq.len() {
                let p = lm.word_prob(&seq, i);
                prop_assert!(p > 0.0 && p <= 1.0);
            }
        }
    }
}
