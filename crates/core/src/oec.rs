//! Optimal Evidence Distiller (paper Sec. III-F, Algorithm 1).
//!
//! * **SGS (Sequential Grow Searching)** connects the evidence forest:
//!   while more than one tree remains, the tree whose root has the
//!   maximal attention weight to its parent is replaced by the *full
//!   subtree of T rooted at that parent* (absorbing the parent and all
//!   sibling subtrees — Grow Step line 4); any forest tree now contained
//!   is merged. The loop terminates because each step strictly raises
//!   the chosen root toward T's root.
//! * **SCS (Sequential Clip Searching)** prunes the unclipped evidence
//!   tree: candidate subtrees are those containing **no** forest node
//!   (clue/answer words and their parents are unclippable — Clip Step
//!   line 3), the candidate whose removal maximizes the hybrid score is
//!   clipped (ties broken by minimal root-to-parent attention — line 5),
//!   for M iterations or while the score improves.

use crate::config::ClipMode;
use crate::efc::EvidenceForest;
use crate::scoring::{Bitset, EvidenceScorer, EvidenceScores, ScoreScratch};
use crate::wsptc::WeightedTree;
use gced_text::Document;
use std::collections::BTreeSet;

/// One SGS iteration, for the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowStep {
    /// Root of the tree chosen to grow (max attention weight).
    pub chosen_root: usize,
    /// Its parent in T — the new subtree root.
    pub parent: usize,
    /// The attention weight that won the argmax.
    pub weight: f64,
    /// Roots of the forest trees absorbed by the new subtree.
    pub merged_roots: Vec<usize>,
    /// Node count of the grown tree.
    pub new_size: usize,
}

/// One SCS iteration, for the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipStep {
    /// Root of the clipped subtree.
    pub clipped_node: usize,
    /// All removed nodes (the full subtree).
    pub removed: Vec<usize>,
    /// Hybrid score before the clip.
    pub hybrid_before: f64,
    /// Hybrid score after the clip.
    pub hybrid_after: f64,
}

/// Run SGS with the paper's max-attention root selection.
pub fn grow(wt: &WeightedTree, forest: &EvidenceForest) -> (BTreeSet<usize>, usize, Vec<GrowStep>) {
    grow_with_order(wt, forest, true)
}

/// Run SGS. Returns the unclipped evidence tree as (member nodes, root)
/// plus the step log. The forest must be non-empty. With
/// `max_attention = false` the lowest-root-index growable tree is chosen
/// instead (the grow-order design ablation).
pub fn grow_with_order(
    wt: &WeightedTree,
    forest: &EvidenceForest,
    max_attention: bool,
) -> (BTreeSet<usize>, usize, Vec<GrowStep>) {
    assert!(!forest.is_empty(), "SGS requires a non-empty forest");
    let tree = &wt.tree;
    // Working set: (nodes, root) per live tree.
    let mut live: Vec<(BTreeSet<usize>, usize)> = forest
        .trees
        .iter()
        .map(|t| (t.nodes.clone(), t.root))
        .collect();
    let mut steps = Vec::new();
    while live.len() > 1 {
        // Select among trees whose root still has a parent.
        let growable = live
            .iter()
            .enumerate()
            .filter(|(_, (_, root))| tree.parent(*root).is_some());
        let chosen = if max_attention {
            growable
                .max_by(|a, b| {
                    let wa = wt.edge_weight(a.1 .1);
                    let wb = wt.edge_weight(b.1 .1);
                    wa.partial_cmp(&wb).expect("weights are never NaN")
                })
                .map(|(i, _)| i)
        } else {
            growable.min_by_key(|(_, (_, root))| *root).map(|(i, _)| i)
        }
        .expect("at least one growable tree while more than one remains");
        let old_root = live[chosen].1;
        let parent = tree.parent(old_root).expect("chosen tree is growable");
        let weight = wt.edge_weight(old_root);
        // Grow Step line 4: the new T_opt is the full subtree of T rooted
        // at the parent (parent + all sibling subtrees).
        let grown: BTreeSet<usize> = tree.subtree(parent).into_iter().collect();
        // Merge every live tree now contained in the grown subtree.
        let mut merged_roots = Vec::new();
        live.retain(|(_, root)| {
            if grown.contains(root) {
                merged_roots.push(*root);
                false
            } else {
                true
            }
        });
        steps.push(GrowStep {
            chosen_root: old_root,
            parent,
            weight,
            merged_roots,
            new_size: grown.len(),
        });
        live.push((grown, parent));
    }
    let (nodes, root) = live.pop().expect("exactly one tree remains");
    (nodes, root, steps)
}

/// The subtree of `node` *within* the current evidence set `te`
/// (descendants through members only).
pub fn subtree_within(wt: &WeightedTree, node: usize, te: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut stack = vec![node];
    while let Some(x) = stack.pop() {
        if !te.contains(&x) || !out.insert(x) {
            continue;
        }
        for &c in wt.tree.children(x) {
            if te.contains(&c) {
                stack.push(c);
            }
        }
    }
    out
}

/// Run SCS in place over `te`. `protected` is the union of forest nodes
/// (never clipped). Returns the step log.
///
/// This is the incremental engine: one DFS pass per iteration decomposes
/// the current evidence into every candidate subtree removal (with
/// protected-containment computed by aggregation), membership lives in a
/// `u64` bitset instead of per-candidate `BTreeSet` clones, duplicate
/// removals are deduplicated, and candidates are scored through the
/// shared [`crate::scoring::SearchContext`] — masked QA prediction with
/// span-score partials replayed across iterations, plus an incremental
/// LM walk. Candidate evaluation parallelizes across worker threads when
/// the evidence is large enough to pay for it.
///
/// The result is **bit-identical** to [`reference::clip`] (the paper-
/// literal formulation kept as a test oracle): same evidence, same step
/// log, same tie-breaking by minimal root-to-parent attention.
pub fn clip(
    wt: &WeightedTree,
    te: &mut BTreeSet<usize>,
    te_root: usize,
    protected: &BTreeSet<usize>,
    scorer: &EvidenceScorer<'_>,
    aos: &Document,
    mode: ClipMode,
) -> Vec<ClipStep> {
    clip_with_options(wt, te, te_root, protected, scorer, aos, mode, true).0
}

/// Minimum candidate count before the clip search fans evaluation out to
/// worker threads; below it, thread startup dominates the ~100 µs-scale
/// scoring work.
const PAR_MIN_CANDIDATES: usize = 12;

/// [`clip`] with explicit control over candidate-level parallelism
/// (batch distillation parallelizes across examples instead and turns
/// the inner fan-out off to avoid oversubscription).
///
/// Also returns the full [`EvidenceScores`] of the resulting evidence —
/// bitwise-equal to `scorer.score_selection(aos, te)` on the clipped
/// selection — so the caller does not pay a final rescore.
#[allow(clippy::too_many_arguments)]
pub(crate) fn clip_with_options(
    wt: &WeightedTree,
    te: &mut BTreeSet<usize>,
    te_root: usize,
    protected: &BTreeSet<usize>,
    scorer: &EvidenceScorer<'_>,
    aos: &Document,
    mode: ClipMode,
    allow_parallel: bool,
) -> (Vec<ClipStep>, EvidenceScores) {
    let max_iters = match mode {
        ClipMode::Fixed(m) => m,
        ClipMode::WhileImproving { max } => max,
    };
    let n = wt.tree.len();
    let mut members = Bitset::from_iter(n, te.iter().copied());
    let mut te_size = te.len();
    let mut search = scorer.search_context(aos);
    search.set_base(te.iter().copied());
    let mut scratch = ScoreScratch::default();
    let mut decomp = Decomposition::new(n);
    let mut steps = Vec::new();
    let mut current = search.score_base(&mut scratch);
    for _ in 0..max_iters {
        let _iter_span = gced_obs::span("clip.iter");
        // One pass: every in-TE subtree decomposition, protected flags
        // aggregated bottom-up, deduplicated by DFS segment.
        decomp.run(wt, &members, te_root, protected);
        let candidates = decomp.candidates(te_size, te_root);
        gced_obs::counter("candidates", candidates.len() as u64);
        let mut pruned = 0u64;
        // Score candidates and reduce in ascending-node order: identical
        // argmax and tie-breaking to the reference formulation. The
        // parallel path evaluates every candidate (the context is shared
        // immutably, so span partials are not recorded there); the
        // sequential path scores through the span cache and additionally
        // prunes candidates whose informativeness-bounded hybrid
        // provably cannot beat the running best (exact — see
        // `SearchContext::score_if_competitive`). All paths select
        // identically.
        let mut best: Option<(usize, EvidenceScores)> = None;
        if allow_parallel && candidates.len() >= PAR_MIN_CANDIDATES && gced_par::max_threads() > 1 {
            let scored: Vec<EvidenceScores> =
                gced_par::par_map_with(&candidates, ScoreScratch::default, |scratch, _, cand| {
                    search.score_removal(decomp.segment(cand), scratch)
                });
            for (k, cand) in candidates.iter().enumerate() {
                let h = scored[k].hybrid;
                let better = match &best {
                    None => true,
                    Some((bk, bs)) => {
                        h > bs.hybrid + 1e-12
                            || ((h - bs.hybrid).abs() <= 1e-12
                                && wt.edge_weight(cand.node) < wt.edge_weight(candidates[*bk].node))
                    }
                };
                if better {
                    best = Some((k, scored[k]));
                }
            }
        } else {
            for (k, cand) in candidates.iter().enumerate() {
                // A candidate below `floor` can neither beat the best
                // outright nor reach the 1e-12 tie window.
                let floor = match &best {
                    None => f64::NEG_INFINITY,
                    Some((_, bs)) => bs.hybrid - 1e-12,
                };
                let Some(scores) =
                    search.score_if_competitive(decomp.segment(cand), floor, &mut scratch)
                else {
                    pruned += 1;
                    continue;
                };
                let h = scores.hybrid;
                let better = match &best {
                    None => true,
                    Some((bk, bs)) => {
                        h > bs.hybrid + 1e-12
                            || ((h - bs.hybrid).abs() <= 1e-12
                                && wt.edge_weight(cand.node) < wt.edge_weight(candidates[*bk].node))
                    }
                };
                if better {
                    best = Some((k, scores));
                }
            }
        }
        gced_obs::counter("candidates_pruned", pruned);
        let Some((k, winner)) = best else { break };
        if !winner.hybrid.is_finite() {
            break; // every removal lands in the C = −∞ discard region
        }
        if let ClipMode::WhileImproving { .. } = mode {
            if winner.hybrid <= current.hybrid {
                break;
            }
        }
        let chosen = candidates[k];
        let mut removed: Vec<usize> = decomp.segment(&chosen).to_vec();
        removed.sort_unstable();
        for &x in &removed {
            te.remove(&x);
            members.remove(x);
        }
        te_size -= removed.len();
        search.set_base(te.iter().copied());
        steps.push(ClipStep {
            clipped_node: chosen.node,
            removed,
            hybrid_before: current.hybrid,
            hybrid_after: winner.hybrid,
        });
        current = winner;
    }
    let (hits, misses) = search.span_cache_stats();
    gced_obs::counter("span_cache_hits", hits);
    gced_obs::counter("span_cache_misses", misses);
    (steps, current)
}

/// One candidate subtree removal: the subtree of `node` within the
/// current evidence, stored as a segment of the decomposition's DFS
/// preorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    node: usize,
    seg_start: u32,
    seg_len: u32,
}

/// Per-iteration decomposition of the evidence into candidate subtrees:
/// a DFS preorder over every in-TE component plus per-node subtree size
/// and protected-containment flags, computed in one pass and reused for
/// every candidate (the naïve search re-walked the tree per candidate).
struct Decomposition {
    /// DFS preorder of all members (token indices).
    order: Vec<usize>,
    /// token -> position in `order` (u32::MAX when absent).
    pre: Vec<u32>,
    /// token -> in-TE subtree size.
    size: Vec<u32>,
    /// token -> any protected node in the in-TE subtree.
    prot: Vec<bool>,
    /// DFS stack scratch: (node, child cursor).
    stack: Vec<(usize, usize)>,
}

impl Decomposition {
    fn new(n: usize) -> Self {
        Decomposition {
            order: Vec::with_capacity(n),
            pre: vec![u32::MAX; n],
            size: vec![0; n],
            prot: vec![false; n],
            stack: Vec::new(),
        }
    }

    /// Recompute for the current membership. Components beyond the one
    /// holding `te_root` (the grow-ablated, disconnected case) are
    /// discovered from their topmost members, so every member is covered
    /// exactly once.
    fn run(
        &mut self,
        wt: &WeightedTree,
        members: &Bitset,
        te_root: usize,
        protected: &BTreeSet<usize>,
    ) {
        self.order.clear();
        for t in members.iter() {
            self.pre[t] = u32::MAX;
            self.size[t] = 0;
            self.prot[t] = false;
        }
        if members.contains(te_root) {
            self.dfs(wt, members, te_root, protected);
        }
        // Remaining components, ascending: walk each unvisited member up
        // to its component top, then DFS from there.
        for v in members.iter() {
            if self.pre[v] != u32::MAX {
                continue;
            }
            let mut top = v;
            while let Some(p) = wt.tree.parent(top) {
                if members.contains(p) && self.pre[p] == u32::MAX {
                    top = p;
                } else {
                    break;
                }
            }
            self.dfs(wt, members, top, protected);
        }
    }

    /// Iterative DFS computing preorder, subtree sizes, and protected
    /// flags (aggregated from member children on post-order exit) for
    /// one component.
    fn dfs(
        &mut self,
        wt: &WeightedTree,
        members: &Bitset,
        root: usize,
        protected: &BTreeSet<usize>,
    ) {
        self.stack.clear();
        self.pre[root] = self.order.len() as u32;
        self.order.push(root);
        self.stack.push((root, 0));
        while let Some(&(node, cursor)) = self.stack.last() {
            let children = wt.tree.children(node);
            let mut next_child = None;
            let mut cur = cursor;
            while cur < children.len() {
                let c = children[cur];
                cur += 1;
                if members.contains(c) && self.pre[c] == u32::MAX {
                    next_child = Some(c);
                    break;
                }
            }
            self.stack.last_mut().expect("stack non-empty").1 = cur;
            if let Some(c) = next_child {
                self.pre[c] = self.order.len() as u32;
                self.order.push(c);
                self.stack.push((c, 0));
            } else {
                // Post-order exit: every member child has finished, so
                // size and protection aggregate in O(children).
                self.size[node] = (self.order.len() - self.pre[node] as usize) as u32;
                let mut prot = protected.contains(&node);
                if !prot {
                    prot = children
                        .iter()
                        .any(|&c| members.contains(c) && self.prot[c]);
                }
                self.prot[node] = prot;
                self.stack.pop();
            }
        }
    }

    /// Candidate removals for the current pass: every member except the
    /// evidence root whose subtree is protected-free and smaller than
    /// the whole evidence, ascending by node index. Candidate removals
    /// are structurally deduplicated: distinct roots always yield
    /// distinct DFS segments, because every segment contains its own
    /// root (the debug assertion pins the invariant).
    fn candidates(&self, te_size: usize, te_root: usize) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = Vec::new();
        for &v in &self.order {
            if v == te_root || self.prot[v] {
                continue;
            }
            let size = self.size[v] as usize;
            if size >= te_size {
                continue;
            }
            out.push(Candidate {
                node: v,
                seg_start: self.pre[v],
                seg_len: self.size[v],
            });
        }
        out.sort_unstable_by_key(|c| c.node);
        debug_assert!(
            out.windows(2)
                .all(|w| (w[0].seg_start, w[0].seg_len) != (w[1].seg_start, w[1].seg_len)),
            "candidate segments must be unique"
        );
        out
    }

    /// The removal segment of a candidate: its subtree in DFS preorder.
    fn segment(&self, cand: &Candidate) -> &[usize] {
        let s = cand.seg_start as usize;
        &self.order[s..s + cand.seg_len as usize]
    }
}

/// The paper-literal Sequential Clip Searching kept as a verification
/// oracle: per-candidate `subtree_within` walks, full `BTreeSet` clones,
/// and from-scratch rescoring. The optimized [`clip`] must match it
/// bit for bit (same evidence, scores, and step log); the cross-crate
/// property suite asserts exactly that on randomized pipelines.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Reference SCS. See [`super::clip`].
    pub fn clip(
        wt: &WeightedTree,
        te: &mut BTreeSet<usize>,
        te_root: usize,
        protected: &BTreeSet<usize>,
        scorer: &EvidenceScorer<'_>,
        aos: &Document,
        mode: ClipMode,
    ) -> Vec<ClipStep> {
        let max_iters = match mode {
            ClipMode::Fixed(m) => m,
            ClipMode::WhileImproving { max } => max,
        };
        let mut steps = Vec::new();
        let mut current_h = scorer.score_selection(aos, te).hybrid;
        for _ in 0..max_iters {
            // Enumerate candidates: members (≠ root) whose in-TE subtree
            // is disjoint from the protected set.
            let mut best: Option<(usize, BTreeSet<usize>, f64)> = None;
            for &v in te.iter() {
                if v == te_root {
                    continue;
                }
                let sub = subtree_within(wt, v, te);
                if sub.iter().any(|n| protected.contains(n)) {
                    continue;
                }
                if sub.len() >= te.len() {
                    continue; // would delete everything
                }
                let mut after: BTreeSet<usize> = te.clone();
                for n in &sub {
                    after.remove(n);
                }
                let h = scorer.score_selection(aos, &after).hybrid;
                let better = match &best {
                    None => true,
                    Some((bv, _, bh)) => {
                        h > *bh + 1e-12
                            || ((h - *bh).abs() <= 1e-12 && wt.edge_weight(v) < wt.edge_weight(*bv))
                    }
                };
                if better {
                    best = Some((v, sub, h));
                }
            }
            let Some((v, sub, h)) = best else { break };
            if !h.is_finite() {
                break;
            }
            if let ClipMode::WhileImproving { .. } = mode {
                if h <= current_h {
                    break;
                }
            }
            for n in &sub {
                te.remove(n);
            }
            steps.push(ClipStep {
                clipped_node: v,
                removed: sub.into_iter().collect(),
                hybrid_before: current_h,
                hybrid_after: h,
            });
            current_h = h;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efc;
    use gced_parser::DepTree;

    /// A hand-built weighted tree:
    ///        0
    ///      / | \
    ///     1  4  6
    ///    /\  |   \
    ///   2 3  5    7
    fn wt(weights: Vec<f64>) -> WeightedTree {
        let tree = DepTree::from_parents(vec![
            None,
            Some(0),
            Some(1),
            Some(1),
            Some(0),
            Some(4),
            Some(0),
            Some(6),
        ]);
        WeightedTree { tree, weights }
    }

    fn uniform_wt() -> WeightedTree {
        wt(vec![0.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5])
    }

    #[test]
    fn grow_single_tree_is_identity() {
        let w = uniform_wt();
        let forest = efc::construct(&w.tree, &[2], &[]);
        let (nodes, root, steps) = grow(&w, &forest);
        assert_eq!(nodes, BTreeSet::from([1, 2]));
        assert_eq!(root, 1);
        assert!(steps.is_empty());
    }

    #[test]
    fn grow_connects_two_trees() {
        let w = uniform_wt();
        // Trees: {1,2} (seed 2) and {6,7} (seed 7). Connecting requires
        // growing to the root's full subtree.
        let forest = efc::construct(&w.tree, &[2], &[7]);
        let (nodes, root, steps) = grow(&w, &forest);
        assert_eq!(root, 0);
        assert_eq!(nodes, BTreeSet::from([0, 1, 2, 3, 4, 5, 6, 7]));
        assert!(!steps.is_empty());
        // Final step must have merged the remaining tree.
        assert!(!steps.last().unwrap().merged_roots.is_empty());
    }

    #[test]
    fn grow_prefers_max_weight_root() {
        // Tree {1,2} has root 1 with weight 0.9; tree {6,7} root 6 with
        // weight 0.2 — SGS must grow the 0.9 tree first.
        let w = wt(vec![0.0, 0.9, 0.5, 0.5, 0.5, 0.5, 0.2, 0.5]);
        let forest = efc::construct(&w.tree, &[2], &[7]);
        let (_, _, steps) = grow(&w, &forest);
        assert_eq!(steps[0].chosen_root, 1);
        assert!((steps[0].weight - 0.9).abs() < 1e-12);
    }

    #[test]
    fn grow_result_contains_all_forest_nodes_and_is_connected() {
        let w = uniform_wt();
        let forest = efc::construct(&w.tree, &[3, 5], &[7]);
        let (nodes, root, _) = grow(&w, &forest);
        for n in forest.all_nodes() {
            assert!(nodes.contains(&n));
        }
        // Connectivity: every member other than the root has its parent
        // in the set.
        for &n in &nodes {
            if n != root {
                assert!(nodes.contains(&w.tree.parent(n).unwrap()));
            }
        }
    }

    #[test]
    fn subtree_within_respects_removals() {
        let w = uniform_wt();
        let mut te: BTreeSet<usize> = (0..8).collect();
        te.remove(&3);
        let sub = subtree_within(&w, 1, &te);
        assert_eq!(sub, BTreeSet::from([1, 2]));
    }

    #[test]
    #[should_panic(expected = "non-empty forest")]
    fn grow_empty_forest_panics() {
        let w = uniform_wt();
        let forest = EvidenceForest::default();
        let _ = grow(&w, &forest);
    }

    // -- optimized clip vs the paper-literal reference oracle ------------

    /// Tiny deterministic generator for the randomized oracle tests.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        fn unit(&mut self) -> f64 {
            (self.next() % 100_000) as f64 / 100_000.0
        }
    }

    const ORACLE_WORDS: [&str; 12] = [
        "the", "broncos", "defeated", "panthers", "title", "game", "team", "won", "final",
        "evening", "denver", "stadium",
    ];

    fn oracle_scorer_parts() -> (gced_qa::QaModel, gced_lm::TrigramLm, f64) {
        let corpus: Vec<Vec<String>> = [
            "the broncos defeated the panthers",
            "the team won the final game",
            "the broncos won the title in denver",
            "the stadium was full that evening",
        ]
        .iter()
        .map(|s| s.split(' ').map(String::from).collect())
        .collect();
        let qa = gced_qa::QaModel::new(gced_qa::ModelProfile::plm());
        let lm = gced_lm::TrigramLm::train(&corpus);
        let ppl_ref = crate::scoring::reference_perplexity(&lm, &corpus, 100);
        (qa, lm, ppl_ref)
    }

    /// The optimized clip must be bit-identical to the reference oracle
    /// on randomized trees, weights, protections, and selections —
    /// including disconnected evidence sets (the grow-ablated path) and
    /// both clip modes.
    #[test]
    fn optimized_clip_matches_reference_on_random_trees() {
        let (qa, lm, ppl_ref) = oracle_scorer_parts();
        let scorer = EvidenceScorer::new(
            &qa,
            &lm,
            "Which team won the final game?",
            "broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let mut rng = Lcg(20260729);
        for case in 0..60 {
            let n = 4 + rng.below(12);
            // Random prefix-closed tree + random weights.
            let parents: Vec<Option<usize>> = (0..n)
                .map(|i| if i == 0 { None } else { Some(rng.below(i)) })
                .collect();
            let tree = gced_parser::DepTree::from_parents(parents);
            let weights: Vec<f64> = (0..n)
                .map(|i| if i == 0 { 0.0 } else { rng.unit().max(1e-6) })
                .collect();
            let wt = WeightedTree { tree, weights };
            // A document with exactly n single-word tokens.
            let text: Vec<&str> = (0..n)
                .map(|i| ORACLE_WORDS[i % ORACLE_WORDS.len()])
                .collect();
            let aos = gced_text::analyze(&text.join(" "));
            assert_eq!(aos.len(), n, "token count mismatch in test setup");
            // Random evidence selection: connected on even cases (full
            // subtree of the root), random subset (possibly
            // disconnected) on odd cases.
            let te: BTreeSet<usize> = if case % 2 == 0 {
                (0..n).collect()
            } else {
                let picked: BTreeSet<usize> = (0..n).filter(|_| rng.below(3) > 0).collect();
                if picked.is_empty() {
                    (0..1).collect()
                } else {
                    picked
                }
            };
            let te_root = if te.contains(&wt.tree.root()) {
                wt.tree.root()
            } else {
                *te.iter().next().expect("te non-empty")
            };
            // Random protected set (occasionally empty).
            let protected: BTreeSet<usize> =
                te.iter().copied().filter(|_| rng.below(4) == 0).collect();
            for mode in [ClipMode::WhileImproving { max: 8 }, ClipMode::Fixed(2)] {
                let mut te_ref = te.clone();
                let steps_ref =
                    reference::clip(&wt, &mut te_ref, te_root, &protected, &scorer, &aos, mode);
                let mut te_opt = te.clone();
                let steps_opt = clip(&wt, &mut te_opt, te_root, &protected, &scorer, &aos, mode);
                assert_eq!(
                    steps_ref, steps_opt,
                    "case {case} mode {mode:?}: step log differs"
                );
                assert_eq!(
                    te_ref, te_opt,
                    "case {case} mode {mode:?}: evidence differs"
                );
            }
        }
    }

    /// The clip engine's final-scores channel must agree with a from-
    /// scratch rescore of the clipped selection.
    #[test]
    fn clip_final_scores_match_rescore() {
        let (qa, lm, ppl_ref) = oracle_scorer_parts();
        let scorer = EvidenceScorer::new(
            &qa,
            &lm,
            "Which team won the final game?",
            "broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let mut rng = Lcg(7);
        for _ in 0..20 {
            let n = 5 + rng.below(10);
            let parents: Vec<Option<usize>> = (0..n)
                .map(|i| if i == 0 { None } else { Some(rng.below(i)) })
                .collect();
            let tree = gced_parser::DepTree::from_parents(parents);
            let weights: Vec<f64> = (0..n)
                .map(|i| if i == 0 { 0.0 } else { rng.unit().max(1e-6) })
                .collect();
            let wt = WeightedTree { tree, weights };
            let text: Vec<&str> = (0..n)
                .map(|i| ORACLE_WORDS[i % ORACLE_WORDS.len()])
                .collect();
            let aos = gced_text::analyze(&text.join(" "));
            let te_root = wt.tree.root();
            let protected: BTreeSet<usize> = [te_root].into_iter().collect();
            let mut te: BTreeSet<usize> = (0..n).collect();
            let (_, final_scores) = clip_with_options(
                &wt,
                &mut te,
                te_root,
                &protected,
                &scorer,
                &aos,
                ClipMode::WhileImproving { max: 8 },
                false,
            );
            assert_eq!(final_scores, scorer.score_selection(&aos, &te));
        }
    }
}
