//! Optimal Evidence Distiller (paper Sec. III-F, Algorithm 1).
//!
//! * **SGS (Sequential Grow Searching)** connects the evidence forest:
//!   while more than one tree remains, the tree whose root has the
//!   maximal attention weight to its parent is replaced by the *full
//!   subtree of T rooted at that parent* (absorbing the parent and all
//!   sibling subtrees — Grow Step line 4); any forest tree now contained
//!   is merged. The loop terminates because each step strictly raises
//!   the chosen root toward T's root.
//! * **SCS (Sequential Clip Searching)** prunes the unclipped evidence
//!   tree: candidate subtrees are those containing **no** forest node
//!   (clue/answer words and their parents are unclippable — Clip Step
//!   line 3), the candidate whose removal maximizes the hybrid score is
//!   clipped (ties broken by minimal root-to-parent attention — line 5),
//!   for M iterations or while the score improves.

use crate::config::ClipMode;
use crate::efc::EvidenceForest;
use crate::scoring::EvidenceScorer;
use crate::wsptc::WeightedTree;
use gced_text::Document;
use std::collections::BTreeSet;

/// One SGS iteration, for the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowStep {
    /// Root of the tree chosen to grow (max attention weight).
    pub chosen_root: usize,
    /// Its parent in T — the new subtree root.
    pub parent: usize,
    /// The attention weight that won the argmax.
    pub weight: f64,
    /// Roots of the forest trees absorbed by the new subtree.
    pub merged_roots: Vec<usize>,
    /// Node count of the grown tree.
    pub new_size: usize,
}

/// One SCS iteration, for the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipStep {
    /// Root of the clipped subtree.
    pub clipped_node: usize,
    /// All removed nodes (the full subtree).
    pub removed: Vec<usize>,
    /// Hybrid score before the clip.
    pub hybrid_before: f64,
    /// Hybrid score after the clip.
    pub hybrid_after: f64,
}

/// Run SGS with the paper's max-attention root selection.
pub fn grow(wt: &WeightedTree, forest: &EvidenceForest) -> (BTreeSet<usize>, usize, Vec<GrowStep>) {
    grow_with_order(wt, forest, true)
}

/// Run SGS. Returns the unclipped evidence tree as (member nodes, root)
/// plus the step log. The forest must be non-empty. With
/// `max_attention = false` the lowest-root-index growable tree is chosen
/// instead (the grow-order design ablation).
pub fn grow_with_order(
    wt: &WeightedTree,
    forest: &EvidenceForest,
    max_attention: bool,
) -> (BTreeSet<usize>, usize, Vec<GrowStep>) {
    assert!(!forest.is_empty(), "SGS requires a non-empty forest");
    let tree = &wt.tree;
    // Working set: (nodes, root) per live tree.
    let mut live: Vec<(BTreeSet<usize>, usize)> =
        forest.trees.iter().map(|t| (t.nodes.clone(), t.root)).collect();
    let mut steps = Vec::new();
    while live.len() > 1 {
        // Select among trees whose root still has a parent.
        let growable = live
            .iter()
            .enumerate()
            .filter(|(_, (_, root))| tree.parent(*root).is_some());
        let chosen = if max_attention {
            growable
                .max_by(|a, b| {
                    let wa = wt.edge_weight(a.1 .1);
                    let wb = wt.edge_weight(b.1 .1);
                    wa.partial_cmp(&wb).expect("weights are never NaN")
                })
                .map(|(i, _)| i)
        } else {
            growable.min_by_key(|(_, (_, root))| *root).map(|(i, _)| i)
        }
        .expect("at least one growable tree while more than one remains");
        let old_root = live[chosen].1;
        let parent = tree.parent(old_root).expect("chosen tree is growable");
        let weight = wt.edge_weight(old_root);
        // Grow Step line 4: the new T_opt is the full subtree of T rooted
        // at the parent (parent + all sibling subtrees).
        let grown: BTreeSet<usize> = tree.subtree(parent).into_iter().collect();
        // Merge every live tree now contained in the grown subtree.
        let mut merged_roots = Vec::new();
        live = live
            .into_iter()
            .filter(|(_, root)| {
                if grown.contains(root) {
                    merged_roots.push(*root);
                    false
                } else {
                    true
                }
            })
            .collect();
        steps.push(GrowStep {
            chosen_root: old_root,
            parent,
            weight,
            merged_roots,
            new_size: grown.len(),
        });
        live.push((grown, parent));
    }
    let (nodes, root) = live.pop().expect("exactly one tree remains");
    (nodes, root, steps)
}

/// The subtree of `node` *within* the current evidence set `te`
/// (descendants through members only).
pub fn subtree_within(wt: &WeightedTree, node: usize, te: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut stack = vec![node];
    while let Some(x) = stack.pop() {
        if !te.contains(&x) || !out.insert(x) {
            continue;
        }
        for &c in wt.tree.children(x) {
            if te.contains(&c) {
                stack.push(c);
            }
        }
    }
    out
}

/// Run SCS in place over `te`. `protected` is the union of forest nodes
/// (never clipped). Returns the step log.
pub fn clip(
    wt: &WeightedTree,
    te: &mut BTreeSet<usize>,
    te_root: usize,
    protected: &BTreeSet<usize>,
    scorer: &EvidenceScorer<'_>,
    aos: &Document,
    mode: ClipMode,
) -> Vec<ClipStep> {
    let max_iters = match mode {
        ClipMode::Fixed(m) => m,
        ClipMode::WhileImproving { max } => max,
    };
    let mut steps = Vec::new();
    let mut current_h = scorer.score_selection(aos, te).hybrid;
    for _ in 0..max_iters {
        // Enumerate candidates: members (≠ root) whose in-TE subtree is
        // disjoint from the protected set.
        let mut best: Option<(usize, BTreeSet<usize>, f64)> = None;
        for &v in te.iter() {
            if v == te_root {
                continue;
            }
            // Only consider subtree roots: clipping an inner node removes
            // its whole subtree anyway, so evaluating each member once as
            // a root covers all distinct removals.
            let sub = subtree_within(wt, v, te);
            if sub.iter().any(|n| protected.contains(n)) {
                continue;
            }
            if sub.len() >= te.len() {
                continue; // would delete everything
            }
            let mut after: BTreeSet<usize> = te.clone();
            for n in &sub {
                after.remove(n);
            }
            let h = scorer.score_selection(aos, &after).hybrid;
            let better = match &best {
                None => true,
                Some((bv, _, bh)) => {
                    h > *bh + 1e-12
                        || ((h - *bh).abs() <= 1e-12
                            && wt.edge_weight(v) < wt.edge_weight(*bv))
                }
            };
            if better {
                best = Some((v, sub, h));
            }
        }
        let Some((v, sub, h)) = best else { break };
        if !h.is_finite() {
            break; // every removal lands in the C = −∞ discard region
        }
        if let ClipMode::WhileImproving { .. } = mode {
            if h <= current_h {
                break;
            }
        }
        for n in &sub {
            te.remove(n);
        }
        steps.push(ClipStep {
            clipped_node: v,
            removed: sub.into_iter().collect(),
            hybrid_before: current_h,
            hybrid_after: h,
        });
        current_h = h;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efc;
    use gced_parser::DepTree;

    /// A hand-built weighted tree:
    ///        0
    ///      / | \
    ///     1  4  6
    ///    /\  |   \
    ///   2 3  5    7
    fn wt(weights: Vec<f64>) -> WeightedTree {
        let tree = DepTree::from_parents(vec![
            None,
            Some(0),
            Some(1),
            Some(1),
            Some(0),
            Some(4),
            Some(0),
            Some(6),
        ]);
        WeightedTree { tree, weights }
    }

    fn uniform_wt() -> WeightedTree {
        wt(vec![0.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5])
    }

    #[test]
    fn grow_single_tree_is_identity() {
        let w = uniform_wt();
        let forest = efc::construct(&w.tree, &[2], &[]);
        let (nodes, root, steps) = grow(&w, &forest);
        assert_eq!(nodes, BTreeSet::from([1, 2]));
        assert_eq!(root, 1);
        assert!(steps.is_empty());
    }

    #[test]
    fn grow_connects_two_trees() {
        let w = uniform_wt();
        // Trees: {1,2} (seed 2) and {6,7} (seed 7). Connecting requires
        // growing to the root's full subtree.
        let forest = efc::construct(&w.tree, &[2], &[7]);
        let (nodes, root, steps) = grow(&w, &forest);
        assert_eq!(root, 0);
        assert_eq!(nodes, BTreeSet::from([0, 1, 2, 3, 4, 5, 6, 7]));
        assert!(!steps.is_empty());
        // Final step must have merged the remaining tree.
        assert!(steps.last().unwrap().merged_roots.len() >= 1);
    }

    #[test]
    fn grow_prefers_max_weight_root() {
        // Tree {1,2} has root 1 with weight 0.9; tree {6,7} root 6 with
        // weight 0.2 — SGS must grow the 0.9 tree first.
        let w = wt(vec![0.0, 0.9, 0.5, 0.5, 0.5, 0.5, 0.2, 0.5]);
        let forest = efc::construct(&w.tree, &[2], &[7]);
        let (_, _, steps) = grow(&w, &forest);
        assert_eq!(steps[0].chosen_root, 1);
        assert!((steps[0].weight - 0.9).abs() < 1e-12);
    }

    #[test]
    fn grow_result_contains_all_forest_nodes_and_is_connected() {
        let w = uniform_wt();
        let forest = efc::construct(&w.tree, &[3, 5], &[7]);
        let (nodes, root, _) = grow(&w, &forest);
        for n in forest.all_nodes() {
            assert!(nodes.contains(&n));
        }
        // Connectivity: every member other than the root has its parent
        // in the set.
        for &n in &nodes {
            if n != root {
                assert!(nodes.contains(&w.tree.parent(n).unwrap()));
            }
        }
    }

    #[test]
    fn subtree_within_respects_removals() {
        let w = uniform_wt();
        let mut te: BTreeSet<usize> = (0..8).collect();
        te.remove(&3);
        let sub = subtree_within(&w, 1, &te);
        assert_eq!(sub, BTreeSet::from([1, 2]));
    }

    #[test]
    #[should_panic(expected = "non-empty forest")]
    fn grow_empty_forest_panics() {
        let w = uniform_wt();
        let forest = EvidenceForest::default();
        let _ = grow(&w, &forest);
    }
}
