//! Bit-exact fit-cache codec: serialize the expensive fitted substrates
//! of a [`Gced`] — the trained QA model, the trigram LM, and the fitted
//! embedding table — so co-located shard workers of one experiment run
//! load the artifact instead of re-fitting identical state.
//!
//! The cheap substrates (embedded lexicon, embedded parser, seeded
//! attention) are *not* serialized: [`Gced::assemble`] rebuilds them
//! from the config exactly as [`Gced::fit`] does, so a decoded pipeline
//! distills **bitwise-identically** to a freshly fitted one. That is
//! what lets the sharded experiment runner mix cached and fresh fits
//! while keeping merges byte-identical.
//!
//! The format is a versioned little-endian binary with all floats
//! stored as raw IEEE-754 bits (no text round-trip) and every map
//! emitted in sorted order, so encoding the same fit always produces
//! the same bytes — concurrent writers racing on one cache path can
//! only ever replace the file with identical content.

use crate::{Gced, GcedConfig};
use gced_lm::{LmParts, TrigramLm};
use gced_nn::EmbeddingTable;
use gced_qa::features::N_FEATURES;
use gced_qa::{ModelProfile, QaModel};
use gced_text::vocab::WordId;

/// Artifact magic + format version (bump on layout changes).
const MAGIC: &[u8; 8] = b"GCEDFIT\x01";

/// Serialize the fitted substrates of `gced` under a caller-chosen
/// fingerprint (experiment identity: dataset kind, scale, seed). The
/// fingerprint is verified by [`decode`] so a stale or foreign artifact
/// fails loudly instead of silently skewing a run.
pub fn encode(gced: &Gced, fingerprint: &str) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(1 << 20));
    w.0.extend_from_slice(MAGIC);
    w.str(fingerprint);
    w.u64(gced.config.seed);
    w.f64(gced.ppl_ref);
    encode_qa(&mut w, &gced.qa);
    encode_lm(&mut w, &gced.lm);
    encode_embeddings(&mut w, &gced.embeddings);
    w.0
}

/// Rebuild a pipeline from [`encode`] output. `fingerprint` and
/// `config` must match the encoding run (`config.seed` is checked
/// against the stored seed; the rest of the config is per-call state
/// that never enters the fit).
pub fn decode(bytes: &[u8], fingerprint: &str, config: GcedConfig) -> Result<Gced, String> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err("not a gced fit-cache artifact (bad magic)".to_string());
    }
    let stored = r.str()?;
    if stored != fingerprint {
        return Err(format!(
            "fit-cache fingerprint mismatch: artifact is {stored:?}, run needs {fingerprint:?}"
        ));
    }
    let seed = r.u64()?;
    if seed != config.seed {
        return Err(format!(
            "fit-cache seed mismatch: artifact fitted with seed {seed}, config has {}",
            config.seed
        ));
    }
    let ppl_ref = r.f64()?;
    let qa = decode_qa(&mut r)?;
    let lm = decode_lm(&mut r)?;
    let embeddings = decode_embeddings(&mut r)?;
    if r.pos != bytes.len() {
        return Err(format!(
            "fit-cache artifact has {} trailing byte(s)",
            bytes.len() - r.pos
        ));
    }
    Ok(Gced::assemble(config, qa, lm, embeddings, ppl_ref))
}

// ---------------------------------------------------------------------------
// Substrate sections
// ---------------------------------------------------------------------------

fn encode_qa(w: &mut Writer, qa: &QaModel) {
    let p = qa.profile();
    w.str(&p.name);
    w.f64(p.noise);
    w.u64(p.window as u64);
    w.f64(p.no_answer_threshold);
    w.u64(p.seed);
    w.u64(p.epochs as u64);
    w.u64(N_FEATURES as u64);
    for &x in qa.weights() {
        w.f64(x);
    }
    let idf = qa.idf_parts();
    w.u64(idf.len() as u64);
    for (word, x) in &idf {
        w.str(word);
        w.f64(*x);
    }
    match qa.learned_threshold() {
        Some(t) => {
            w.0.push(1);
            w.f64(t);
        }
        None => w.0.push(0),
    }
    w.0.push(qa.is_trained() as u8);
}

fn decode_qa(r: &mut Reader) -> Result<QaModel, String> {
    let profile = ModelProfile {
        name: r.str()?,
        noise: r.f64()?,
        window: r.u64()? as usize,
        no_answer_threshold: r.f64()?,
        seed: r.u64()?,
        epochs: r.u64()? as usize,
    };
    let n = r.u64()? as usize;
    if n != N_FEATURES {
        return Err(format!(
            "fit-cache QA weight count {n} does not match this build's {N_FEATURES}"
        ));
    }
    let mut weights = [0.0f64; N_FEATURES];
    for x in &mut weights {
        *x = r.f64()?;
    }
    let n_idf = r.u64()? as usize;
    let mut idf = Vec::with_capacity(n_idf);
    for _ in 0..n_idf {
        let word = r.str()?;
        let x = r.f64()?;
        idf.push((word, x));
    }
    let learned_threshold = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        t => return Err(format!("bad threshold tag {t}")),
    };
    let trained = r.u8()? != 0;
    Ok(QaModel::from_parts(
        profile,
        weights,
        idf,
        learned_threshold,
        trained,
    ))
}

fn encode_lm(w: &mut Writer, lm: &TrigramLm) {
    let parts = lm.to_parts();
    w.u64(parts.words.len() as u64);
    for (word, count) in &parts.words {
        w.str(word);
        w.u64(*count);
    }
    let key3 = |w: &mut Writer, k: &(WordId, WordId, WordId)| {
        w.u32(k.0 .0);
        w.u32(k.1 .0);
        w.u32(k.2 .0);
    };
    let key2 = |w: &mut Writer, k: &(WordId, WordId)| {
        w.u32(k.0 .0);
        w.u32(k.1 .0);
    };
    let key1 = |w: &mut Writer, k: &WordId| w.u32(k.0);
    fn table<K>(w: &mut Writer, entries: &[(K, u64)], key: impl Fn(&mut Writer, &K)) {
        w.u64(entries.len() as u64);
        for (k, c) in entries {
            key(w, k);
            w.u64(*c);
        }
    }
    table(w, &parts.c3, key3);
    table(w, &parts.c2, key2);
    table(w, &parts.follow2, key2);
    table(w, &parts.cont2, key2);
    table(w, &parts.mid1, key1);
    table(w, &parts.follow1, key1);
    table(w, &parts.cont1, key1);
    w.u64(parts.bigram_types);
}

fn decode_lm(r: &mut Reader) -> Result<TrigramLm, String> {
    let n_words = r.u64()? as usize;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        let word = r.str()?;
        let count = r.u64()?;
        words.push((word, count));
    }
    let key3 = |r: &mut Reader| -> Result<(WordId, WordId, WordId), String> {
        Ok((WordId(r.u32()?), WordId(r.u32()?), WordId(r.u32()?)))
    };
    let key2 = |r: &mut Reader| -> Result<(WordId, WordId), String> {
        Ok((WordId(r.u32()?), WordId(r.u32()?)))
    };
    let key1 = |r: &mut Reader| -> Result<WordId, String> { Ok(WordId(r.u32()?)) };
    fn table<K>(
        r: &mut Reader,
        key: impl Fn(&mut Reader) -> Result<K, String>,
    ) -> Result<Vec<(K, u64)>, String> {
        let n = r.u64()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = key(r)?;
            let c = r.u64()?;
            out.push((k, c));
        }
        Ok(out)
    }
    let c3 = table(r, key3)?;
    let c2 = table(r, key2)?;
    let follow2 = table(r, key2)?;
    let cont2 = table(r, key2)?;
    let mid1 = table(r, key1)?;
    let follow1 = table(r, key1)?;
    let cont1 = table(r, key1)?;
    let bigram_types = r.u64()?;
    Ok(TrigramLm::from_parts(LmParts {
        words,
        c3,
        c2,
        follow2,
        cont2,
        mid1,
        follow1,
        cont1,
        bigram_types,
    }))
}

fn encode_embeddings(w: &mut Writer, emb: &EmbeddingTable) {
    w.u64(emb.dim() as u64);
    w.u64(emb.seed());
    let parts = emb.to_parts();
    w.u64(parts.len() as u64);
    for (word, vec) in &parts {
        w.str(word);
        w.u64(vec.len() as u64);
        for &x in vec {
            w.u32(x.to_bits());
        }
    }
}

fn decode_embeddings(r: &mut Reader) -> Result<EmbeddingTable, String> {
    let dim = r.u64()? as usize;
    let seed = r.u64()?;
    let n = r.u64()? as usize;
    let mut refined = Vec::with_capacity(n);
    for _ in 0..n {
        let word = r.str()?;
        let len = r.u64()? as usize;
        let mut vec = Vec::with_capacity(len);
        for _ in 0..len {
            vec.push(f32::from_bits(r.u32()?));
        }
        refined.push((word, vec));
    }
    if dim == 0 {
        return Err("fit-cache embedding dim is zero".to_string());
    }
    Ok(EmbeddingTable::from_parts(dim, seed, refined))
}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        // `n` comes straight from an untrusted length field: compare
        // against the remainder instead of computing `pos + n`, which
        // could overflow on garbage input.
        if n > self.buf.len() - self.pos {
            return Err(format!(
                "truncated fit-cache artifact (need {n} byte(s) at offset {}, have {})",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u64()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string in artifact".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_datasets::{generate, DatasetKind, GeneratorConfig};

    fn fitted() -> (Gced, gced_datasets::Dataset) {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 60,
                dev: 12,
                seed: 11,
            },
        );
        let cfg = GcedConfig {
            seed: 11,
            ..GcedConfig::default()
        };
        let g = Gced::fit(&ds, cfg);
        (g, ds)
    }

    #[test]
    fn roundtrip_distills_bitwise_identically() {
        let (g, ds) = fitted();
        let bytes = encode(&g, "test-fp");
        let back = decode(&bytes, "test-fp", g.config().clone()).unwrap();
        for ex in ds.dev.examples.iter().filter(|e| e.answerable).take(6) {
            let a = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
            let b = back.distill(&ex.question, &ex.answer, &ex.context).unwrap();
            assert_eq!(a.evidence, b.evidence, "{}", ex.id);
            assert_eq!(a.scores, b.scores, "{}", ex.id);
            assert_eq!(
                a.word_reduction.to_bits(),
                b.word_reduction.to_bits(),
                "{}",
                ex.id
            );
        }
    }

    #[test]
    fn encoding_is_byte_deterministic() {
        let (g, _) = fitted();
        assert_eq!(encode(&g, "fp"), encode(&g, "fp"));
        // A re-fit of the same dataset/config encodes identically too —
        // no HashMap iteration order leaks into the artifact.
        let (g2, _) = fitted();
        assert_eq!(encode(&g, "fp"), encode(&g2, "fp"));
    }

    fn decode_err(bytes: &[u8], fp: &str, config: GcedConfig) -> String {
        match decode(bytes, fp, config) {
            Ok(_) => panic!("decode unexpectedly succeeded"),
            Err(e) => e,
        }
    }

    #[test]
    fn decode_rejects_corrupt_and_mismatched_artifacts() {
        let (g, _) = fitted();
        let bytes = encode(&g, "fp");
        let err = decode_err(&bytes, "other-fp", g.config().clone());
        assert!(err.contains("fingerprint"), "{err}");
        let mut wrong_seed = g.config().clone();
        wrong_seed.seed = 999;
        let err = decode_err(&bytes, "fp", wrong_seed);
        assert!(err.contains("seed"), "{err}");
        let err = decode_err(&bytes[..bytes.len() / 2], "fp", g.config().clone());
        assert!(err.contains("truncated"), "{err}");
        let err = decode_err(b"not an artifact", "fp", g.config().clone());
        assert!(err.contains("magic"), "{err}");
        let mut trailing = bytes.clone();
        trailing.push(0);
        let err = decode_err(&trailing, "fp", g.config().clone());
        assert!(err.contains("trailing"), "{err}");
        // Valid magic followed by a garbage (near-u64::MAX) length field
        // must error, not overflow/panic.
        let mut garbage_len = MAGIC.to_vec();
        garbage_len.extend_from_slice(&[0xFF; 8]);
        let err = decode_err(&garbage_len, "fp", g.config().clone());
        assert!(err.contains("truncated"), "{err}");
    }
}
