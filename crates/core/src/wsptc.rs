//! Weighted Syntactic Parsing Tree Constructor (paper Sec. III-D).
//!
//! Parses the answer-oriented sentences with the L-PCFG CKY parser into a
//! head-lexicalized dependency tree whose nodes are token indices, then
//! annotates every (child → parent) edge with a multi-head attention
//! weight (Eqs. 6–8). Higher weight = stronger dependence between the
//! node and its parent — the quantity both SGS (max) and the SCS
//! tie-break (min) consult.

use gced_nn::{EmbeddingTable, MultiHeadAttention};
use gced_parser::{CkyParser, DepTree};
use gced_text::Document;

/// A dependency tree with per-edge attention weights.
#[derive(Debug, Clone)]
pub struct WeightedTree {
    /// The tree over local token indices of the AOS document.
    pub tree: DepTree,
    /// `weights[i]` = attention weight between token *i* and its parent
    /// (0.0 for the root).
    pub weights: Vec<f64>,
}

impl WeightedTree {
    /// Attention weight between node `i` and its parent.
    pub fn edge_weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
}

/// Build the weighted tree for an analysed AOS document.
pub fn construct(
    parser: &CkyParser,
    mha: &MultiHeadAttention,
    emb: &EmbeddingTable,
    aos: &Document,
) -> WeightedTree {
    let tree = gced_parser::parse_document_with(aos, parser);
    let n = aos.len();
    let mut weights = vec![0.0f64; n];
    if n > 0 {
        let words: Vec<String> = aos.tokens.iter().map(|t| t.lower()).collect();
        let attn = mha.attend_words(&words, emb);
        for (i, weight) in weights.iter_mut().enumerate() {
            if let Some(p) = tree.parent(i) {
                // Symmetrized attention between the two endpoints: the
                // paper reads "attention from a node to its child node";
                // averaging both directions keeps the weight insensitive
                // to row-normalization artifacts.
                *weight = 0.5 * (attn.get(p, i) + attn.get(i, p)) as f64;
            }
        }
    }
    WeightedTree { tree, weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_nn::AttentionConfig;
    use gced_text::analyze;

    fn substrate() -> (CkyParser, MultiHeadAttention, EmbeddingTable) {
        let cfg = AttentionConfig {
            d_model: 32,
            heads: 4,
            d_k: 16,
            seed: 7,
            positional_weight: 0.35,
        };
        (
            CkyParser::embedded(),
            MultiHeadAttention::new(cfg),
            EmbeddingTable::new(32, 7),
        )
    }

    #[test]
    fn weights_cover_all_non_root_nodes() {
        let (parser, mha, emb) = substrate();
        let aos = analyze("The Broncos defeated the Panthers to earn the title.");
        let wt = construct(&parser, &mha, &emb, &aos);
        wt.tree.validate().unwrap();
        assert_eq!(wt.weights.len(), aos.len());
        for i in 0..aos.len() {
            if i == wt.tree.root() {
                assert_eq!(wt.edge_weight(i), 0.0);
            } else {
                assert!(wt.edge_weight(i) > 0.0, "node {i} weightless");
                assert!(wt.edge_weight(i) <= 1.0);
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let (parser, mha, emb) = substrate();
        let aos = analyze("The duke led troops in the battle.");
        let a = construct(&parser, &mha, &emb, &aos);
        let b = construct(&parser, &mha, &emb, &aos);
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn empty_document() {
        let (parser, mha, emb) = substrate();
        let aos = analyze("");
        let wt = construct(&parser, &mha, &emb, &aos);
        assert!(wt.tree.is_empty());
        assert!(wt.weights.is_empty());
    }

    #[test]
    fn multi_sentence_tree_is_connected() {
        let (parser, mha, emb) = substrate();
        let aos = analyze("The Broncos won the title. The team celebrated in Denver.");
        let wt = construct(&parser, &mha, &emb, &aos);
        wt.tree.validate().unwrap();
        assert_eq!(wt.tree.subtree(wt.tree.root()).len(), aos.len());
    }
}
