//! Evidence goodness metrics (paper Sec. II-B, Eqs. 1–5).
//!
//! Raw quantities follow the paper exactly:
//! * informativeness I(e): token F1 between the PLM's prediction on
//!   (question, evidence) and the input answer (Eq. 1);
//! * conciseness C(e): 1/L(e), or −∞ when the evidence is not longer
//!   than the answer (Eq. 2);
//! * readability R(e): 1/PPL(e) under the corpus LM (Eqs. 3–4).
//!
//! For the hybrid score H = αI + βR + γC (Eq. 5) the paper states
//! H ∈ [0, 1], which requires each term on a commensurate [0, 1] scale;
//! raw 1/PPL and 1/L live on tiny, corpus-dependent scales. The distiller
//! therefore uses **monotone normalizations**:
//! * R_norm = PPL_ref / (PPL + PPL_ref), with PPL_ref the mean sentence
//!   perplexity of the training corpus (R_norm = ½ at corpus-typical
//!   fluency, → 1 for highly fluent, → 0 for garbled);
//! * C_norm = min(1, (L(a) + 2) / L(e)) (= 1 when the evidence is within
//!   two tokens of the answer length, decaying harmonically like Eq. 2).
//!
//! Both normalizations preserve the orderings induced by Eqs. 2–4, so
//! every argmax the Grow-and-Clip search takes is unchanged in spirit;
//! raw values are also reported.

use gced_lm::TrigramLm;
use gced_metrics::overlap::token_f1;
use gced_qa::{QaModel, QuestionAnalysis};
use gced_text::Document;

/// All scores for one candidate evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceScores {
    /// Informativeness I(e) ∈ [0, 1] (Eq. 1).
    pub informativeness: f64,
    /// Raw conciseness 1/L(e) or −∞ (Eq. 2).
    pub conciseness_raw: f64,
    /// Raw readability 1/PPL(e) (Eq. 4).
    pub readability_raw: f64,
    /// Normalized conciseness ∈ [0, 1] (or −∞ on the discard branch).
    pub conciseness: f64,
    /// Normalized readability ∈ (0, 1).
    pub readability: f64,
    /// Hybrid score H(e) (Eq. 5) over the normalized terms.
    pub hybrid: f64,
}

/// Scores evidences against one (question, answer) pair.
pub struct EvidenceScorer<'a> {
    qa: &'a QaModel,
    lm: &'a TrigramLm,
    question: &'a str,
    q_analysis: QuestionAnalysis,
    answer: &'a str,
    answer_len: usize,
    ppl_ref: f64,
    weights: (f64, f64, f64),
}

impl<'a> EvidenceScorer<'a> {
    /// Build a scorer. `ppl_ref` is the corpus reference perplexity
    /// (see [`reference_perplexity`]); `weights` is the effective
    /// (α, β, γ).
    pub fn new(
        qa: &'a QaModel,
        lm: &'a TrigramLm,
        question: &'a str,
        answer: &'a str,
        ppl_ref: f64,
        weights: (f64, f64, f64),
    ) -> Self {
        let answer_len = answer.split_whitespace().count();
        EvidenceScorer {
            qa,
            lm,
            question,
            q_analysis: QuestionAnalysis::new(question),
            answer,
            answer_len,
            ppl_ref: ppl_ref.max(1.0),
            weights,
        }
    }

    /// The question analysis (shared with ASE).
    pub fn question_analysis(&self) -> &QuestionAnalysis {
        &self.q_analysis
    }

    /// The input answer.
    pub fn answer(&self) -> &str {
        self.answer
    }

    /// Score an evidence given as an analysed document.
    pub fn score_doc(&self, evidence: &Document) -> EvidenceScores {
        let words: Vec<String> = evidence.tokens.iter().map(|t| t.lower()).collect();
        let pred = self.qa.predict_analyzed(&self.q_analysis, evidence, self.question);
        let informativeness = token_f1(&pred.text, self.answer).f1;
        self.assemble(informativeness, &words)
    }

    /// Score an evidence given as lowercased tokens, reusing a
    /// previously computed informativeness value (the clip search
    /// evaluates many candidates whose I must be recomputed, but tests
    /// and diagnostics sometimes have it already).
    pub fn score_tokens(&self, words: &[String]) -> EvidenceScores {
        let text = words.join(" ");
        let pred = self.qa.predict(self.question, &text);
        let informativeness = token_f1(&pred.text, self.answer).f1;
        self.assemble(informativeness, words)
    }

    /// Score a node selection of an analysed AOS document (the form the
    /// clip search evaluates): evidence = the selected tokens in index
    /// order, detokenized with original casing for the QA model and
    /// lowercased for the LM.
    pub fn score_selection(
        &self,
        aos: &Document,
        selected: &std::collections::BTreeSet<usize>,
    ) -> EvidenceScores {
        let tokens: Vec<gced_text::Token> =
            selected.iter().map(|&i| aos.tokens[i].clone()).collect();
        let text = gced_text::join_tokens(&tokens);
        let words: Vec<String> = tokens.iter().map(|t| t.lower()).collect();
        let pred = self.qa.predict(self.question, &text);
        let informativeness = token_f1(&pred.text, self.answer).f1;
        self.assemble(informativeness, &words)
    }

    fn assemble(&self, informativeness: f64, words: &[String]) -> EvidenceScores {
        let len = words.len();
        let (conciseness_raw, conciseness) = if len > self.answer_len.max(0) {
            let raw = 1.0 / len as f64;
            let norm = ((self.answer_len as f64 + 2.0) / len as f64).min(1.0);
            (raw, norm)
        } else {
            (f64::NEG_INFINITY, f64::NEG_INFINITY)
        };
        let ppl = self.lm.perplexity(words);
        let readability_raw = if ppl.is_finite() { 1.0 / ppl } else { 0.0 };
        let readability = self.ppl_ref / (ppl + self.ppl_ref);
        let (a, b, g) = self.weights;
        let hybrid = if conciseness.is_finite() {
            a * informativeness + b * readability + g * conciseness
        } else {
            f64::NEG_INFINITY
        };
        EvidenceScores {
            informativeness,
            conciseness_raw,
            readability_raw,
            conciseness,
            readability,
            hybrid,
        }
    }
}

/// Mean sentence perplexity of a sample of the training corpus — the
/// reference point for readability normalization.
pub fn reference_perplexity(lm: &TrigramLm, corpus: &[Vec<String>], sample: usize) -> f64 {
    let take = corpus.len().min(sample.max(1));
    if take == 0 {
        return 50.0;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for sent in corpus.iter().take(take) {
        let ppl = lm.perplexity(sent);
        if ppl.is_finite() {
            total += ppl;
            n += 1;
        }
    }
    if n == 0 {
        50.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_qa::ModelProfile;

    fn corpus() -> Vec<Vec<String>> {
        [
            "the broncos defeated the panthers to earn the title",
            "the broncos won the final game",
            "the panthers lost the championship",
            "the team earned the title in denver",
        ]
        .iter()
        .map(|s| s.split(' ').map(String::from).collect())
        .collect()
    }

    fn scorer_parts() -> (QaModel, TrigramLm, f64) {
        let qa = QaModel::new(ModelProfile::plm());
        let lm = TrigramLm::train(&corpus());
        let ppl_ref = reference_perplexity(&lm, &corpus(), 100);
        (qa, lm, ppl_ref)
    }

    #[test]
    fn informative_evidence_scores_high_i() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(
            &qa,
            &lm,
            "Which team defeated the Panthers?",
            "Broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let good = gced_text::analyze("The Broncos defeated the Panthers.");
        let bad = gced_text::analyze("The weather was mild and calm today.");
        let sg = s.score_doc(&good);
        let sb = s.score_doc(&bad);
        assert!(sg.informativeness > sb.informativeness);
        assert!(sg.hybrid > sb.hybrid);
    }

    #[test]
    fn conciseness_discards_evidence_not_longer_than_answer() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Denver Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let too_short = s.score_tokens(&["denver".into(), "broncos".into()]);
        assert_eq!(too_short.conciseness, f64::NEG_INFINITY);
        assert_eq!(too_short.hybrid, f64::NEG_INFINITY);
        let ok = s.score_tokens(&["the".into(), "denver".into(), "broncos".into(), "won".into()]);
        assert!(ok.conciseness.is_finite());
        assert!(ok.hybrid.is_finite());
    }

    #[test]
    fn shorter_evidence_is_more_concise() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let short: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let long: Vec<String> =
            "the broncos won the final game in the city of denver that year"
                .split(' ')
                .map(String::from)
                .collect();
        let ss = s.score_tokens(&short);
        let sl = s.score_tokens(&long);
        assert!(ss.conciseness > sl.conciseness);
        assert!(ss.conciseness_raw > sl.conciseness_raw);
    }

    #[test]
    fn fluent_evidence_is_more_readable() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let fluent: Vec<String> = "the broncos won the final game".split(' ').map(String::from).collect();
        let garbled: Vec<String> = "game won final broncos the the".split(' ').map(String::from).collect();
        let sf = s.score_tokens(&fluent);
        let sg = s.score_tokens(&garbled);
        assert!(sf.readability > sg.readability);
        assert!(sf.readability_raw > sg.readability_raw);
    }

    #[test]
    fn normalized_scores_in_unit_interval() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let sc = s.score_tokens(&"the broncos won the game".split(' ').map(String::from).collect::<Vec<_>>());
        assert!((0.0..=1.0).contains(&sc.informativeness));
        assert!((0.0..=1.0).contains(&sc.conciseness));
        assert!((0.0..=1.0).contains(&sc.readability));
        assert!((0.0..=1.0).contains(&sc.hybrid), "H = {}", sc.hybrid);
    }

    #[test]
    fn normalization_preserves_raw_ordering() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let e1: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let e2: Vec<String> = "the broncos won the final game in denver".split(' ').map(String::from).collect();
        let s1 = s.score_tokens(&e1);
        let s2 = s.score_tokens(&e2);
        assert_eq!(
            s1.conciseness_raw > s2.conciseness_raw,
            s1.conciseness > s2.conciseness
        );
        assert_eq!(
            s1.readability_raw > s2.readability_raw,
            s1.readability > s2.readability
        );
    }

    #[test]
    fn reference_perplexity_is_positive_and_finite() {
        let lm = TrigramLm::train(&corpus());
        let r = reference_perplexity(&lm, &corpus(), 10);
        assert!(r.is_finite() && r > 0.0);
        assert_eq!(reference_perplexity(&lm, &[], 10), 50.0);
    }
}
