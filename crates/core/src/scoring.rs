//! Evidence goodness metrics (paper Sec. II-B, Eqs. 1–5).
//!
//! Raw quantities follow the paper exactly:
//! * informativeness I(e): token F1 between the PLM's prediction on
//!   (question, evidence) and the input answer (Eq. 1);
//! * conciseness C(e): 1/L(e), or −∞ when the evidence is not longer
//!   than the answer (Eq. 2);
//! * readability R(e): 1/PPL(e) under the corpus LM (Eqs. 3–4).
//!
//! For the hybrid score H = αI + βR + γC (Eq. 5) the paper states
//! H ∈ [0, 1], which requires each term on a commensurate [0, 1] scale;
//! raw 1/PPL and 1/L live on tiny, corpus-dependent scales. The distiller
//! therefore uses **monotone normalizations**:
//! * R_norm = PPL_ref / (PPL + PPL_ref), with PPL_ref the mean sentence
//!   perplexity of the training corpus (R_norm = ½ at corpus-typical
//!   fluency, → 1 for highly fluent, → 0 for garbled);
//! * C_norm = min(1, (L(a) + 2) / L(e)) (= 1 when the evidence is within
//!   two tokens of the answer length, decaying harmonically like Eq. 2).
//!
//! Both normalizations preserve the orderings induced by Eqs. 2–4, so
//! every argmax the Grow-and-Clip search takes is unchanged in spirit;
//! raw values are also reported.
//!
//! ## The selection-scoring hot path
//!
//! Both phases of the Grow-and-Clip search evaluate hundreds of
//! candidate selections of the *same* analysed document: the grow search
//! (ASE) trials sentence subsets of the context, the clip search (SCS)
//! trials token removals of the evidence. [`SearchContext`] is the one
//! incremental engine both run on: per document it owns the lowercased
//! LM word ids, the per-position LM scores of the current evidence, and
//! the QA span-score partials keyed by (sentence run, clue layout)
//! ([`gced_qa::SelectionScoreCache`]). Each candidate selection is then
//! scored with zero re-tokenization, replayed span partials for the
//! unchanged runs ([`gced_qa::QaModel::predict_selection_cached`]), and
//! an incremental log-prob walk
//! ([`gced_lm::TrigramLm::log_prob_after_removal`]) — all
//! **bitwise-identical** to scoring the selection from scratch, the
//! invariant the grow- and clip-search oracle tests pin down.

use gced_lm::{SeqScores, TrigramLm};
use gced_metrics::overlap::token_f1;
use gced_qa::{QaModel, QuestionAnalysis, SelectionScoreCache, SelectionScratch};
use gced_text::vocab::WordId;
use gced_text::Document;
use std::collections::BTreeSet;

/// All scores for one candidate evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceScores {
    /// Informativeness I(e) ∈ [0, 1] (Eq. 1).
    pub informativeness: f64,
    /// Raw conciseness 1/L(e) or −∞ (Eq. 2).
    pub conciseness_raw: f64,
    /// Raw readability 1/PPL(e) (Eq. 4).
    pub readability_raw: f64,
    /// Normalized conciseness ∈ [0, 1] (or −∞ on the discard branch).
    pub conciseness: f64,
    /// Normalized readability ∈ (0, 1).
    pub readability: f64,
    /// Hybrid score H(e) (Eq. 5) over the normalized terms.
    pub hybrid: f64,
}

/// Scores evidences against one (question, answer) pair.
pub struct EvidenceScorer<'a> {
    qa: &'a QaModel,
    lm: &'a TrigramLm,
    question: &'a str,
    q_analysis: QuestionAnalysis,
    answer: &'a str,
    answer_len: usize,
    ppl_ref: f64,
    weights: (f64, f64, f64),
}

/// Reusable buffers for selection scoring; create one per worker thread
/// and the candidate loop allocates nothing in steady state.
#[derive(Default)]
pub struct ScoreScratch {
    qa: SelectionScratch,
    indices: Vec<usize>,
    removed_pos: Vec<usize>,
}

impl<'a> EvidenceScorer<'a> {
    /// Build a scorer. `ppl_ref` is the corpus reference perplexity
    /// (see [`reference_perplexity`]); `weights` is the effective
    /// (α, β, γ).
    pub fn new(
        qa: &'a QaModel,
        lm: &'a TrigramLm,
        question: &'a str,
        answer: &'a str,
        ppl_ref: f64,
        weights: (f64, f64, f64),
    ) -> Self {
        let answer_len = answer.split_whitespace().count();
        EvidenceScorer {
            qa,
            lm,
            question,
            q_analysis: QuestionAnalysis::new(question),
            answer,
            answer_len,
            ppl_ref: ppl_ref.max(1.0),
            weights,
        }
    }

    /// The question analysis (shared with ASE).
    pub fn question_analysis(&self) -> &QuestionAnalysis {
        &self.q_analysis
    }

    /// The input answer.
    pub fn answer(&self) -> &str {
        self.answer
    }

    /// Score an evidence given as an analysed document.
    pub fn score_doc(&self, evidence: &Document) -> EvidenceScores {
        let words: Vec<String> = evidence.tokens.iter().map(|t| t.lower()).collect();
        let pred = self
            .qa
            .predict_analyzed(&self.q_analysis, evidence, self.question);
        let informativeness = token_f1(&pred.text, self.answer).f1;
        self.assemble(informativeness, words.len(), self.lm.perplexity(&words))
    }

    /// Score an evidence given as lowercased tokens (tests and
    /// diagnostics; the distiller itself scores selections).
    pub fn score_tokens(&self, words: &[String]) -> EvidenceScores {
        let text = words.join(" ");
        let doc = gced_text::analyze(&text);
        let pred = self
            .qa
            .predict_analyzed(&self.q_analysis, &doc, self.question);
        let informativeness = token_f1(&pred.text, self.answer).f1;
        self.assemble(informativeness, words.len(), self.lm.perplexity(words))
    }

    /// Score a node selection of an analysed AOS document: evidence =
    /// the selected tokens in index order, with original annotations
    /// (no re-tokenization).
    pub fn score_selection(&self, aos: &Document, selected: &BTreeSet<usize>) -> EvidenceScores {
        let indices: Vec<usize> = selected.iter().copied().collect();
        self.score_indices(aos, &indices, &mut ScoreScratch::default())
    }

    /// [`EvidenceScorer::score_selection`] over a sorted index slice with
    /// caller-provided buffers. One-shot path: [`SearchContext`] amortizes
    /// the per-document work when many selections of the same document
    /// are scored.
    pub fn score_indices(
        &self,
        aos: &Document,
        selected: &[usize],
        scratch: &mut ScoreScratch,
    ) -> EvidenceScores {
        let pred = self.qa.predict_selection(
            &self.q_analysis,
            aos,
            selected,
            self.question,
            &mut scratch.qa,
        );
        let informativeness = token_f1(&pred.text, self.answer).f1;
        let ids: Vec<WordId> = selected
            .iter()
            .map(|&i| self.lm.vocab().get(&aos.tokens[i].lower()))
            .collect();
        let ppl = self.lm.perplexity_ids(&ids);
        self.assemble(informativeness, selected.len(), ppl)
    }

    /// Start an incremental search session over one analysed document —
    /// the shared engine of the grow and clip phases.
    pub fn search_context<'s>(&'s self, doc: &'s Document) -> SearchContext<'s, 'a> {
        SearchContext {
            scorer: self,
            aos: doc,
            tok_ids: None,
            base: Vec::new(),
            pos_in_base: vec![usize::MAX; doc.len()],
            base_seq: None,
            qa_cache: SelectionScoreCache::new(),
        }
    }

    /// Combine the three terms (Eq. 5) from the already-computed parts.
    fn assemble(&self, informativeness: f64, len: usize, ppl: f64) -> EvidenceScores {
        let (conciseness_raw, conciseness) = if len > self.answer_len {
            let raw = 1.0 / len as f64;
            let norm = ((self.answer_len as f64 + 2.0) / len as f64).min(1.0);
            (raw, norm)
        } else {
            (f64::NEG_INFINITY, f64::NEG_INFINITY)
        };
        let readability_raw = if ppl.is_finite() { 1.0 / ppl } else { 0.0 };
        let readability = self.ppl_ref / (ppl + self.ppl_ref);
        let (a, b, g) = self.weights;
        let hybrid = if conciseness.is_finite() {
            a * informativeness + b * readability + g * conciseness
        } else {
            f64::NEG_INFINITY
        };
        EvidenceScores {
            informativeness,
            conciseness_raw,
            readability_raw,
            conciseness,
            readability,
            hybrid,
        }
    }
}

/// The incremental evidence-search engine for one analysed document —
/// the state both Grow-and-Clip phases share:
///
/// * **masked document projections** — QA predictions run over token
///   selections of the original analysis, never a re-tokenization;
/// * **QA span-score partials** keyed by (sentence run, clue layout)
///   ([`gced_qa::SelectionScoreCache`]) — near-identical selections
///   (adjacent grow trials, consecutive clip iterations) re-score only
///   the runs that changed;
/// * **LM caches** — per-token word ids interned once, and the current
///   evidence ("base") carries per-position trigram scores so a removal
///   costs an incremental log-prob walk.
///
/// Every score produced here is bitwise-identical to
/// [`EvidenceScorer::score_selection`] on the corresponding selection.
pub struct SearchContext<'s, 'a> {
    scorer: &'s EvidenceScorer<'a>,
    aos: &'s Document,
    /// LM word id per document token (interned on first `set_base` —
    /// grow-only contexts never touch the LM).
    tok_ids: Option<Vec<WordId>>,
    /// Current evidence selection, ascending token indices.
    base: Vec<usize>,
    /// token index -> position in `base` (usize::MAX when absent).
    pos_in_base: Vec<usize>,
    /// Cached per-position LM scores of the base sequence.
    base_seq: Option<SeqScores>,
    /// Span-score partials shared by every selection scored here.
    qa_cache: SelectionScoreCache,
}

impl<'s, 'a> SearchContext<'s, 'a> {
    /// The document this context searches over.
    pub fn doc(&self) -> &'s Document {
        self.aos
    }

    /// The input answer selections are scored against.
    pub fn answer(&self) -> &'a str {
        self.scorer.answer
    }

    /// Informativeness (Eq. 1 F1) of an arbitrary selection — the grow
    /// search's trial metric, served through the span-score cache.
    pub fn informativeness_of(&mut self, selected: &[usize]) -> f64 {
        let Self {
            scorer,
            aos,
            qa_cache,
            ..
        } = self;
        let pred = scorer.qa.predict_selection_cached(
            &scorer.q_analysis,
            aos,
            selected,
            scorer.question,
            qa_cache,
        );
        token_f1(&pred.text, scorer.answer).f1
    }

    /// Cache-effectiveness counters of the span-score cache:
    /// (runs replayed, runs scored fresh).
    pub fn span_cache_stats(&self) -> (u64, u64) {
        (self.qa_cache.run_hits, self.qa_cache.run_misses)
    }

    /// Install the current evidence selection (ascending token indices)
    /// and precompute its LM cache.
    pub fn set_base<I: IntoIterator<Item = usize>>(&mut self, selection: I) {
        for &i in &self.base {
            self.pos_in_base[i] = usize::MAX;
        }
        self.base.clear();
        self.base.extend(selection);
        debug_assert!(
            self.base.windows(2).all(|w| w[0] < w[1]),
            "base must be ascending"
        );
        for (pos, &i) in self.base.iter().enumerate() {
            self.pos_in_base[i] = pos;
        }
        let tok_ids = self.tok_ids.get_or_insert_with(|| {
            self.aos
                .tokens
                .iter()
                .map(|t| self.scorer.lm.vocab().get(&t.lower()))
                .collect()
        });
        let ids: Vec<WordId> = self.base.iter().map(|&i| tok_ids[i]).collect();
        self.base_seq = Some(self.scorer.lm.seq_scores(ids));
    }

    /// The current base selection.
    pub fn base(&self) -> &[usize] {
        &self.base
    }

    /// Score the base selection itself (through the span-score cache).
    pub fn score_base(&mut self, scratch: &mut ScoreScratch) -> EvidenceScores {
        self.score_removal_cached(&[], scratch)
    }

    /// Score the evidence obtained by removing `removed` (a sorted set
    /// of token indices, all members of the base) from the base.
    ///
    /// This is the *uncached* form (`&self`), used where the context is
    /// shared across worker threads (the parallel clip fan-out);
    /// sequential callers use [`SearchContext::score_removal_cached`],
    /// which produces bitwise-identical scores through the span cache.
    pub fn score_removal(&self, removed: &[usize], scratch: &mut ScoreScratch) -> EvidenceScores {
        self.stage_removal(removed, scratch);
        let informativeness = self.informativeness_of_remaining(scratch);
        let ppl = self.remaining_perplexity(scratch);
        self.scorer
            .assemble(informativeness, scratch.indices.len(), ppl)
    }

    /// [`SearchContext::score_removal`] through the span-score cache:
    /// runs unchanged since earlier selections replay their memoized
    /// best span instead of re-scoring.
    pub fn score_removal_cached(
        &mut self,
        removed: &[usize],
        scratch: &mut ScoreScratch,
    ) -> EvidenceScores {
        self.stage_removal(removed, scratch);
        let informativeness = self.informativeness_of_remaining_cached(scratch);
        let ppl = self.remaining_perplexity(scratch);
        self.scorer
            .assemble(informativeness, scratch.indices.len(), ppl)
    }

    /// Fill the scratch buffers for a removal: sorted base positions of
    /// the removed tokens plus the remaining token indices in order.
    fn stage_removal(&self, removed: &[usize], scratch: &mut ScoreScratch) {
        scratch.removed_pos.clear();
        for &t in removed {
            let pos = self.pos_in_base[t];
            debug_assert!(pos != usize::MAX, "removed token {t} not in base");
            scratch.removed_pos.push(pos);
        }
        scratch.removed_pos.sort_unstable();
        scratch.indices.clear();
        let mut rm = scratch.removed_pos.iter().peekable();
        for (pos, &tok) in self.base.iter().enumerate() {
            if rm.peek() == Some(&&pos) {
                rm.next();
            } else {
                scratch.indices.push(tok);
            }
        }
    }

    fn remaining_perplexity(&self, scratch: &ScoreScratch) -> f64 {
        let base_seq = self
            .base_seq
            .as_ref()
            .expect("set_base before scoring removals");
        self.scorer
            .lm
            .perplexity_after_removal(base_seq, &scratch.removed_pos)
    }

    fn informativeness_of_remaining(&self, scratch: &mut ScoreScratch) -> f64 {
        let pred = self.scorer.qa.predict_selection(
            &self.scorer.q_analysis,
            self.aos,
            &scratch.indices,
            self.scorer.question,
            &mut scratch.qa,
        );
        token_f1(&pred.text, self.scorer.answer).f1
    }

    /// Cached twin of [`SearchContext::informativeness_of_remaining`].
    fn informativeness_of_remaining_cached(&mut self, scratch: &ScoreScratch) -> f64 {
        let SearchContext {
            scorer, qa_cache, ..
        } = self;
        let pred = scorer.qa.predict_selection_cached(
            &scorer.q_analysis,
            self.aos,
            &scratch.indices,
            scorer.question,
            qa_cache,
        );
        token_f1(&pred.text, scorer.answer).f1
    }

    /// Hybrid score of the evidence after removing `removed`, with the
    /// conciseness-discard shortcut: a remainder not longer than the
    /// answer scores −∞ (Eq. 2) whatever its other terms, so the QA and
    /// LM work is skipped. Always equal to
    /// `self.score_removal(removed, scratch).hybrid`.
    pub fn hybrid_after_removal(&self, removed: &[usize], scratch: &mut ScoreScratch) -> f64 {
        let remaining = self.base.len() - removed.len();
        if remaining <= self.scorer.answer_len {
            return f64::NEG_INFINITY;
        }
        self.score_removal(removed, scratch).hybrid
    }

    /// [`SearchContext::score_removal_cached`] with an exact
    /// competitiveness prune: the conciseness and readability terms are
    /// cheap (O(1) and an incremental LM walk), and informativeness is
    /// bounded by 1, so when `α·1 + β·R + γ·C < floor` the QA
    /// prediction — the expensive term — is provably pointless and
    /// `None` is returned.
    ///
    /// When a removal survives the prune, the returned [`EvidenceScores`]
    /// is bitwise-equal to [`SearchContext::score_removal`] (the upper
    /// bound shares every intermediate float and the summation order
    /// with the full score, so fp monotonicity makes the prune sound);
    /// `None` guarantees the removal's hybrid is below `floor`. The −∞
    /// discard shortcut reports the discard scores without the QA/LM
    /// work.
    pub fn score_if_competitive(
        &mut self,
        removed: &[usize],
        floor: f64,
        scratch: &mut ScoreScratch,
    ) -> Option<EvidenceScores> {
        let remaining = self.base.len() - removed.len();
        if remaining <= self.scorer.answer_len {
            // Discard branch of Eq. 2: the hybrid is −∞ regardless of
            // the other terms, and a discarded candidate is never
            // applied, so the expensive terms are not computed.
            return Some(EvidenceScores {
                informativeness: 0.0,
                conciseness_raw: f64::NEG_INFINITY,
                readability_raw: 0.0,
                conciseness: f64::NEG_INFINITY,
                readability: 0.0,
                hybrid: f64::NEG_INFINITY,
            });
        }
        self.stage_removal(removed, scratch);
        let ppl = self.remaining_perplexity(scratch);
        let conciseness = ((self.scorer.answer_len as f64 + 2.0) / remaining as f64).min(1.0);
        let readability = self.scorer.ppl_ref / (ppl + self.scorer.ppl_ref);
        let (a, b, g) = self.scorer.weights;
        let upper_bound = a * 1.0 + b * readability + g * conciseness;
        if upper_bound < floor {
            return None;
        }
        let informativeness = self.informativeness_of_remaining_cached(scratch);
        Some(EvidenceScores {
            informativeness,
            conciseness_raw: 1.0 / remaining as f64,
            readability_raw: if ppl.is_finite() { 1.0 / ppl } else { 0.0 },
            conciseness,
            readability,
            hybrid: a * informativeness + b * readability + g * conciseness,
        })
    }
}

/// Word-packed membership bitset over `0..n` — shared by the grow
/// search (sentence membership) and the clip search (evidence-token
/// membership): a membership test is one shift and mask instead of a
/// set scan or clone.
pub(crate) struct Bitset {
    words: Vec<u64>,
    n: usize,
}

impl Bitset {
    /// An empty bitset over `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        Bitset {
            words: vec![0; n.div_ceil(64)],
            n,
        }
    }

    /// A bitset over `0..n` with the given members set.
    pub(crate) fn from_iter<I: IntoIterator<Item = usize>>(n: usize, iter: I) -> Self {
        let mut b = Bitset::new(n);
        for i in iter {
            b.insert(i);
        }
        b
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&i| self.contains(i))
    }
}

/// Mean sentence perplexity of a sample of the training corpus — the
/// reference point for readability normalization.
pub fn reference_perplexity(lm: &TrigramLm, corpus: &[Vec<String>], sample: usize) -> f64 {
    let take = corpus.len().min(sample.max(1));
    if take == 0 {
        return 50.0;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for sent in corpus.iter().take(take) {
        let ppl = lm.perplexity(sent);
        if ppl.is_finite() {
            total += ppl;
            n += 1;
        }
    }
    if n == 0 {
        50.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_qa::ModelProfile;

    fn corpus() -> Vec<Vec<String>> {
        [
            "the broncos defeated the panthers to earn the title",
            "the broncos won the final game",
            "the panthers lost the championship",
            "the team earned the title in denver",
        ]
        .iter()
        .map(|s| s.split(' ').map(String::from).collect())
        .collect()
    }

    fn scorer_parts() -> (QaModel, TrigramLm, f64) {
        let qa = QaModel::new(ModelProfile::plm());
        let lm = TrigramLm::train(&corpus());
        let ppl_ref = reference_perplexity(&lm, &corpus(), 100);
        (qa, lm, ppl_ref)
    }

    #[test]
    fn informative_evidence_scores_high_i() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(
            &qa,
            &lm,
            "Which team defeated the Panthers?",
            "Broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let good = gced_text::analyze("The Broncos defeated the Panthers.");
        let bad = gced_text::analyze("The weather was mild and calm today.");
        let sg = s.score_doc(&good);
        let sb = s.score_doc(&bad);
        assert!(sg.informativeness > sb.informativeness);
        assert!(sg.hybrid > sb.hybrid);
    }

    #[test]
    fn conciseness_discards_evidence_not_longer_than_answer() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(
            &qa,
            &lm,
            "Who won?",
            "Denver Broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let too_short = s.score_tokens(&["denver".into(), "broncos".into()]);
        assert_eq!(too_short.conciseness, f64::NEG_INFINITY);
        assert_eq!(too_short.hybrid, f64::NEG_INFINITY);
        let ok = s.score_tokens(&[
            "the".into(),
            "denver".into(),
            "broncos".into(),
            "won".into(),
        ]);
        assert!(ok.conciseness.is_finite());
        assert!(ok.hybrid.is_finite());
    }

    #[test]
    fn shorter_evidence_is_more_concise() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let short: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let long: Vec<String> = "the broncos won the final game in the city of denver that year"
            .split(' ')
            .map(String::from)
            .collect();
        let ss = s.score_tokens(&short);
        let sl = s.score_tokens(&long);
        assert!(ss.conciseness > sl.conciseness);
        assert!(ss.conciseness_raw > sl.conciseness_raw);
    }

    #[test]
    fn fluent_evidence_is_more_readable() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let fluent: Vec<String> = "the broncos won the final game"
            .split(' ')
            .map(String::from)
            .collect();
        let garbled: Vec<String> = "game won final broncos the the"
            .split(' ')
            .map(String::from)
            .collect();
        let sf = s.score_tokens(&fluent);
        let sg = s.score_tokens(&garbled);
        assert!(sf.readability > sg.readability);
        assert!(sf.readability_raw > sg.readability_raw);
    }

    #[test]
    fn normalized_scores_in_unit_interval() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let sc = s.score_tokens(
            &"the broncos won the game"
                .split(' ')
                .map(String::from)
                .collect::<Vec<_>>(),
        );
        assert!((0.0..=1.0).contains(&sc.informativeness));
        assert!((0.0..=1.0).contains(&sc.conciseness));
        assert!((0.0..=1.0).contains(&sc.readability));
        assert!((0.0..=1.0).contains(&sc.hybrid), "H = {}", sc.hybrid);
    }

    #[test]
    fn normalization_preserves_raw_ordering() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let e1: Vec<String> = "the broncos won".split(' ').map(String::from).collect();
        let e2: Vec<String> = "the broncos won the final game in denver"
            .split(' ')
            .map(String::from)
            .collect();
        let s1 = s.score_tokens(&e1);
        let s2 = s.score_tokens(&e2);
        assert_eq!(
            s1.conciseness_raw > s2.conciseness_raw,
            s1.conciseness > s2.conciseness
        );
        assert_eq!(
            s1.readability_raw > s2.readability_raw,
            s1.readability > s2.readability
        );
    }

    #[test]
    fn reference_perplexity_is_positive_and_finite() {
        let lm = TrigramLm::train(&corpus());
        let r = reference_perplexity(&lm, &corpus(), 10);
        assert!(r.is_finite() && r > 0.0);
        assert_eq!(reference_perplexity(&lm, &[], 10), 50.0);
    }

    #[test]
    fn search_context_matches_one_shot_scoring_bitwise() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(
            &qa,
            &lm,
            "Which team defeated the Panthers?",
            "Broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let aos = gced_text::analyze(
            "The Denver Broncos defeated the Carolina Panthers to earn the title. \
             The band played all night in the stadium.",
        );
        let base: Vec<usize> = (0..aos.len()).collect();
        let mut ds = s.search_context(&aos);
        ds.set_base(base.iter().copied());
        let mut scratch = ScoreScratch::default();
        // Try several removal sets, including empty and near-total.
        let removals: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![aos.len() - 1],
            vec![3, 4, 5],
            (6..aos.len()).collect(),
            vec![0, 2, 4, 6, 8, 10],
        ];
        for removed in removals {
            let remaining: BTreeSet<usize> = base
                .iter()
                .copied()
                .filter(|i| !removed.contains(i))
                .collect();
            let one_shot = s.score_selection(&aos, &remaining);
            let incremental = ds.score_removal(&removed, &mut scratch);
            assert_eq!(one_shot, incremental, "removal {removed:?}");
            let through_cache = ds.score_removal_cached(&removed, &mut scratch);
            assert_eq!(one_shot, through_cache, "cached removal {removed:?}");
            let h = ds.hybrid_after_removal(&removed, &mut scratch);
            assert!(
                h == one_shot.hybrid || (h.is_infinite() && one_shot.hybrid.is_infinite()),
                "hybrid shortcut mismatch for {removed:?}: {h} vs {}",
                one_shot.hybrid
            );
        }
        let (hits, misses) = ds.span_cache_stats();
        assert!(hits > 0, "repeated runs never replayed ({hits}/{misses})");
    }

    #[test]
    fn search_context_rebase_after_clip() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(&qa, &lm, "Who won?", "Broncos", ppl_ref, (0.5, 0.2, 0.3));
        let aos = gced_text::analyze("The Broncos won the final game in Denver.");
        let mut ds = s.search_context(&aos);
        ds.set_base(0..aos.len());
        let mut scratch = ScoreScratch::default();
        let first = ds.score_removal(&[5, 6], &mut scratch);
        // Re-base onto the clipped evidence and verify parity again.
        let new_base: Vec<usize> = (0..aos.len()).filter(|i| ![5, 6].contains(i)).collect();
        ds.set_base(new_base.iter().copied());
        let rebased = ds.score_base(&mut scratch);
        assert_eq!(first, rebased);
    }

    #[test]
    fn informativeness_of_matches_one_shot_scoring() {
        let (qa, lm, ppl_ref) = scorer_parts();
        let s = EvidenceScorer::new(
            &qa,
            &lm,
            "Which team defeated the Panthers?",
            "Broncos",
            ppl_ref,
            (0.5, 0.2, 0.3),
        );
        let doc = gced_text::analyze(
            "The weather was mild. The Denver Broncos defeated the Carolina Panthers. \
             Tickets sold out early.",
        );
        let mut ctx = s.search_context(&doc);
        for sel in [
            (0..doc.len()).collect::<Vec<_>>(),
            doc.sentences
                .iter()
                .skip(1)
                .flat_map(|x| x.token_start..x.token_end)
                .collect(),
        ] {
            let set: BTreeSet<usize> = sel.iter().copied().collect();
            let one_shot = s.score_selection(&doc, &set);
            let inc = ctx.informativeness_of(&sel);
            assert_eq!(one_shot.informativeness.to_bits(), inc.to_bits());
        }
    }
}
