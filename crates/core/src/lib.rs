//! # gced — Grow-and-Clip Evidence Distillation
//!
//! The core library of this reproduction: the five-module pipeline of
//! the ICDE 2022 paper *Grow-and-Clip: Informative-yet-Concise Evidence
//! Distillation for Answer Explanation* (Chen, Xiao, Liu).
//!
//! ```text
//! (question, answer, context)
//!        │
//!        ▼
//!   ASE — Answer-oriented Sentences Extractor      (Sec. III-B)
//!        ▼
//!   QWS — Question-relevant Words Selector         (Sec. III-C)
//!        ▼
//!   WSPTC — Weighted Syntactic Parsing Tree        (Sec. III-D)
//!        ▼
//!   EFC — Evidence Forest Constructor              (Sec. III-E)
//!        ▼
//!   OEC — Optimal Evidence Distiller (SGS + SCS)   (Sec. III-F)
//!        ▼
//!   informative-yet-concise, readable evidence
//! ```
//!
//! The pipeline object [`Gced`] owns every substrate: the trained PLM
//! substitute (`gced-qa`), the lexicon (`gced-lexicon`), the L-PCFG
//! parser (`gced-parser`), the attention layer (`gced-nn`) and the
//! corpus language model (`gced-lm`). [`Gced::fit`] trains/fits them on
//! a dataset; [`Gced::distill`] produces one evidence with a full trace.
//!
//! ```no_run
//! use gced_datasets::{generate, DatasetKind, GeneratorConfig};
//! use gced::{Gced, GcedConfig};
//!
//! let ds = generate(DatasetKind::Squad11, GeneratorConfig::tiny(42));
//! let gced = Gced::fit(&ds, GcedConfig::default());
//! let ex = &ds.dev.examples[0];
//! let d = gced.distill(&ex.question, &ex.answer, &ex.context).unwrap();
//! println!("evidence: {}", d.evidence);
//! ```

pub mod ase;
pub mod cache;
pub mod config;
pub mod efc;
pub mod oec;
pub mod qws;
pub mod scoring;
pub mod trace;
pub mod wsptc;

pub use config::{Ablation, ClipMode, GcedConfig};
pub use scoring::{EvidenceScorer, EvidenceScores};
pub use trace::DistillTrace;

use gced_datasets::Dataset;
use gced_lexicon::Lexicon;
use gced_lm::TrigramLm;
use gced_nn::{AttentionConfig, EmbeddingTable, MultiHeadAttention};
use gced_parser::CkyParser;
use gced_qa::{ModelProfile, QaModel};
use gced_text::{analyze, join_tokens, Document};
use std::collections::BTreeSet;
use std::fmt;

/// Distillation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistillError {
    /// The input answer is empty (nothing to explain).
    EmptyAnswer,
    /// The context contains no tokens.
    EmptyContext,
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistillError::EmptyAnswer => write!(f, "input answer is empty"),
            DistillError::EmptyContext => write!(f, "context contains no tokens"),
        }
    }
}

impl std::error::Error for DistillError {}

/// One distilled evidence plus its quality scores and trace.
#[derive(Debug, Clone)]
pub struct Distillation {
    /// The final evidence text (nodes of the clipped evidence tree,
    /// rearranged by token index — Sec. III-F).
    pub evidence: String,
    /// The evidence tokens (surface forms, in order).
    pub evidence_tokens: Vec<String>,
    /// Scores of the final evidence (Eqs. 1–5).
    pub scores: EvidenceScores,
    /// The answer-oriented sentences the evidence was distilled from.
    pub aos_text: String,
    /// Fraction of context words removed (the paper reports 78.5 % on
    /// SQuAD / 87.2 % on TriviaQA).
    pub word_reduction: f64,
    /// Full decision trace.
    pub trace: DistillTrace,
}

/// Per-call knobs of the distillation paths (not part of the public
/// configuration: semantics are identical on every path).
#[derive(Debug, Clone, Copy)]
struct DistillOpts {
    /// Run the clip search through the reference oracle.
    reference_clip: bool,
    /// Run the grow search (ASE) through the reference oracle.
    reference_ase: bool,
    /// Allow candidate-level parallelism inside the clip search.
    parallel_clip: bool,
}

impl Default for DistillOpts {
    fn default() -> Self {
        DistillOpts {
            reference_clip: false,
            reference_ase: false,
            parallel_clip: true,
        }
    }
}

/// Embedding/attention model width (fixed across the pipeline).
const D_MODEL: usize = 64;

/// The GCED pipeline with all fitted substrates.
#[derive(Clone)]
pub struct Gced {
    config: GcedConfig,
    qa: QaModel,
    lexicon: Lexicon,
    parser: CkyParser,
    attention: MultiHeadAttention,
    embeddings: EmbeddingTable,
    lm: TrigramLm,
    ppl_ref: f64,
}

impl Gced {
    /// Fit every substrate on a dataset: train the PLM substitute on the
    /// training split, train the trigram LM and fit embeddings on the
    /// corpus, and freeze the attention layer from the config seed.
    pub fn fit(dataset: &Dataset, config: GcedConfig) -> Self {
        let corpus = dataset.corpus_sentences();
        Self::fit_with_corpus(&dataset.train.examples, &corpus, config)
    }

    /// [`Gced::fit`] from explicit parts (used by experiments that train
    /// on modified splits).
    pub fn fit_with_corpus(
        train: &[gced_datasets::QaExample],
        corpus: &[Vec<String>],
        config: GcedConfig,
    ) -> Self {
        let mut qa = QaModel::new(ModelProfile::plm());
        qa.train(train);
        let lm = TrigramLm::train(corpus);
        let ppl_ref = scoring::reference_perplexity(&lm, corpus, 512);
        let mut embeddings = EmbeddingTable::new(D_MODEL, config.seed);
        // Fit embeddings on a bounded corpus sample (distributional
        // signal saturates quickly on the synthetic corpora).
        let sample: Vec<Vec<String>> = corpus.iter().take(1500).cloned().collect();
        embeddings.fit(&sample, 2, 2, 0.25);
        Self::assemble(config, qa, lm, embeddings, ppl_ref)
    }

    /// Assemble a pipeline from its fitted substrates plus the cheap
    /// seeded/embedded ones (lexicon, parser, attention). Shared by
    /// [`Gced::fit_with_corpus`] and the fit-cache decoder
    /// ([`cache`]), so a cached pipeline is built exactly like a fresh
    /// one.
    pub(crate) fn assemble(
        config: GcedConfig,
        qa: QaModel,
        lm: TrigramLm,
        embeddings: EmbeddingTable,
        ppl_ref: f64,
    ) -> Self {
        let attn_cfg = AttentionConfig {
            d_model: D_MODEL,
            heads: 16,
            d_k: 64,
            seed: config.seed,
            positional_weight: 0.35,
        };
        Gced {
            config,
            qa,
            lexicon: Lexicon::embedded(),
            parser: CkyParser::embedded(),
            attention: MultiHeadAttention::new(attn_cfg),
            embeddings,
            lm,
            ppl_ref,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &GcedConfig {
        &self.config
    }

    /// Replace the configuration (ablation sweeps reuse fitted substrates).
    pub fn with_config(mut self, config: GcedConfig) -> Self {
        self.config = config;
        self
    }

    /// Memoize per-sentence CKY parses in a bounded LRU of `capacity`
    /// POS-tag signatures (`0` disables). Long-lived servers enable
    /// this so repeated sentences across requests parse once; output is
    /// bit-identical with the cache cold, warm, or absent
    /// ([`gced_parser::ParseCache`]).
    pub fn with_parse_cache(mut self, capacity: usize) -> Self {
        self.parser = self.parser.with_parse_cache(capacity);
        self
    }

    /// Hit/miss/occupancy counters of the parse cache, if one is
    /// installed via [`Gced::with_parse_cache`].
    pub fn parse_cache_stats(&self) -> Option<gced_parser::ParseCacheStats> {
        self.parser.parse_cache_stats()
    }

    /// Pre-fill the parse cache by analysing and parsing `context`
    /// through the exact per-sentence path a distillation uses, so a
    /// long-lived server's first requests hit a warm cache. Returns the
    /// number of sentences parsed; a no-op (0) without a parse cache.
    pub fn warm_parse_cache(&self, context: &str) -> usize {
        if self.parse_cache_stats().is_none() {
            return 0;
        }
        let doc = analyze(context);
        if doc.is_empty() {
            return 0;
        }
        let _ = gced_parser::parse_document_with(&doc, &self.parser);
        doc.sentences.len()
    }

    /// The internal PLM-substitute QA model.
    pub fn qa_model(&self) -> &QaModel {
        &self.qa
    }

    /// The corpus language model.
    pub fn lm(&self) -> &TrigramLm {
        &self.lm
    }

    /// Distill an evidence for (question, answer, context) —
    /// the paper's e_i for the tuple (q_i, a_i, c_i).
    pub fn distill(
        &self,
        question: &str,
        answer: &str,
        context: &str,
    ) -> Result<Distillation, DistillError> {
        self.distill_opts(question, answer, context, DistillOpts::default())
    }

    /// [`Gced::distill`] running the clip search through the paper-
    /// literal reference formulation ([`oec::reference::clip`]) instead
    /// of the incremental engine. Exposed for the oracle-equivalence
    /// property tests; the two paths must produce identical output.
    #[doc(hidden)]
    pub fn distill_with_reference_clip(
        &self,
        question: &str,
        answer: &str,
        context: &str,
    ) -> Result<Distillation, DistillError> {
        let opts = DistillOpts {
            reference_clip: true,
            ..DistillOpts::default()
        };
        self.distill_opts(question, answer, context, opts)
    }

    /// [`Gced::distill`] running **both** search phases through their
    /// paper-literal reference formulations ([`ase::reference::extract`]
    /// and [`oec::reference::clip`]) instead of the shared incremental
    /// engine. Exposed for the oracle-equivalence property tests; the
    /// two paths must produce identical output.
    #[doc(hidden)]
    pub fn distill_with_reference_search(
        &self,
        question: &str,
        answer: &str,
        context: &str,
    ) -> Result<Distillation, DistillError> {
        let opts = DistillOpts {
            reference_clip: true,
            reference_ase: true,
            ..DistillOpts::default()
        };
        self.distill_opts(question, answer, context, opts)
    }

    fn distill_opts(
        &self,
        question: &str,
        answer: &str,
        context: &str,
        opts: DistillOpts,
    ) -> Result<Distillation, DistillError> {
        if answer.trim().is_empty() {
            return Err(DistillError::EmptyAnswer);
        }
        let ctx_doc = {
            let _s = gced_obs::span("analyze");
            analyze(context)
        };
        if ctx_doc.is_empty() {
            return Err(DistillError::EmptyContext);
        }
        let mut trace = DistillTrace::default();
        let weights = self.config.effective_weights();
        let scorer =
            EvidenceScorer::new(&self.qa, &self.lm, question, answer, self.ppl_ref, weights);

        // ---- ASE (grow phase of the shared search engine) ---------------
        let aos_text = if self.config.ablation.use_ase {
            let _grow_span = gced_obs::span("grow");
            let r = if opts.reference_ase {
                ase::reference::extract(
                    &self.qa,
                    scorer.question_analysis(),
                    question,
                    answer,
                    &ctx_doc,
                    self.config.max_ase_sentences,
                )
            } else {
                let mut grow = scorer.search_context(&ctx_doc);
                let r = ase::extract(&mut grow, self.config.max_ase_sentences);
                let (hits, misses) = grow.span_cache_stats();
                gced_obs::counter("span_cache_hits", hits);
                gced_obs::counter("span_cache_misses", misses);
                r
            };
            let text = ase::subset_text(&ctx_doc, &r.sentences);
            trace.ase = Some(r);
            text
        } else {
            context.to_string()
        };
        let aos = {
            let _s = gced_obs::span("analyze");
            analyze(&aos_text)
        };
        if aos.is_empty() {
            return Err(DistillError::EmptyContext);
        }

        // ---- answer tokens in the AOS -------------------------------------
        let answer_tokens = locate_answer(&aos, answer);
        trace.answer_words = answer_tokens
            .iter()
            .map(|&i| aos.tokens[i].text.clone())
            .collect();

        // ---- QWS -----------------------------------------------------------
        let clue_tokens = if self.config.ablation.use_qws {
            let r = qws::select(&self.lexicon, question, &aos, &answer_tokens);
            trace.significant_words = r.significant_words;
            trace.clue_words = r
                .clue_tokens
                .iter()
                .map(|&i| aos.tokens[i].text.clone())
                .collect();
            r.clue_tokens
        } else {
            Vec::new()
        };

        // ---- WSPTC ----------------------------------------------------------
        let wt = {
            let _s = gced_obs::span("wsptc");
            wsptc::construct(&self.parser, &self.attention, &self.embeddings, &aos)
        };

        // ---- EFC ------------------------------------------------------------
        let forest = efc::construct(&wt.tree, &clue_tokens, &answer_tokens);
        trace.forest_size = forest.len();
        if forest.is_empty() {
            // No clue and no answer tokens: fall back to the first AOS
            // sentence as the evidence (failure injection path).
            trace.fallback = true;
            let first: BTreeSet<usize> = aos
                .sentences
                .first()
                .map(|s| (s.token_start..s.token_end).collect())
                .unwrap_or_default();
            return Ok(self.finish(&aos, &aos_text, &ctx_doc, first, &scorer, None, trace));
        }

        // ---- OEC: SGS -------------------------------------------------------
        let (mut te, te_root, grow_steps) = if self.config.ablation.use_grow {
            let _s = gced_obs::span("oec.grow");
            let (te, root, steps) =
                oec::grow_with_order(&wt, &forest, self.config.grow_max_attention);
            (te, root, steps)
        } else {
            // Ablation: emit the disconnected forest directly; the
            // "root" is the shallowest forest root.
            let nodes = forest.all_nodes();
            let root = forest
                .trees
                .iter()
                .map(|t| t.root)
                .min_by_key(|&r| wt.tree.depth(r))
                .expect("forest non-empty");
            (nodes, root, Vec::new())
        };
        trace.grow_steps = grow_steps;

        // ---- OEC: SCS -------------------------------------------------------
        let mut final_scores = None;
        if self.config.ablation.use_clip {
            let _clip_span = gced_obs::span("clip");
            let protected = if self.config.clip_protect_forest {
                forest.all_nodes()
            } else {
                BTreeSet::new()
            };
            trace.clip_steps = if opts.reference_clip {
                oec::reference::clip(
                    &wt,
                    &mut te,
                    te_root,
                    &protected,
                    &scorer,
                    &aos,
                    self.config.clip,
                )
            } else {
                let (steps, scores) = oec::clip_with_options(
                    &wt,
                    &mut te,
                    te_root,
                    &protected,
                    &scorer,
                    &aos,
                    self.config.clip,
                    opts.parallel_clip,
                );
                final_scores = Some(scores);
                steps
            };
        }

        Ok(self.finish(&aos, &aos_text, &ctx_doc, te, &scorer, final_scores, trace))
    }

    /// Distill a batch of (question, answer, context) tuples, fanning
    /// examples out across worker threads.
    ///
    /// Output is element-wise identical to calling [`Gced::distill`] on
    /// each tuple in order, regardless of thread count or scheduling:
    /// results are written back by input index and every distillation is
    /// deterministic. Candidate-level parallelism inside each clip
    /// search is disabled here — the batch dimension already saturates
    /// the workers.
    pub fn distill_batch<Q, A, C>(
        &self,
        items: &[(Q, A, C)],
    ) -> Vec<Result<Distillation, DistillError>>
    where
        Q: AsRef<str> + Sync,
        A: AsRef<str> + Sync,
        C: AsRef<str> + Sync,
    {
        let opts = DistillOpts {
            parallel_clip: false,
            ..DistillOpts::default()
        };
        gced_par::par_map(items, |_, (q, a, c)| {
            self.distill_opts(q.as_ref(), a.as_ref(), c.as_ref(), opts)
        })
    }

    /// [`Gced::distill`] recording a span tree of the pipeline stages
    /// (see `gced-obs`). The tree is `None` when tracing is disabled;
    /// the distillation itself is bit-identical either way — tracing is
    /// a sidecar channel and never touches the result.
    pub fn distill_traced(
        &self,
        question: &str,
        answer: &str,
        context: &str,
    ) -> (
        Result<Distillation, DistillError>,
        Option<gced_obs::SpanNode>,
    ) {
        gced_obs::capture("distill", || {
            self.distill_opts(question, answer, context, DistillOpts::default())
        })
    }

    /// [`Gced::distill_batch`] with a span tree captured per item on
    /// the worker thread that distilled it (the serve batcher records
    /// these in its flight recorder). Results are element-wise identical
    /// to [`Gced::distill_batch`]; trees are `None` when tracing is
    /// disabled.
    #[allow(clippy::type_complexity)]
    pub fn distill_batch_traced<Q, A, C>(
        &self,
        items: &[(Q, A, C)],
    ) -> Vec<(
        Result<Distillation, DistillError>,
        Option<gced_obs::SpanNode>,
    )>
    where
        Q: AsRef<str> + Sync,
        A: AsRef<str> + Sync,
        C: AsRef<str> + Sync,
    {
        let opts = DistillOpts {
            parallel_clip: false,
            ..DistillOpts::default()
        };
        gced_par::par_map(items, |_, (q, a, c)| {
            gced_obs::capture("distill", || {
                self.distill_opts(q.as_ref(), a.as_ref(), c.as_ref(), opts)
            })
        })
    }

    /// Assemble the final [`Distillation`] from a node selection.
    /// `precomputed` carries the selection's scores when the clip search
    /// already produced them (bitwise-equal to a rescore).
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        aos: &Document,
        aos_text: &str,
        ctx_doc: &Document,
        te: BTreeSet<usize>,
        scorer: &EvidenceScorer<'_>,
        precomputed: Option<EvidenceScores>,
        trace: DistillTrace,
    ) -> Distillation {
        let tokens: Vec<gced_text::Token> = te.iter().map(|&i| aos.tokens[i].clone()).collect();
        let evidence = join_tokens(&tokens);
        let scores = precomputed.unwrap_or_else(|| scorer.score_selection(aos, &te));
        let ctx_words = ctx_doc.len().max(1);
        Distillation {
            evidence_tokens: tokens.iter().map(|t| t.text.clone()).collect(),
            evidence,
            scores,
            aos_text: aos_text.to_string(),
            word_reduction: 1.0 - te.len() as f64 / ctx_words as f64,
            trace,
        }
    }
}

/// Token indices of the answer inside the AOS: the first contiguous
/// occurrence when present, otherwise a bag-of-words match (the answer
/// may be a predicted string that only partially overlaps the context).
fn locate_answer(aos: &Document, answer: &str) -> Vec<usize> {
    if let Some((s, e)) = gced_qa::model::gold_span(aos, answer) {
        return (s..e).collect();
    }
    let answer_words: BTreeSet<String> = analyze(answer).tokens.iter().map(|t| t.lower()).collect();
    aos.tokens
        .iter()
        .filter(|t| answer_words.contains(&t.lower()))
        .map(|t| t.index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_datasets::{generate, DatasetKind, GeneratorConfig};

    fn fitted() -> (Gced, gced_datasets::Dataset) {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 80,
                dev: 20,
                seed: 9,
            },
        );
        let g = Gced::fit(&ds, GcedConfig::default());
        (g, ds)
    }

    #[test]
    fn distills_paper_style_example() {
        let (g, _) = fitted();
        let question = "Which NFL team represented the AFC at Super Bowl 50?";
        let context = "The American Football Conference (AFC) champion Denver Broncos defeated \
                       the National Football Conference (NFC) champion Carolina Panthers to earn \
                       the Super Bowl 50 title. The game was played on February 7, 2016. \
                       The halftime show featured a famous singer.";
        let d = g.distill(question, "Denver Broncos", context).unwrap();
        assert!(
            d.evidence.contains("Denver Broncos"),
            "evidence: {}",
            d.evidence
        );
        assert!(!d.evidence_tokens.is_empty());
        assert!(d.word_reduction > 0.0, "no reduction: {}", d.word_reduction);
        assert!(
            d.scores.informativeness > 0.5,
            "I = {}",
            d.scores.informativeness
        );
    }

    #[test]
    fn evidence_is_shorter_than_context() {
        let (g, ds) = fitted();
        let mut reductions = Vec::new();
        for ex in ds.dev.examples.iter().filter(|e| e.answerable).take(8) {
            let d = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
            reductions.push(d.word_reduction);
        }
        let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
        assert!(mean > 0.3, "mean reduction {mean}");
    }

    #[test]
    fn evidence_preserves_answer_when_present() {
        let (g, ds) = fitted();
        for ex in ds.dev.examples.iter().filter(|e| e.answerable).take(8) {
            let d = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
            let ev_lower = d.evidence.to_lowercase();
            let first_answer_word = ex.answer.split_whitespace().next().unwrap().to_lowercase();
            assert!(
                ev_lower.contains(&first_answer_word),
                "{}: answer {:?} absent from evidence {:?}",
                ex.id,
                ex.answer,
                d.evidence
            );
        }
    }

    #[test]
    fn empty_inputs_error() {
        let (g, _) = fitted();
        assert!(matches!(
            g.distill("q?", "", "some context."),
            Err(DistillError::EmptyAnswer)
        ));
        assert!(matches!(
            g.distill("q?", "x", "   "),
            Err(DistillError::EmptyContext)
        ));
    }

    #[test]
    fn distillation_is_deterministic() {
        let (g, ds) = fitted();
        let ex = ds.dev.examples.iter().find(|e| e.answerable).unwrap();
        let a = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        let b = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        assert_eq!(a.evidence, b.evidence);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn answer_absent_from_context_still_distills() {
        let (g, _) = fitted();
        let d = g
            .distill(
                "Who won the match?",
                "Zanzibar Zebras",
                "The Broncos won the title. The fans celebrated.",
            )
            .unwrap();
        assert!(!d.evidence_tokens.is_empty());
    }

    #[test]
    fn no_clue_no_answer_falls_back_to_first_sentence() {
        let (g, _) = fitted();
        let d = g
            .distill(
                "zzz?",
                "qqq",
                "The weather was mild. Nothing else happened.",
            )
            .unwrap();
        assert!(d.trace.fallback);
        assert!(!d.evidence_tokens.is_empty());
    }

    #[test]
    fn ablations_change_output_shape() {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 60,
                dev: 10,
                seed: 5,
            },
        );
        let question = "Which team defeated the Panthers in the final?";
        let answer = "Denver Broncos";
        let context = "The rain had stopped by noon. The Denver Broncos defeated the Carolina \
                       Panthers in the final. The trophy ceremony lasted an hour. Thousands of \
                       fans filled the stadium to celebrate the victory that evening.";
        let full = Gced::fit(&ds, GcedConfig::default());
        let d_full = full.distill(question, answer, context).unwrap();

        let no_clip_cfg = GcedConfig {
            ablation: Ablation::without("Clip"),
            ..GcedConfig::default()
        };
        let no_clip = Gced::fit(&ds, no_clip_cfg);
        let d_no_clip = no_clip.distill(question, answer, context).unwrap();
        assert!(
            d_no_clip.evidence_tokens.len() >= d_full.evidence_tokens.len(),
            "clip should shorten: {} vs {}",
            d_no_clip.evidence_tokens.len(),
            d_full.evidence_tokens.len()
        );

        let no_ase_cfg = GcedConfig {
            ablation: Ablation::without("ASE"),
            ..GcedConfig::default()
        };
        let no_ase = Gced::fit(&ds, no_ase_cfg);
        let d_no_ase = no_ase.distill(question, answer, context).unwrap();
        assert!(d_no_ase.aos_text.len() >= d_full.aos_text.len());
    }

    #[test]
    fn trace_records_pipeline_decisions() {
        let (g, _) = fitted();
        let d = g
            .distill(
                "Which team defeated the Panthers?",
                "Denver Broncos",
                "The Denver Broncos defeated the Carolina Panthers to earn the title. \
                 The band played all night.",
            )
            .unwrap();
        assert!(d.trace.ase.is_some());
        assert!(!d.trace.answer_words.is_empty());
        assert!(d.trace.forest_size >= 1);
        let rendered = d.trace.to_string();
        assert!(rendered.contains("QWS"));
    }

    #[test]
    fn fixed_clip_mode_clips_at_most_m_times() {
        let ds = generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 60,
                dev: 10,
                seed: 5,
            },
        );
        let cfg = GcedConfig {
            clip: ClipMode::Fixed(1),
            ..GcedConfig::default()
        };
        let g = Gced::fit(&ds, cfg);
        let d = g
            .distill(
                "Which team defeated the Panthers?",
                "Denver Broncos",
                "The Denver Broncos defeated the Carolina Panthers to earn the championship \
                 title in a long and memorable evening game.",
            )
            .unwrap();
        assert!(d.trace.clip_steps.len() <= 1);
    }

    #[test]
    fn parse_cache_does_not_change_distillation() {
        let (g, ds) = fitted();
        let cached = g.clone().with_parse_cache(256);
        for ex in ds.dev.examples.iter().filter(|e| e.answerable).take(6) {
            let plain = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
            // Cold pass fills the cache; the warm pass must replay it.
            let cold = cached
                .distill(&ex.question, &ex.answer, &ex.context)
                .unwrap();
            let warm = cached
                .distill(&ex.question, &ex.answer, &ex.context)
                .unwrap();
            for other in [&cold, &warm] {
                assert_eq!(plain.evidence, other.evidence, "{}", ex.id);
                assert_eq!(plain.evidence_tokens, other.evidence_tokens);
                assert_eq!(plain.scores, other.scores);
                assert_eq!(plain.trace.clip_steps, other.trace.clip_steps);
            }
        }
        let stats = cached.parse_cache_stats().expect("cache installed");
        assert!(stats.hits > 0, "warm pass never hit: {stats:?}");
        assert!(g.parse_cache_stats().is_none());
    }

    #[test]
    fn scores_are_consistent_with_reported_evidence() {
        let (g, ds) = fitted();
        let ex = ds.dev.examples.iter().find(|e| e.answerable).unwrap();
        let d = g.distill(&ex.question, &ex.answer, &ex.context).unwrap();
        assert!(d.scores.hybrid.is_finite() || d.evidence_tokens.len() <= 2);
        assert!((0.0..=1.0).contains(&d.scores.informativeness));
    }
}
