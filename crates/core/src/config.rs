//! Pipeline configuration: hybrid-score weights, clip policy, ablations.

/// How many Sequential-Clip-Searching iterations to run (paper: "M is a
/// hyperparameter tuned by experiments").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipMode {
    /// Exactly M clips (the paper's formulation; their tuned M was 1 on
    /// the running example).
    Fixed(usize),
    /// Clip while the hybrid score improves, up to `max` iterations —
    /// the setting our M-sweep ablation bench selects.
    WhileImproving {
        /// Hard iteration cap.
        max: usize,
    },
}

/// Component switches for the Table VIII ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ablation {
    /// Answer-oriented Sentences Extractor. Off ⇒ all context sentences
    /// are treated as answer-oriented.
    pub use_ase: bool,
    /// Question-relevant Words Selector. Off ⇒ no clue words are marked.
    pub use_qws: bool,
    /// SGS grow step. Off ⇒ the forest is emitted without connecting.
    pub use_grow: bool,
    /// SCS clip step. Off ⇒ the unclipped evidence tree is emitted.
    pub use_clip: bool,
    /// Informativeness term of the hybrid score (Eq. 5 α-term).
    pub use_i: bool,
    /// Conciseness term (γ-term).
    pub use_c: bool,
    /// Readability term (β-term).
    pub use_r: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            use_ase: true,
            use_qws: true,
            use_grow: true,
            use_clip: true,
            use_i: true,
            use_c: true,
            use_r: true,
        }
    }
}

impl Ablation {
    /// The full system.
    pub fn full() -> Self {
        Self::default()
    }

    /// Named single-component knockouts, matching Table VIII's rows.
    pub fn without(component: &str) -> Self {
        let mut a = Self::default();
        match component {
            "ASE" => a.use_ase = false,
            "QWS" => a.use_qws = false,
            "Grow" => a.use_grow = false,
            "Clip" => a.use_clip = false,
            "I" => a.use_i = false,
            "C" => a.use_c = false,
            "R" => a.use_r = false,
            other => panic!("unknown ablation component {other:?}"),
        }
        a
    }

    /// The Table VIII row labels in paper order.
    pub fn table8_rows() -> [&'static str; 7] {
        ["ASE", "QWS", "Grow", "Clip", "I", "C", "R"]
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct GcedConfig {
    /// Informativeness weight α (Eq. 5).
    pub alpha: f64,
    /// Readability weight β (Eq. 5).
    pub beta: f64,
    /// Conciseness weight γ (Eq. 5).
    pub gamma: f64,
    /// Clip policy.
    pub clip: ClipMode,
    /// Upper bound on sentences ASE may select (keeps the parse small).
    pub max_ase_sentences: usize,
    /// Component switches.
    pub ablation: Ablation,
    /// SGS root selection: true = max-attention (Algorithm 1 line 3),
    /// false = lowest-index root (design-choice ablation).
    pub grow_max_attention: bool,
    /// SCS candidate restriction: true = forest nodes are unclippable
    /// (Clip Step line 3), false = unrestricted clipping (design-choice
    /// ablation demonstrating why the guarantee matters).
    pub clip_protect_forest: bool,
    /// Seed for the attention substrate.
    pub seed: u64,
}

impl Default for GcedConfig {
    fn default() -> Self {
        GcedConfig {
            alpha: 0.5,
            beta: 0.2,
            gamma: 0.3,
            clip: ClipMode::WhileImproving { max: 16 },
            max_ase_sentences: 4,
            ablation: Ablation::default(),
            grow_max_attention: true,
            clip_protect_forest: true,
            seed: 42,
        }
    }
}

impl GcedConfig {
    /// Effective (α, β, γ) after applying the score ablations, rescaled
    /// to sum to 1 (α+β+γ = 1 is a constraint of Eq. 5).
    pub fn effective_weights(&self) -> (f64, f64, f64) {
        let a = if self.ablation.use_i { self.alpha } else { 0.0 };
        let b = if self.ablation.use_r { self.beta } else { 0.0 };
        let c = if self.ablation.use_c { self.gamma } else { 0.0 };
        let sum = a + b + c;
        if sum <= 0.0 {
            // All terms ablated: fall back to uniform (degenerate case).
            (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)
        } else {
            (a / sum, b / sum, c / sum)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_sum_to_one() {
        let c = GcedConfig::default();
        assert!((c.alpha + c.beta + c.gamma - 1.0).abs() < 1e-12);
        let (a, b, g) = c.effective_weights();
        assert!((a + b + g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ablation_without_each_component() {
        for name in Ablation::table8_rows() {
            let a = Ablation::without(name);
            assert_ne!(a, Ablation::full(), "{name} knockout changed nothing");
        }
        assert!(!Ablation::without("ASE").use_ase);
        assert!(!Ablation::without("Clip").use_clip);
    }

    #[test]
    #[should_panic(expected = "unknown ablation")]
    fn unknown_component_panics() {
        let _ = Ablation::without("XYZ");
    }

    #[test]
    fn effective_weights_renormalize() {
        let mut c = GcedConfig::default();
        c.ablation.use_i = false;
        let (a, b, g) = c.effective_weights();
        assert_eq!(a, 0.0);
        assert!((b + g - 1.0).abs() < 1e-12);
        assert!(b > 0.0 && g > 0.0);
    }

    #[test]
    fn all_terms_ablated_degenerates_to_uniform() {
        let mut c = GcedConfig::default();
        c.ablation.use_i = false;
        c.ablation.use_r = false;
        c.ablation.use_c = false;
        let (a, b, g) = c.effective_weights();
        assert!((a - 1.0 / 3.0).abs() < 1e-12);
        assert!((b - g).abs() < 1e-12);
    }
}
