//! Evidence Forest Constructor (paper Sec. III-E).
//!
//! Each question-relevant clue word and each answer word seeds a tree
//! consisting of the word plus its parent in the weighted syntactic
//! parsing tree; seeds whose node sets overlap merge into one tree
//! (paper Fig. 6(b): nodes 5 and 7 share parent 6, forming the tree
//! {5, 6, 7}). Trees containing answer tokens are the answer tree(s).

use gced_parser::DepTree;
use std::collections::BTreeSet;

/// One tree of the evidence forest: a connected node set of the weighted
/// syntactic parse tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestTree {
    /// Member node (token) indices.
    pub nodes: BTreeSet<usize>,
    /// The topmost node (the unique member whose parent is outside the
    /// set, or the global root).
    pub root: usize,
    /// True if any seed answer token is a member.
    pub contains_answer: bool,
}

/// The evidence forest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvidenceForest {
    pub trees: Vec<ForestTree>,
}

impl EvidenceForest {
    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when no tree exists (no clue and no answer tokens).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Union of all member nodes (the set SCS must never clip).
    pub fn all_nodes(&self) -> BTreeSet<usize> {
        self.trees
            .iter()
            .flat_map(|t| t.nodes.iter().copied())
            .collect()
    }
}

/// Build the forest from clue-word and answer token indices.
pub fn construct(tree: &DepTree, clue_tokens: &[usize], answer_tokens: &[usize]) -> EvidenceForest {
    let mut sets: Vec<(BTreeSet<usize>, bool)> = Vec::new();
    for (&seed, is_answer) in clue_tokens
        .iter()
        .map(|s| (s, false))
        .chain(answer_tokens.iter().map(|s| (s, true)))
    {
        if seed >= tree.len() {
            continue;
        }
        let mut set = BTreeSet::new();
        set.insert(seed);
        if let Some(p) = tree.parent(seed) {
            set.insert(p);
        }
        sets.push((set, is_answer));
    }
    // Merge overlapping node sets to a fixed point.
    loop {
        let mut merged_any = false;
        'outer: for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                if !sets[i].0.is_disjoint(&sets[j].0) {
                    let (sj, aj) = sets.swap_remove(j);
                    sets[i].0.extend(sj);
                    sets[i].1 |= aj;
                    merged_any = true;
                    break 'outer;
                }
            }
        }
        if !merged_any {
            break;
        }
    }
    let trees = sets
        .into_iter()
        .map(|(nodes, contains_answer)| {
            let root = *nodes
                .iter()
                .find(|&&n| tree.parent(n).is_none_or(|p| !nodes.contains(&p)))
                .expect("non-empty connected set has a topmost node");
            ForestTree {
                nodes,
                root,
                contains_answer,
            }
        })
        .collect();
    EvidenceForest { trees }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 6(b)-style tree:
    ///     0
    ///    / \
    ///   1   6
    ///  / \   \
    /// 2   4   7
    /// |   |
    /// 3   5
    fn t() -> DepTree {
        DepTree::from_parents(vec![
            None,
            Some(0),
            Some(1),
            Some(2),
            Some(1),
            Some(4),
            Some(0),
            Some(6),
        ])
    }

    #[test]
    fn seed_plus_parent() {
        let f = construct(&t(), &[3], &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees[0].nodes, BTreeSet::from([2, 3]));
        assert_eq!(f.trees[0].root, 2);
        assert!(!f.trees[0].contains_answer);
    }

    #[test]
    fn overlapping_seeds_merge() {
        // Seeds 2 and 4 share parent 1 => one tree {1, 2, 4}.
        let f = construct(&t(), &[2, 4], &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees[0].nodes, BTreeSet::from([1, 2, 4]));
        assert_eq!(f.trees[0].root, 1);
    }

    #[test]
    fn disjoint_seeds_stay_separate() {
        let f = construct(&t(), &[3], &[7]);
        assert_eq!(f.len(), 2);
        let roots: BTreeSet<usize> = f.trees.iter().map(|t| t.root).collect();
        assert_eq!(roots, BTreeSet::from([2, 6]));
    }

    #[test]
    fn answer_flag_propagates_through_merge() {
        let f = construct(&t(), &[2], &[4]);
        assert_eq!(f.len(), 1);
        assert!(f.trees[0].contains_answer);
    }

    #[test]
    fn root_seed_forms_single_node_tree_context() {
        // Seeding the global root: parent is None, set = {0}.
        let f = construct(&t(), &[0], &[]);
        assert_eq!(f.trees[0].nodes, BTreeSet::from([0]));
        assert_eq!(f.trees[0].root, 0);
    }

    #[test]
    fn chained_seeds_merge_transitively() {
        // Seeds 3 ({2,3}), 2 ({1,2}), 4 ({1,4}): all share nodes => one tree.
        let f = construct(&t(), &[3, 2, 4], &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.trees[0].nodes, BTreeSet::from([1, 2, 3, 4]));
        assert_eq!(f.trees[0].root, 1);
    }

    #[test]
    fn empty_seeds_empty_forest() {
        let f = construct(&t(), &[], &[]);
        assert!(f.is_empty());
        assert!(f.all_nodes().is_empty());
    }

    #[test]
    fn out_of_bounds_seeds_ignored() {
        let f = construct(&t(), &[99], &[]);
        assert!(f.is_empty());
    }

    #[test]
    fn all_nodes_union() {
        let f = construct(&t(), &[3], &[7]);
        assert_eq!(f.all_nodes(), BTreeSet::from([2, 3, 6, 7]));
    }

    #[test]
    fn forest_trees_are_connected_in_t() {
        let tree = t();
        let f = construct(&tree, &[3, 5, 7], &[2]);
        for ft in &f.trees {
            // Every non-root member's parent is also a member.
            for &n in &ft.nodes {
                if n != ft.root {
                    let p = tree.parent(n).unwrap();
                    assert!(ft.nodes.contains(&p), "tree {ft:?} disconnected at {n}");
                }
            }
        }
    }
}
