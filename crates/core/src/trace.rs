//! Step-by-step distillation traces.
//!
//! The paper lists traceability as a core advantage of GCED over
//! end-to-end neural explainers ("each step is traceable", Sec. I). The
//! trace records every decision the pipeline takes; the `case_study`
//! example renders it for the paper's Fig. 8 walkthrough.

use crate::ase::AseResult;
use crate::oec::{ClipStep, GrowStep};
use std::fmt;

/// Everything the pipeline decided for one distillation.
#[derive(Debug, Clone, Default)]
pub struct DistillTrace {
    /// ASE outcome (None when ASE was ablated).
    pub ase: Option<AseResult>,
    /// Significant question words QWS expanded.
    pub significant_words: Vec<String>,
    /// Clue tokens (surface forms) QWS marked.
    pub clue_words: Vec<String>,
    /// Answer tokens (surface forms) located in the AOS.
    pub answer_words: Vec<String>,
    /// Number of trees in the evidence forest.
    pub forest_size: usize,
    /// SGS step log.
    pub grow_steps: Vec<GrowStep>,
    /// SCS step log.
    pub clip_steps: Vec<ClipStep>,
    /// True when no forest could be built and the pipeline fell back to
    /// emitting the first answer-oriented sentence.
    pub fallback: bool,
}

impl fmt::Display for DistillTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(ase) = &self.ase {
            writeln!(
                f,
                "ASE: sentences {:?} (exact = {}, best F1 = {:.3})",
                ase.sentences, ase.exact, ase.best_f1
            )?;
            for (i, (sent, f1)) in ase.steps.iter().enumerate() {
                writeln!(
                    f,
                    "ASE step {}: add sentence {} (F1 = {:.3})",
                    i + 1,
                    sent,
                    f1
                )?;
            }
        } else {
            writeln!(f, "ASE: ablated (all sentences kept)")?;
        }
        writeln!(f, "QWS: significant words = {:?}", self.significant_words)?;
        writeln!(f, "QWS: clue words = {:?}", self.clue_words)?;
        writeln!(f, "EFC: answer words = {:?}", self.answer_words)?;
        writeln!(f, "EFC: forest has {} tree(s)", self.forest_size)?;
        for (i, s) in self.grow_steps.iter().enumerate() {
            writeln!(
                f,
                "SGS step {}: grow root {} -> parent {} (w = {:.4}), merged roots {:?}, size {}",
                i + 1,
                s.chosen_root,
                s.parent,
                s.weight,
                s.merged_roots,
                s.new_size
            )?;
        }
        for (i, s) in self.clip_steps.iter().enumerate() {
            writeln!(
                f,
                "SCS step {}: clip node {} (removed {:?}), H {:.4} -> {:.4}",
                i + 1,
                s.clipped_node,
                s.removed,
                s.hybrid_before,
                s.hybrid_after
            )?;
        }
        if self.fallback {
            writeln!(f, "fallback: emitted first answer-oriented sentence")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_every_section() {
        let trace = DistillTrace {
            ase: Some(AseResult {
                sentences: vec![0, 2],
                exact: true,
                best_f1: 1.0,
                steps: vec![(0, 0.6), (2, 1.0)],
            }),
            significant_words: vec!["team".into()],
            clue_words: vec!["Broncos".into()],
            answer_words: vec!["Denver".into()],
            forest_size: 2,
            grow_steps: vec![GrowStep {
                chosen_root: 3,
                parent: 1,
                weight: 0.32,
                merged_roots: vec![5],
                new_size: 6,
            }],
            clip_steps: vec![ClipStep {
                clipped_node: 9,
                removed: vec![9, 10],
                hybrid_before: 0.61,
                hybrid_after: 0.70,
            }],
            fallback: false,
        };
        let s = trace.to_string();
        assert!(s.contains("ASE: sentences [0, 2]"));
        assert!(s.contains("ASE step 2: add sentence 2"));
        assert!(s.contains("clue words"));
        assert!(s.contains("SGS step 1"));
        assert!(s.contains("SCS step 1"));
        assert!(!s.contains("fallback"));
    }

    #[test]
    fn ablated_and_fallback_render() {
        let trace = DistillTrace {
            fallback: true,
            ..Default::default()
        };
        let s = trace.to_string();
        assert!(s.contains("ABLATED") || s.contains("ablated"));
        assert!(s.contains("fallback"));
    }
}
