//! Question-relevant Words Selector (paper Sec. III-C, Fig. 5).
//!
//! 1. Remove insignificant question words (wh-terms, auxiliaries,
//!    functional words, punctuation — `gced_text::stopwords`).
//! 2. Expand each remaining word with its synonyms, antonyms, and
//!    hypernym-siblings from the lexicon.
//! 3. Mark open-class tokens of the answer-oriented sentences matching
//!    any expansion (by surface form or lemma) as question-relevant clue
//!    words.

use gced_lexicon::Lexicon;
use gced_text::{analyze, is_insignificant_question_word, Document};
use std::collections::HashSet;

/// Result of clue-word selection.
#[derive(Debug, Clone, PartialEq)]
pub struct QwsResult {
    /// Clue token indices (local to the answer-oriented document),
    /// ascending.
    pub clue_tokens: Vec<usize>,
    /// The significant question words that were expanded.
    pub significant_words: Vec<String>,
}

/// Select clue words in `aos` for `question`. `exclude` marks token
/// indices that must not become clue words (the answer tokens — they
/// seed the answer tree instead, Sec. III-E).
pub fn select(lexicon: &Lexicon, question: &str, aos: &Document, exclude: &[usize]) -> QwsResult {
    let q_doc = analyze(question);
    let mut significant_words = Vec::new();
    let mut expansion: HashSet<String> = HashSet::new();
    for t in &q_doc.tokens {
        let lower = t.lower();
        if t.is_punct() || is_insignificant_question_word(&lower) {
            continue;
        }
        if !significant_words.contains(&lower) {
            significant_words.push(lower.clone());
        }
        expansion.extend(lexicon.related(&lower));
        if t.lemma != lower {
            expansion.extend(lexicon.related(&t.lemma));
        }
    }
    let excluded: HashSet<usize> = exclude.iter().copied().collect();
    let clue_tokens: Vec<usize> = aos
        .tokens
        .iter()
        .filter(|t| t.pos.is_open_class())
        .filter(|t| !excluded.contains(&t.index))
        .filter(|t| expansion.contains(&t.lower()) || expansion.contains(&t.lemma))
        .map(|t| t.index)
        .collect();
    QwsResult {
        clue_tokens,
        significant_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clue_words(question: &str, aos_text: &str) -> Vec<String> {
        let lex = Lexicon::embedded();
        let aos = analyze(aos_text);
        let r = select(&lex, question, &aos, &[]);
        r.clue_tokens
            .iter()
            .map(|&i| aos.tokens[i].text.clone())
            .collect()
    }

    #[test]
    fn paper_fig5_style_example() {
        // "Which NFL team represented the AFC at Super Bowl 50?"
        // AOS: the Fig. 6 sentence. Expected clue words include Football
        // (sibling of football-related terms), AFC, NFC, Super, Bowl.
        let clues = clue_words(
            "Which NFL team represented the AFC at Super Bowl 50?",
            "The American Football Conference (AFC) champion Denver Broncos defeated the \
             National Football Conference (NFC) champion Carolina Panthers to earn the \
             Super Bowl 50 title.",
        );
        assert!(clues.iter().any(|w| w == "AFC"), "clues: {clues:?}");
        assert!(clues.iter().any(|w| w == "Super"));
        assert!(clues.iter().any(|w| w == "Bowl"));
        // Sibling expansion: "NFL" and "AFC" share hypernyms with
        // conference/league words; "Football" appears via exact match of
        // sibling sets in the lexicon.
        assert!(clues.iter().any(|w| w == "Football"));
    }

    #[test]
    fn direct_and_lemma_matches() {
        let clues = clue_words(
            "Which team defeated the Panthers?",
            "The Broncos defeated the Panthers. The team celebrated.",
        );
        assert!(clues.iter().any(|w| w == "defeated"));
        assert!(clues.iter().any(|w| w == "Panthers"));
        assert!(clues.iter().any(|w| w == "team"));
    }

    #[test]
    fn synonym_expansion_matches() {
        // "beat" is a synonym of "defeat" in the embedded lexicon.
        let clues = clue_words(
            "Who beat the Panthers?",
            "The Broncos defeated the Panthers.",
        );
        assert!(clues.iter().any(|w| w == "defeated"), "clues: {clues:?}");
    }

    #[test]
    fn function_words_never_clues() {
        let clues = clue_words(
            "Which team defeated the Panthers?",
            "The Broncos defeated the Panthers in the city.",
        );
        assert!(!clues.iter().any(|w| w == "The" || w == "the" || w == "in"));
    }

    #[test]
    fn excluded_tokens_are_skipped() {
        let lex = Lexicon::embedded();
        let aos = analyze("The Broncos defeated the Panthers.");
        let broncos = aos.tokens.iter().position(|t| t.text == "Broncos").unwrap();
        let r = select(&lex, "Which team defeated the Broncos?", &aos, &[broncos]);
        assert!(!r.clue_tokens.contains(&broncos));
    }

    #[test]
    fn insignificant_only_question_yields_no_clues() {
        let lex = Lexicon::embedded();
        let aos = analyze("The Broncos defeated the Panthers.");
        let r = select(&lex, "Who did what to whom?", &aos, &[]);
        assert!(r.clue_tokens.is_empty());
        assert!(r.significant_words.is_empty());
    }

    #[test]
    fn significant_words_recorded_once() {
        let lex = Lexicon::embedded();
        let aos = analyze("x");
        let r = select(&lex, "team team team?", &aos, &[]);
        assert_eq!(r.significant_words, vec!["team"]);
    }

    #[test]
    fn empty_lexicon_still_matches_exact_words() {
        let lex = Lexicon::empty();
        let aos = analyze("The Broncos defeated the Panthers.");
        let r = select(&lex, "Which team defeated the Panthers?", &aos, &[]);
        let words: Vec<&str> = r
            .clue_tokens
            .iter()
            .map(|&i| aos.tokens[i].text.as_str())
            .collect();
        assert!(words.contains(&"defeated"));
        assert!(words.contains(&"Panthers"));
    }
}
