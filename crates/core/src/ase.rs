//! Answer-oriented Sentences Extractor (paper Sec. III-B, Fig. 4).
//!
//! Greedy minimal-subset search: repeatedly add the context sentence that
//! maximizes the QA model's answer-prediction F1 against the input
//! answer; stop at the first exact prediction. If no subset ever predicts
//! the answer exactly, the best-overlap subset seen is returned — the
//! paper's fallback ("the sentence subset with the maximum overlap").
//!
//! ## The incremental grow search
//!
//! [`extract`] runs the greedy loop on the shared evidence-search engine
//! ([`SearchContext`]), which makes three things incremental:
//!
//! * **trials are mask deltas** — adding sentence *s* to the selection
//!   splices one token run into a maintained index buffer (no
//!   `contains` scans, no clone-and-sort per trial), and the QA span
//!   scores of the already-selected sentences replay from the span-score
//!   cache instead of being recomputed;
//! * **membership is a bitset** — the per-round candidate filter is a
//!   word test, not an `O(selected)` scan;
//! * **an admissible F1 bound prunes trials** — a candidate sentence can
//!   never lift the trial's F1 above the best token-F1 any single
//!   candidate span of a member sentence achieves against the answer
//!   ([`sentence_f1_bounds`]), so once a round has a winner at F1 ≥ that
//!   bound the QA prediction is provably pointless and skipped — the
//!   grow-side mirror of the clip search's informativeness prune.
//!
//! The search is **bit-identical** to the paper-literal formulation kept
//! in [`reference`] (same sentences, exact flag, best F1, and step log);
//! the cross-crate property suite pins that on randomized pipelines.

use crate::scoring::{Bitset, SearchContext};
use gced_metrics::overlap::{normalize_answer, token_f1};
use gced_qa::model::MAX_SPAN;
use gced_text::{join_tokens, Document, SentId};

/// Outcome of the ASE search.
#[derive(Debug, Clone, PartialEq)]
pub struct AseResult {
    /// Selected sentence indices, ascending.
    pub sentences: Vec<usize>,
    /// True when the QA model reproduced the input answer exactly
    /// (F1 = 1 after normalization).
    pub exact: bool,
    /// Best prediction overlap achieved (Eq. 1 F1).
    pub best_f1: f64,
    /// Greedy trajectory: (sentence added, F1 after adding).
    pub steps: Vec<(usize, f64)>,
}

impl AseResult {
    fn empty() -> Self {
        AseResult {
            sentences: vec![],
            exact: false,
            best_f1: 0.0,
            steps: vec![],
        }
    }
}

/// Admissible upper bound on the answer F1 achievable by any trial
/// containing sentence `i`: the QA model predicts a candidate span of at
/// most [`MAX_SPAN`] tokens inside one sentence (or abstains, F1 = 0),
/// and a span's F1 against the answer depends only on its own tokens —
/// so `max` over a sentence's spans bounds what that sentence can
/// contribute, and `max` over a trial's member sentences bounds the
/// trial. Answers that normalize to nothing disable the bound (an
/// abstention then scores F1 = 1).
pub fn sentence_f1_bounds(doc: &Document, answer: &str) -> Vec<f64> {
    let n_sents = doc.sentences.len();
    let ans_norm = normalize_answer(answer);
    if ans_norm.is_empty() {
        return vec![1.0; n_sents];
    }
    let ans_set: std::collections::HashSet<&str> = ans_norm.iter().map(String::as_str).collect();
    // A span's normalized tokens are the union of its members' — except
    // across an "n't" glue join, which can merge two surface tokens into
    // one normalized token, so "n't" forces evaluation.
    let overlap: Vec<bool> = doc
        .tokens
        .iter()
        .map(|t| {
            normalize_answer(&t.text)
                .iter()
                .any(|w| ans_set.contains(w.as_str()))
                || t.lower() == "n't"
        })
        .collect();
    let mut bounds = vec![0.0f64; n_sents];
    for (si, s) in doc.sentences.iter().enumerate() {
        if !(s.token_start..s.token_end).any(|i| overlap[i]) {
            continue; // no shared token ⇒ every span scores F1 = 0
        }
        let mut best = 0.0f64;
        for start in s.token_start..s.token_end {
            let hi = (start + MAX_SPAN).min(s.token_end);
            for end in (start + 1)..=hi {
                if !(start..end).any(|i| overlap[i]) {
                    continue;
                }
                let f1 = token_f1(&join_tokens(&doc.tokens[start..end]), answer).f1;
                if f1 > best {
                    best = f1;
                }
            }
        }
        bounds[si] = best;
    }
    bounds
}

/// Run the greedy search over the engine's document. `max_sentences`
/// bounds the subset size (the minimum sentence subsets of the paper's
/// datasets are 1–3 sentences). Bit-identical to [`reference::extract`].
pub fn extract(ctx: &mut SearchContext<'_, '_>, max_sentences: usize) -> AseResult {
    let doc = ctx.doc();
    let n_sents = doc.sentences.len();
    if n_sents == 0 {
        return AseResult::empty();
    }
    let bounds = sentence_f1_bounds(doc, ctx.answer());
    let cap = max_sentences.max(1).min(n_sents);

    let mut member = Bitset::new(n_sents);
    // Selected sentences (ascending) with their concatenated token runs
    // and per-run prefix offsets — a trial splices one sentence run in.
    let mut sel_sents: Vec<usize> = Vec::new();
    let mut sel_tokens: Vec<usize> = Vec::new();
    let mut run_offsets: Vec<usize> = vec![0];
    let mut trial: Vec<usize> = Vec::new();

    let mut steps: Vec<(usize, f64)> = Vec::new();
    let mut best_subset: Vec<usize> = Vec::new();
    let mut best_f1 = f64::NEG_INFINITY;
    // Max admissible bound over the selected sentences.
    let mut sel_bound = f64::NEG_INFINITY;

    while sel_sents.len() < cap {
        let _round_span = gced_obs::span("grow.round");
        let mut round_best: Option<(usize, f64)> = None;
        let (mut trials, mut pruned) = (0u64, 0u64);
        for s in 0..n_sents {
            if member.contains(s) {
                continue;
            }
            if let Some((_, bf)) = round_best {
                // Admissible prune: the trial's F1 cannot exceed the max
                // member bound, and ties never replace the round winner.
                if sel_bound.max(bounds[s]) <= bf {
                    pruned += 1;
                    continue;
                }
            }
            let sent = &doc.sentences[s];
            let split = run_offsets[sel_sents.partition_point(|&x| x < s)];
            trial.clear();
            trial.extend_from_slice(&sel_tokens[..split]);
            trial.extend(sent.token_start..sent.token_end);
            trial.extend_from_slice(&sel_tokens[split..]);
            let f1 = {
                let _trial_span = gced_obs::span("grow.trial");
                ctx.informativeness_of(&trial)
            };
            trials += 1;
            match round_best {
                Some((_, bf)) if bf >= f1 => {}
                _ => round_best = Some((s, f1)),
            }
        }
        gced_obs::counter("trials", trials);
        gced_obs::counter("trials_pruned", pruned);
        let Some((chosen, f1)) = round_best else {
            break;
        };
        let sent = &doc.sentences[chosen];
        let k = sel_sents.partition_point(|&x| x < chosen);
        let split = run_offsets[k];
        sel_tokens.splice(split..split, sent.token_start..sent.token_end);
        sel_sents.insert(k, chosen);
        run_offsets.clear();
        run_offsets.push(0);
        let mut acc = 0;
        for &x in &sel_sents {
            acc += doc.sentences[x].len();
            run_offsets.push(acc);
        }
        member.insert(chosen);
        sel_bound = sel_bound.max(bounds[chosen]);
        steps.push((chosen, f1));
        if f1 > best_f1 {
            best_f1 = f1;
            best_subset = sel_sents.clone();
        }
        if f1 >= 1.0 - 1e-9 {
            return AseResult {
                sentences: sel_sents,
                exact: true,
                best_f1: 1.0,
                steps,
            };
        }
    }
    AseResult {
        sentences: best_subset,
        exact: false,
        best_f1,
        steps,
    }
}

/// Surface text of a sentence subset, in document order.
pub fn subset_text(doc: &Document, subset: &[usize]) -> String {
    let mut parts = Vec::with_capacity(subset.len());
    for &s in subset {
        parts.push(doc.sentence_text(SentId(s)));
    }
    parts.join(" ")
}

/// The paper-literal greedy sentence search kept as a verification
/// oracle: per-trial `contains` scans, clone-and-sort subset building,
/// and a full from-scratch QA prediction per trial. The optimized
/// [`extract`] must match it bit for bit (sentences, exact flag,
/// `best_f1`, step log); the cross-crate property suite asserts exactly
/// that on randomized pipelines.
#[doc(hidden)]
pub mod reference {
    use super::AseResult;
    use gced_metrics::overlap::token_f1;
    use gced_qa::{QaModel, QuestionAnalysis, SelectionScratch};
    use gced_text::Document;

    /// Reference ASE. See [`super::extract`].
    pub fn extract(
        qa: &QaModel,
        q: &QuestionAnalysis,
        question: &str,
        answer: &str,
        doc: &Document,
        max_sentences: usize,
    ) -> AseResult {
        let n_sents = doc.sentences.len();
        if n_sents == 0 {
            return AseResult::empty();
        }
        let mut scratch = SelectionScratch::default();
        let mut indices: Vec<usize> = Vec::new();
        let mut selected: Vec<usize> = Vec::new();
        let mut steps: Vec<(usize, f64)> = Vec::new();
        // The paper's fallback: the best-overlap subset actually seen by
        // the search (each round's winner is the max of its round).
        let mut best_subset: Vec<usize> = Vec::new();
        let mut best_f1 = f64::NEG_INFINITY;
        let cap = max_sentences.max(1).min(n_sents);
        while selected.len() < cap {
            let mut round_best: Option<(usize, f64)> = None;
            for s in 0..n_sents {
                if selected.contains(&s) {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(s);
                trial.sort_unstable();
                indices.clear();
                for &t in &trial {
                    let sent = &doc.sentences[t];
                    indices.extend(sent.token_start..sent.token_end);
                }
                let pred = qa.predict_selection(q, doc, &indices, question, &mut scratch);
                let f1 = token_f1(&pred.text, answer).f1;
                match round_best {
                    Some((_, bf)) if bf >= f1 => {}
                    _ => round_best = Some((s, f1)),
                }
            }
            let Some((chosen, f1)) = round_best else {
                break;
            };
            selected.push(chosen);
            selected.sort_unstable();
            steps.push((chosen, f1));
            if f1 > best_f1 {
                best_f1 = f1;
                best_subset = selected.clone();
            }
            if f1 >= 1.0 - 1e-9 {
                return AseResult {
                    sentences: selected,
                    exact: true,
                    best_f1: 1.0,
                    steps,
                };
            }
        }
        AseResult {
            sentences: best_subset,
            exact: false,
            best_f1,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{reference_perplexity, EvidenceScorer};
    use gced_lm::TrigramLm;
    use gced_qa::{ModelProfile, QaModel, QuestionAnalysis};
    use gced_text::analyze;
    use std::sync::OnceLock;

    /// A PLM trained once on a small synthetic split (ASE always runs
    /// with the trained model in the real pipeline).
    fn plm() -> &'static QaModel {
        static MODEL: OnceLock<QaModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            let ds = gced_datasets::generate(
                gced_datasets::DatasetKind::Squad11,
                gced_datasets::GeneratorConfig {
                    train: 150,
                    dev: 16,
                    seed: 21,
                },
            );
            let mut qa = QaModel::new(ModelProfile::plm());
            qa.train(&ds.train.examples);
            qa
        })
    }

    fn lm() -> &'static TrigramLm {
        static LM: OnceLock<TrigramLm> = OnceLock::new();
        LM.get_or_init(|| {
            let corpus: Vec<Vec<String>> = ["the broncos defeated the panthers"]
                .iter()
                .map(|s| s.split(' ').map(String::from).collect())
                .collect();
            TrigramLm::train(&corpus)
        })
    }

    /// Run the optimized search through a throwaway engine, asserting
    /// bit-identity with the reference oracle on the way out.
    fn extract_checked(
        qa: &QaModel,
        question: &str,
        answer: &str,
        doc: &Document,
        cap: usize,
    ) -> AseResult {
        let lm = lm();
        let ppl_ref = reference_perplexity(lm, &[], 1);
        let scorer = EvidenceScorer::new(qa, lm, question, answer, ppl_ref, (0.5, 0.2, 0.3));
        let mut ctx = scorer.search_context(doc);
        let fast = extract(&mut ctx, cap);
        let q = QuestionAnalysis::new(question);
        let oracle = reference::extract(qa, &q, question, answer, doc, cap);
        assert_eq!(fast.sentences, oracle.sentences, "sentences diverge");
        assert_eq!(fast.exact, oracle.exact, "exact flag diverges");
        assert_eq!(
            fast.best_f1.to_bits(),
            oracle.best_f1.to_bits(),
            "best_f1 diverges: {} vs {}",
            fast.best_f1,
            oracle.best_f1
        );
        assert_eq!(fast.steps.len(), oracle.steps.len(), "step count diverges");
        for (a, b) in fast.steps.iter().zip(&oracle.steps) {
            assert_eq!(a.0, b.0, "step sentence diverges");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "step F1 diverges");
        }
        fast
    }

    #[test]
    fn finds_the_answer_sentence() {
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let doc = analyze(
            "The weather was mild that week. The Denver Broncos defeated the Carolina Panthers. \
             Tickets sold out early.",
        );
        let r = extract_checked(qa, question, "Denver Broncos", &doc, 3);
        assert!(r.sentences.contains(&1), "selected {:?}", r.sentences);
        assert!(r.best_f1 > 0.9);
    }

    #[test]
    fn stops_at_first_exact_prediction() {
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let doc = analyze(
            "The Denver Broncos defeated the Carolina Panthers. The parade lasted two days.",
        );
        let r = extract_checked(qa, question, "Denver Broncos", &doc, 4);
        if r.exact {
            assert_eq!(
                r.sentences.len(),
                1,
                "exact stop should keep the subset minimal"
            );
        }
    }

    #[test]
    fn falls_back_to_best_overlap_when_unpredictable() {
        let qa = plm();
        let question = "Who composed the anthem?";
        let doc = analyze("The bridge was built in 1876. The river floods in spring.");
        let r = extract_checked(qa, question, "Johann Strauss", &doc, 2);
        assert!(!r.exact);
        assert!(!r.sentences.is_empty());
        assert_eq!(r.best_f1, 0.0);
    }

    #[test]
    fn all_zero_f1_fallback_is_the_first_round_winner() {
        // Regression for the degenerate `vec![0]` seed: with every
        // subset at F1 = 0 the returned fallback must be a subset the
        // search actually evaluated (the first round winner), not a
        // hardcoded sentence.
        let qa = plm();
        let question = "Who composed the anthem?";
        let doc =
            analyze("The bridge was built in 1876. The river floods in spring. Nothing else.");
        let r = extract_checked(qa, question, "Johann Strauss", &doc, 3);
        assert_eq!(r.best_f1, 0.0);
        assert_eq!(r.sentences.len(), 1, "fallback is one round-1 winner");
        assert_eq!(r.sentences, vec![r.steps[0].0]);
    }

    #[test]
    fn empty_document() {
        let qa = plm();
        let doc = analyze("");
        let r = extract_checked(qa, "Who?", "X", &doc, 3);
        assert!(r.sentences.is_empty());
        assert!(!r.exact);
        assert_eq!(r.best_f1, 0.0);
        assert!(r.steps.is_empty());
    }

    #[test]
    fn respects_sentence_cap() {
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let doc = analyze(
            "Rain fell. Wind blew. Clouds came. The Broncos defeated the Panthers. Snow fell.",
        );
        let r = extract_checked(qa, question, "Broncos", &doc, 2);
        assert!(r.sentences.len() <= 2);
    }

    #[test]
    fn subset_text_in_document_order() {
        let doc = analyze("First one. Second one. Third one.");
        assert_eq!(subset_text(&doc, &[0, 2]), "First one. Third one.");
    }

    #[test]
    fn deterministic() {
        let qa = plm();
        let question = "Which river flows through the city?";
        let doc = analyze("The Seine River flows through the center of Paris. Paris is large.");
        let a = extract_checked(qa, question, "Seine", &doc, 3);
        let b = extract_checked(qa, question, "Seine", &doc, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn matches_reference_on_randomized_documents() {
        // Many shapes: answer present/absent/split across sentences,
        // repeated sentences, single-sentence docs.
        let qa = plm();
        let sentences = [
            "The weather was mild that week.",
            "The Denver Broncos defeated the Carolina Panthers.",
            "Tickets sold out early.",
            "Denver is a large city.",
            "The Broncos celebrated the title.",
            "The parade lasted two days.",
            "Nothing happened on Tuesday.",
        ];
        let questions = [
            ("Which team defeated the Panthers?", "Denver Broncos"),
            ("Who won the title?", "the Broncos"),
            ("What lasted two days?", "parade"),
            ("Who composed the anthem?", "Johann Strauss"),
        ];
        let mut seed = 0x9e3779b97f4a7c15u64;
        for case in 0..24 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = 1 + (seed >> 7) as usize % sentences.len();
            let mut text = String::new();
            for j in 0..k {
                let idx = ((seed >> (j * 5)) as usize).wrapping_add(case) % sentences.len();
                text.push_str(sentences[idx]);
                text.push(' ');
            }
            let doc = analyze(&text);
            let (question, answer) = questions[case % questions.len()];
            let cap = 1 + case % 4;
            extract_checked(qa, question, answer, &doc, cap);
        }
    }

    #[test]
    fn f1_bounds_are_admissible() {
        // Pruning soundness: no trial's F1 may exceed the max bound of
        // its member sentences — a pruned candidate can never beat the
        // round winner.
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let answer = "Denver Broncos";
        let q = QuestionAnalysis::new(question);
        let doc = analyze(
            "The weather was mild that week. The Denver Broncos defeated the Carolina \
             Panthers. Tickets sold out early. Denver is a large city.",
        );
        let bounds = sentence_f1_bounds(&doc, answer);
        let n = doc.sentences.len();
        let mut scratch = gced_qa::SelectionScratch::default();
        for mask in 1..(1usize << n) {
            let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let indices: Vec<usize> = subset
                .iter()
                .flat_map(|&s| doc.sentences[s].token_start..doc.sentences[s].token_end)
                .collect();
            let pred = qa.predict_selection(&q, &doc, &indices, question, &mut scratch);
            let f1 = token_f1(&pred.text, answer).f1;
            let bound = subset
                .iter()
                .map(|&s| bounds[s])
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                f1 <= bound + 1e-15,
                "subset {subset:?}: F1 {f1} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn empty_normalized_answer_disables_the_bound() {
        let doc = analyze("The bridge was built. The river floods.");
        let bounds = sentence_f1_bounds(&doc, "the");
        assert_eq!(bounds, vec![1.0, 1.0]);
    }
}
