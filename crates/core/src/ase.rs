//! Answer-oriented Sentences Extractor (paper Sec. III-B, Fig. 4).
//!
//! Greedy minimal-subset search: repeatedly add the context sentence that
//! maximizes the QA model's answer-prediction F1 against the input
//! answer; stop at the first exact prediction. If no subset ever predicts
//! the answer exactly, the best-overlap subset seen is returned — the
//! paper's fallback ("the sentence subset with the maximum overlap").

use gced_metrics::overlap::token_f1;
use gced_qa::{QaModel, QuestionAnalysis, SelectionScratch};
use gced_text::{Document, SentId};

/// Outcome of the ASE search.
#[derive(Debug, Clone, PartialEq)]
pub struct AseResult {
    /// Selected sentence indices, ascending.
    pub sentences: Vec<usize>,
    /// True when the QA model reproduced the input answer exactly
    /// (F1 = 1 after normalization).
    pub exact: bool,
    /// Best prediction overlap achieved (Eq. 1 F1).
    pub best_f1: f64,
    /// Greedy trajectory: (sentence added, F1 after adding).
    pub steps: Vec<(usize, f64)>,
}

/// Run the greedy search. `max_sentences` bounds the subset size (the
/// minimum sentence subsets of the paper's datasets are 1–3 sentences).
pub fn extract(
    qa: &QaModel,
    q: &QuestionAnalysis,
    question: &str,
    answer: &str,
    doc: &Document,
    max_sentences: usize,
) -> AseResult {
    let n_sents = doc.sentences.len();
    if n_sents == 0 {
        return AseResult {
            sentences: vec![],
            exact: false,
            best_f1: 0.0,
            steps: vec![],
        };
    }
    let mut scratch = TrialScratch::default();
    let mut selected: Vec<usize> = Vec::new();
    let mut steps: Vec<(usize, f64)> = Vec::new();
    let mut best_subset: Vec<usize> = vec![0]; // degenerate fallback: first sentence
    let mut best_f1 = f1_of_subset(qa, q, question, answer, doc, &[0], &mut scratch);
    let cap = max_sentences.max(1).min(n_sents);

    while selected.len() < cap {
        let mut round_best: Option<(usize, f64)> = None;
        for s in 0..n_sents {
            if selected.contains(&s) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(s);
            trial.sort_unstable();
            let f1 = f1_of_subset(qa, q, question, answer, doc, &trial, &mut scratch);
            match round_best {
                Some((_, bf)) if bf >= f1 => {}
                _ => round_best = Some((s, f1)),
            }
        }
        let Some((chosen, f1)) = round_best else {
            break;
        };
        selected.push(chosen);
        selected.sort_unstable();
        steps.push((chosen, f1));
        if f1 > best_f1 {
            best_f1 = f1;
            best_subset = selected.clone();
        }
        if f1 >= 1.0 - 1e-9 {
            return AseResult {
                sentences: selected,
                exact: true,
                best_f1: 1.0,
                steps,
            };
        }
    }
    AseResult {
        sentences: best_subset,
        exact: false,
        best_f1,
        steps,
    }
}

/// Reusable buffers for the greedy trials.
#[derive(Default)]
struct TrialScratch {
    qa: SelectionScratch,
    indices: Vec<usize>,
}

/// Prediction overlap of the QA model on a sentence subset, predicted
/// over the already-analysed document projected onto the subset's
/// tokens — no re-tokenization per trial (the greedy search runs
/// O(sentences²) trials per distillation).
fn f1_of_subset(
    qa: &QaModel,
    q: &QuestionAnalysis,
    question: &str,
    answer: &str,
    doc: &Document,
    subset: &[usize],
    scratch: &mut TrialScratch,
) -> f64 {
    scratch.indices.clear();
    for &s in subset {
        let sent = &doc.sentences[s];
        scratch.indices.extend(sent.token_start..sent.token_end);
    }
    let pred = qa.predict_selection(q, doc, &scratch.indices, question, &mut scratch.qa);
    token_f1(&pred.text, answer).f1
}

/// Surface text of a sentence subset, in document order.
pub fn subset_text(doc: &Document, subset: &[usize]) -> String {
    let mut parts = Vec::with_capacity(subset.len());
    for &s in subset {
        parts.push(doc.sentence_text(SentId(s)));
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_qa::ModelProfile;
    use gced_text::analyze;
    use std::sync::OnceLock;

    /// A PLM trained once on a small synthetic split (ASE always runs
    /// with the trained model in the real pipeline).
    fn plm() -> &'static QaModel {
        static MODEL: OnceLock<QaModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            let ds = gced_datasets::generate(
                gced_datasets::DatasetKind::Squad11,
                gced_datasets::GeneratorConfig {
                    train: 150,
                    dev: 16,
                    seed: 21,
                },
            );
            let mut qa = QaModel::new(ModelProfile::plm());
            qa.train(&ds.train.examples);
            qa
        })
    }

    #[test]
    fn finds_the_answer_sentence() {
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze(
            "The weather was mild that week. The Denver Broncos defeated the Carolina Panthers. \
             Tickets sold out early.",
        );
        let r = extract(qa, &q, question, "Denver Broncos", &doc, 3);
        assert!(r.sentences.contains(&1), "selected {:?}", r.sentences);
        assert!(r.best_f1 > 0.9);
    }

    #[test]
    fn stops_at_first_exact_prediction() {
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze(
            "The Denver Broncos defeated the Carolina Panthers. The parade lasted two days.",
        );
        let r = extract(qa, &q, question, "Denver Broncos", &doc, 4);
        if r.exact {
            assert_eq!(
                r.sentences.len(),
                1,
                "exact stop should keep the subset minimal"
            );
        }
    }

    #[test]
    fn falls_back_to_best_overlap_when_unpredictable() {
        let qa = plm();
        let question = "Who composed the anthem?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze("The bridge was built in 1876. The river floods in spring.");
        let r = extract(qa, &q, question, "Johann Strauss", &doc, 2);
        assert!(!r.exact);
        assert!(!r.sentences.is_empty());
        assert_eq!(r.best_f1, 0.0);
    }

    #[test]
    fn empty_document() {
        let qa = plm();
        let q = QuestionAnalysis::new("Who?");
        let doc = analyze("");
        let r = extract(qa, &q, "Who?", "X", &doc, 3);
        assert!(r.sentences.is_empty());
    }

    #[test]
    fn respects_sentence_cap() {
        let qa = plm();
        let question = "Which team defeated the Panthers?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze(
            "Rain fell. Wind blew. Clouds came. The Broncos defeated the Panthers. Snow fell.",
        );
        let r = extract(qa, &q, question, "Broncos", &doc, 2);
        assert!(r.sentences.len() <= 2);
    }

    #[test]
    fn subset_text_in_document_order() {
        let doc = analyze("First one. Second one. Third one.");
        assert_eq!(subset_text(&doc, &[0, 2]), "First one. Third one.");
    }

    #[test]
    fn deterministic() {
        let qa = plm();
        let question = "Which river flows through the city?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze("The Seine River flows through the center of Paris. Paris is large.");
        let a = extract(qa, &q, question, "Seine", &doc, 3);
        let b = extract(qa, &q, question, "Seine", &doc, 3);
        assert_eq!(a, b);
    }
}
