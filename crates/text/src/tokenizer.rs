//! Word tokenizer with byte-offset tracking.
//!
//! Splitting rules (deterministic, Unicode-aware on `char` boundaries):
//! * whitespace separates tokens and is never emitted;
//! * runs of alphanumeric characters (plus internal hyphens/apostrophes
//!   between alphanumerics, e.g. `Knowles-Carter`, `don't`) form one token;
//! * the possessive clitic `'s` and the contraction `n't` are split off as
//!   their own tokens (matching Penn-Treebank-style conventions the paper's
//!   CoreNLP tooling uses);
//! * every other non-space character is a single-character token.

use crate::token::Token;

/// Tokenize `text`, returning tokens whose `start`/`end` are byte offsets
/// into `text`. Token `index`/`sent` fields are left at 0 for the caller
/// (the [`crate::analyze`] pipeline) to fill in.
pub fn tokenize(text: &str) -> Vec<Token> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let (byte, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() {
            // Consume a word: alphanumerics with internal '-' or '\''
            // joining two alphanumerics.
            let start_byte = byte;
            let mut j = i + 1;
            while j < n {
                let (_, cj) = chars[j];
                if cj.is_alphanumeric()
                    || ((cj == '-' || cj == '\'' || cj == '\u{2019}')
                        && j + 1 < n
                        && chars[j + 1].1.is_alphanumeric())
                {
                    j += 1;
                } else if (cj == '.' || cj == ',')
                    && chars[j - 1].1.is_ascii_digit()
                    && j + 1 < n
                    && chars[j + 1].1.is_ascii_digit()
                {
                    // Decimal point or thousands separator inside a number.
                    j += 1;
                } else {
                    break;
                }
            }
            let end_byte = if j < n { chars[j].0 } else { text.len() };
            let word = &text[start_byte..end_byte];
            emit_word(word, start_byte, &mut out);
            i = j;
        } else {
            // Single-character punctuation/symbol token.
            let end_byte = if i + 1 < n {
                chars[i + 1].0
            } else {
                text.len()
            };
            out.push(Token::raw(&text[byte..end_byte], byte, end_byte));
            i += 1;
        }
    }
    out
}

/// Emit `word` (possibly splitting clitics) starting at byte offset `base`.
fn emit_word(word: &str, base: usize, out: &mut Vec<Token>) {
    let lower = word.to_lowercase();
    // Split possessive 's (but keep contractions like "it's" whole: they are
    // genuinely ambiguous, and the synthetic corpora only use possessives).
    if lower.len() > 2 && (lower.ends_with("'s") || lower.ends_with("\u{2019}s")) {
        let cut = word.len()
            - word
                .chars()
                .rev()
                .take(2)
                .map(char::len_utf8)
                .sum::<usize>();
        let head = &word[..cut];
        if !head.is_empty() && head.chars().all(|c| c.is_alphanumeric() || c == '-') {
            out.push(Token::raw(head, base, base + cut));
            out.push(Token::raw(&word[cut..], base + cut, base + word.len()));
            return;
        }
    }
    // Split n't ("didn't" -> "did" + "n't").
    if lower.len() > 3 && (lower.ends_with("n't") || lower.ends_with("n\u{2019}t")) {
        let tail_len = word
            .chars()
            .rev()
            .take(3)
            .map(char::len_utf8)
            .sum::<usize>();
        let cut = word.len() - tail_len;
        if !word[..cut].is_empty() {
            out.push(Token::raw(&word[..cut], base, base + cut));
            out.push(Token::raw(&word[cut..], base + cut, base + word.len()));
            return;
        }
    }
    out.push(Token::raw(word, base, base + word.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<String> {
        tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(texts("the quick fox"), vec!["the", "quick", "fox"]);
    }

    #[test]
    fn punctuation_is_separate() {
        assert_eq!(texts("Hello, world!"), vec!["Hello", ",", "world", "!"]);
    }

    #[test]
    fn keeps_internal_hyphens() {
        assert_eq!(texts("Knowles-Carter sang"), vec!["Knowles-Carter", "sang"]);
    }

    #[test]
    fn trailing_hyphen_is_punct() {
        assert_eq!(texts("well- known"), vec!["well", "-", "known"]);
    }

    #[test]
    fn splits_possessive() {
        assert_eq!(texts("Broncos's title"), vec!["Broncos", "'s", "title"]);
    }

    #[test]
    fn splits_negation_clitic() {
        assert_eq!(texts("didn't run"), vec!["did", "n't", "run"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(
            texts("in 1066 A.D."),
            vec!["in", "1066", "A", ".", "D", "."]
        );
    }

    #[test]
    fn offsets_are_exact() {
        let input = "A (small) test.";
        for t in tokenize(input) {
            assert_eq!(&input[t.start..t.end], t.text);
        }
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" \t\n").is_empty());
    }

    #[test]
    fn unicode_apostrophe_inside_word() {
        assert_eq!(
            texts("Beyonc\u{e9}\u{2019}s show"),
            vec!["Beyonc\u{e9}", "\u{2019}s", "show"]
        );
    }

    #[test]
    fn parentheses_and_brackets() {
        assert_eq!(texts("(AFC) champion"), vec!["(", "AFC", ")", "champion"]);
    }

    #[test]
    fn no_empty_tokens_ever() {
        for input in ["", "a", "''", "a'b", "-", "--x--", "x  y"] {
            for t in tokenize(input) {
                assert!(!t.text.is_empty(), "empty token from {input:?}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Tokens are in order, non-overlapping, non-empty, and their
        /// offsets slice back to their own text.
        #[test]
        fn offsets_sound(input in "[ a-zA-Z0-9,.'()-]{0,80}") {
            let toks = tokenize(&input);
            let mut prev_end = 0usize;
            for t in &toks {
                prop_assert!(t.start >= prev_end);
                prop_assert!(t.end > t.start);
                prop_assert_eq!(&input[t.start..t.end], t.text.as_str());
                prev_end = t.end;
            }
        }

        /// Every non-whitespace character of the input is covered by
        /// exactly one token.
        #[test]
        fn covers_non_whitespace(input in "[ a-zA-Z0-9,.]{0,60}") {
            let toks = tokenize(&input);
            let covered: usize = toks.iter().map(|t| t.end - t.start).sum();
            let expected = input.chars().filter(|c| !c.is_whitespace()).count();
            prop_assert_eq!(covered, expected);
        }
    }
}
