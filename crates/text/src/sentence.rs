//! Rule-based sentence splitter.
//!
//! Boundaries are `.`, `!`, `?` followed by whitespace-then-capital (or end
//! of input), with guards for common abbreviations and initials so that
//! "Dr. Smith" or "U.S. team" do not split. This mirrors the behaviour GCED
//! needs from CoreNLP: contexts in the paper's datasets are edited prose.

use std::ops::Range;

/// Abbreviations that do not terminate a sentence when followed by a period.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "no", "vs", "etc", "inc", "ltd", "co",
    "fig", "eq", "sec", "al", "e.g", "i.e", "u.s", "u.k",
];

/// Split `text` into sentence byte ranges. Ranges cover the trimmed
/// sentence (leading/trailing whitespace excluded) and are non-overlapping
/// and in order. Text without terminal punctuation forms one sentence.
pub fn split_sentences(text: &str) -> Vec<Range<usize>> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut ranges = Vec::new();
    let mut sent_start: Option<usize> = None;
    let mut i = 0;
    while i < n {
        let (byte, c) = chars[i];
        if sent_start.is_none() && !c.is_whitespace() {
            sent_start = Some(byte);
        }
        if matches!(c, '.' | '!' | '?') && sent_start.is_some() {
            // Absorb a run of terminal punctuation and closing quotes/brackets.
            let mut j = i + 1;
            while j < n && matches!(chars[j].1, '.' | '!' | '?' | ')' | '"' | '\'' | ']') {
                j += 1;
            }
            let boundary = is_boundary(text, &chars, i, j);
            if boundary {
                let end_byte = if j < n { chars[j].0 } else { text.len() };
                ranges.push(sent_start.unwrap()..end_byte);
                sent_start = None;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    if let Some(start) = sent_start {
        // Trailing fragment without terminal punctuation: end at the
        // last non-whitespace byte.
        let trimmed_end = start + text[start..].trim_end().len();
        if trimmed_end > start {
            ranges.push(start..trimmed_end);
        }
    }
    ranges
}

/// Decide whether the terminal-punctuation run ending before char index `j`
/// (with the triggering mark at char index `i`) is a sentence boundary.
fn is_boundary(text: &str, chars: &[(usize, char)], i: usize, j: usize) -> bool {
    let (byte, c) = chars[i];
    if c != '.' {
        return true; // '!' and '?' always end sentences here.
    }
    // Token immediately before the period.
    let before = &text[..byte];
    let last_word: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '.')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let lw = last_word.to_lowercase();
    // Single-letter initial like "B." in "B. Obama".
    if lw.len() == 1 && lw.chars().all(|c| c.is_alphabetic()) {
        return false;
    }
    if ABBREVIATIONS.contains(&lw.trim_end_matches('.')) {
        return false;
    }
    // A decimal number like "3.14" — period between digits.
    if i > 0
        && i + 1 < chars.len()
        && chars[i - 1].1.is_ascii_digit()
        && chars[i + 1].1.is_ascii_digit()
    {
        return false;
    }
    // Require whitespace + capital/digit/quote to the right, or end of text.
    let mut k = j;
    if k >= chars.len() {
        return true;
    }
    if !chars[k].1.is_whitespace() {
        return false;
    }
    while k < chars.len() && chars[k].1.is_whitespace() {
        k += 1;
    }
    if k >= chars.len() {
        return true;
    }
    let next = chars[k].1;
    next.is_uppercase() || next.is_ascii_digit() || matches!(next, '"' | '\'' | '(')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sents(text: &str) -> Vec<&str> {
        split_sentences(text)
            .into_iter()
            .map(|r| &text[r])
            .collect()
    }

    #[test]
    fn splits_simple_sentences() {
        assert_eq!(
            sents("The cat sat. The dog ran."),
            vec!["The cat sat.", "The dog ran."]
        );
    }

    #[test]
    fn question_and_exclamation() {
        assert_eq!(
            sents("Who won? The Broncos! Great."),
            vec!["Who won?", "The Broncos!", "Great."]
        );
    }

    #[test]
    fn abbreviation_does_not_split() {
        assert_eq!(
            sents("Dr. Smith arrived. He sat."),
            vec!["Dr. Smith arrived.", "He sat."]
        );
    }

    #[test]
    fn initial_does_not_split() {
        assert_eq!(
            sents("B. Obama spoke. Crowds cheered."),
            vec!["B. Obama spoke.", "Crowds cheered."]
        );
    }

    #[test]
    fn decimal_number_does_not_split() {
        assert_eq!(
            sents("It weighs 3.14 kg. Heavy."),
            vec!["It weighs 3.14 kg.", "Heavy."]
        );
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        // "et al. reported" — period followed by lowercase is not a boundary.
        assert_eq!(
            sents("Smith et al. reported gains."),
            vec!["Smith et al. reported gains."]
        );
    }

    #[test]
    fn no_terminal_punctuation_is_one_sentence() {
        assert_eq!(sents("no punctuation here"), vec!["no punctuation here"]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }

    #[test]
    fn trailing_fragment_excludes_trailing_whitespace() {
        assert_eq!(sents("no punctuation here   "), vec!["no punctuation here"]);
        assert_eq!(sents("  padded both sides \t\n"), vec!["padded both sides"]);
        let text = "First one. Then a fragment  ";
        let rs = split_sentences(text);
        assert_eq!(rs.len(), 2);
        assert_eq!(&text[rs.last().unwrap().clone()], "Then a fragment");
    }

    #[test]
    fn trailing_fragment_handles_multibyte_text() {
        // Non-ASCII final sentences: byte arithmetic on the trimmed end
        // must land on a char boundary.
        assert_eq!(sents("café résumé"), vec!["café résumé"]);
        assert_eq!(sents("naïve Zoë outré\u{a0}"), vec!["naïve Zoë outré"]);
        assert_eq!(
            sents("Er sagte alles. Schön wär's"),
            vec!["Er sagte alles.", "Schön wär's"]
        );
        assert_eq!(sents("日本語のテキスト  "), vec!["日本語のテキスト"]);
    }

    #[test]
    fn ranges_are_ordered_and_disjoint() {
        let text = "A first one. A second one! A third? Done.";
        let rs = split_sentences(text);
        for w in rs.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn closing_quote_absorbed() {
        let text = "He said \"stop.\" Then left.";
        let rs = sents(text);
        assert_eq!(rs, vec!["He said \"stop.\"", "Then left."]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sentence ranges are ordered, disjoint, within bounds, and
        /// never begin or end with whitespace.
        #[test]
        fn ranges_sound(input in "[ a-zA-Z0-9,.!?]{0,120}") {
            let rs = split_sentences(&input);
            let mut prev = 0usize;
            for r in &rs {
                prop_assert!(r.start >= prev);
                prop_assert!(r.end <= input.len());
                prop_assert!(r.start < r.end);
                let s = &input[r.clone()];
                prop_assert_eq!(s.trim(), s);
                prev = r.end;
            }
        }
    }
}
