//! String-interning vocabulary with frequency counts.
//!
//! Shared by the n-gram language model, the embedding table, and the QA
//! feature extractor: everything downstream works over dense `u32` ids.

use std::collections::HashMap;

/// Dense id for an interned word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(pub u32);

/// Reserved id for out-of-vocabulary words.
pub const UNK: WordId = WordId(0);

/// An interning vocabulary. Id 0 is always the `<unk>` token.
#[derive(Debug, Clone)]
pub struct Vocab {
    by_word: HashMap<String, WordId>,
    words: Vec<String>,
    counts: Vec<u64>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// An empty vocabulary containing only `<unk>`.
    pub fn new() -> Self {
        let mut v = Vocab {
            by_word: HashMap::new(),
            words: Vec::new(),
            counts: Vec::new(),
        };
        v.words.push("<unk>".to_string());
        v.counts.push(0);
        v.by_word.insert("<unk>".to_string(), UNK);
        v
    }

    /// Intern `word` (counting one occurrence) and return its id.
    pub fn add(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.by_word.get(word) {
            self.counts[id.0 as usize] += 1;
            return id;
        }
        let id = WordId(self.words.len() as u32);
        self.words.push(word.to_string());
        self.counts.push(1);
        self.by_word.insert(word.to_string(), id);
        id
    }

    /// Look up a word without interning; OOV maps to [`UNK`].
    pub fn get(&self, word: &str) -> WordId {
        self.by_word.get(word).copied().unwrap_or(UNK)
    }

    /// True if the exact word has been interned.
    pub fn contains(&self, word: &str) -> bool {
        self.by_word.contains_key(word)
    }

    /// The surface string for an id.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id.0 as usize]
    }

    /// Occurrence count recorded through [`Vocab::add`].
    pub fn count(&self, id: WordId) -> u64 {
        self.counts[id.0 as usize]
    }

    /// Number of distinct interned words (including `<unk>`).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when only `<unk>` is present.
    pub fn is_empty(&self) -> bool {
        self.words.len() <= 1
    }

    /// Total number of word occurrences recorded.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Build a vocabulary from an iterator of lowercased words.
    pub fn from_words<'a>(words: impl IntoIterator<Item = &'a str>) -> Self {
        let mut v = Vocab::new();
        for w in words {
            v.add(w);
        }
        v
    }

    /// Rebuild a vocabulary from `(word, count)` entries in id order
    /// (the exact inverse of [`Vocab::iter`]): words receive ids
    /// `1, 2, …` in entry order and their counts verbatim, so a
    /// serialized vocabulary round-trips to identical id assignments
    /// and counts.
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = (&'a str, u64)>) -> Self {
        let mut v = Vocab::new();
        for (word, count) in entries {
            let id = WordId(v.words.len() as u32);
            v.words.push(word.to_string());
            v.counts.push(count);
            v.by_word.insert(word.to_string(), id);
        }
        v
    }

    /// Iterate `(id, word, count)` over all interned words except `<unk>`.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str, u64)> {
        self.words
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, w)| (WordId(i as u32), w.as_str(), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocab::new();
        let a1 = v.add("alpha");
        let b = v.add("beta");
        let a2 = v.add("alpha");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(v.count(a1), 2);
        assert_eq!(v.count(b), 1);
    }

    #[test]
    fn oov_maps_to_unk() {
        let v = Vocab::from_words(["x", "y"]);
        assert_eq!(v.get("zzz"), UNK);
        assert_eq!(v.word(UNK), "<unk>");
    }

    #[test]
    fn len_and_totals() {
        let v = Vocab::from_words(["a", "b", "a", "c"]);
        assert_eq!(v.len(), 4); // unk + 3
        assert_eq!(v.total_count(), 4);
        assert!(!v.is_empty());
        assert!(Vocab::new().is_empty());
    }

    #[test]
    fn from_entries_inverts_iter() {
        let v = Vocab::from_words(["b", "a", "b", "c"]);
        let entries: Vec<(String, u64)> = v.iter().map(|(_, w, c)| (w.to_string(), c)).collect();
        let back = Vocab::from_entries(entries.iter().map(|(w, c)| (w.as_str(), *c)));
        assert_eq!(back.len(), v.len());
        for (id, w, c) in v.iter() {
            assert_eq!(back.get(w), id);
            assert_eq!(back.count(id), c);
            assert_eq!(back.word(id), w);
        }
        assert_eq!(back.get("zzz"), UNK);
    }

    #[test]
    fn iter_skips_unk() {
        let v = Vocab::from_words(["a", "b"]);
        let words: Vec<&str> = v.iter().map(|(_, w, _)| w).collect();
        assert_eq!(words, vec!["a", "b"]);
    }
}
