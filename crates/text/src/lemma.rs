//! Rule-based lemmatizer.
//!
//! Handles the inflectional morphology of the synthetic corpora: noun
//! plurals, verb -s/-ed/-ing forms, and a table of frequent irregulars.
//! Lemmas feed the lexicon lookups in QWS (Sec. III-C), where a clue word
//! match may be via the lemma rather than the surface form.

use crate::pos::Pos;

/// Irregular (surface, lemma) pairs. Kept sorted for the binary search.
const IRREGULAR: &[(&str, &str)] = &[
    ("became", "become"),
    ("began", "begin"),
    ("begun", "begin"),
    ("born", "bear"),
    ("built", "build"),
    ("came", "come"),
    ("children", "child"),
    ("did", "do"),
    ("done", "do"),
    ("feet", "foot"),
    ("found", "find"),
    ("gave", "give"),
    ("gone", "go"),
    ("got", "get"),
    ("grew", "grow"),
    ("grown", "grow"),
    ("had", "have"),
    ("held", "hold"),
    ("knew", "know"),
    ("known", "know"),
    ("led", "lead"),
    ("left", "leave"),
    ("made", "make"),
    ("men", "man"),
    ("mice", "mouse"),
    ("people", "person"),
    ("ran", "run"),
    ("rose", "rise"),
    ("said", "say"),
    ("sang", "sing"),
    ("sat", "sit"),
    ("saw", "see"),
    ("seen", "see"),
    ("showed", "show"),
    ("shown", "show"),
    ("stood", "stand"),
    ("sung", "sing"),
    ("taught", "teach"),
    ("took", "take"),
    ("was", "be"),
    ("went", "go"),
    ("were", "be"),
    ("women", "woman"),
    ("wrote", "write"),
];

/// Words ending in -ss, -us, -is that look plural but are not.
fn is_false_plural(word: &str) -> bool {
    word.ends_with("ss")
        || word.ends_with("us")
        || word.ends_with("is")
        || word.ends_with("news")
        || word.len() <= 3
}

/// Verbs whose -ed/-ing form doubles a final consonant (e.g. "starred").
fn undouble(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let n = bytes.len();
    if n >= 3 && bytes[n - 1] == bytes[n - 2] && !matches!(bytes[n - 1], b'l' | b's' | b'e') {
        Some(stem[..n - 1].to_string())
    } else {
        None
    }
}

/// Lemmatize a lowercased word given its POS tag.
pub fn lemmatize(lower: &str, pos: Pos) -> String {
    if let Ok(i) = IRREGULAR.binary_search_by_key(&lower, |(s, _)| s) {
        return IRREGULAR[i].1.to_string();
    }
    match pos {
        Pos::Noun | Pos::ProperNoun => lemmatize_noun(lower),
        Pos::Verb | Pos::Aux => lemmatize_verb(lower),
        _ => lower.to_string(),
    }
}

fn lemmatize_noun(lower: &str) -> String {
    if is_false_plural(lower) {
        return lower.to_string();
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("es") {
        if stem.ends_with("sh")
            || stem.ends_with("ch")
            || stem.ends_with('x')
            || stem.ends_with('z')
            || stem.ends_with('s')
        {
            return stem.to_string();
        }
    }
    if let Some(stem) = lower.strip_suffix('s') {
        if stem.len() >= 3 {
            return stem.to_string();
        }
    }
    lower.to_string()
}

fn lemmatize_verb(lower: &str) -> String {
    if let Some(stem) = lower.strip_suffix("ied") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("ing") {
        if stem.len() >= 3 {
            if let Some(und) = undouble(stem) {
                return und;
            }
            // "making" -> "make": restore dropped e when the stem ends in a
            // consonant preceded by a single vowel-consonant pattern.
            if needs_final_e(stem) {
                return format!("{stem}e");
            }
            return stem.to_string();
        }
    }
    if let Some(stem) = lower.strip_suffix("ed") {
        if stem.len() >= 3 {
            if let Some(und) = undouble(stem) {
                return und;
            }
            if needs_final_e(stem) {
                return format!("{stem}e");
            }
            return stem.to_string();
        }
    }
    if let Some(stem) = lower.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = lower.strip_suffix("es") {
        if stem.ends_with("sh") || stem.ends_with("ch") || stem.ends_with('x') {
            return stem.to_string();
        }
    }
    if let Some(stem) = lower.strip_suffix('s') {
        if stem.len() >= 3 && !stem.ends_with('s') {
            return stem.to_string();
        }
    }
    lower.to_string()
}

/// Heuristic: stems like "mak", "liv", "compos" need a restored final "e".
fn needs_final_e(stem: &str) -> bool {
    const RESTORE: &[&str] = &[
        "mak", "tak", "giv", "liv", "mov", "nam", "serv", "receiv", "releas", "describ", "locat",
        "compos", "produc", "captur", "featur", "includ", "stat", "creat", "not", "scor", "rul",
        "explor", "marri", "retir", "acquir", "believ", "achiev", "challeng",
    ];
    RESTORE.contains(&stem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregulars() {
        assert_eq!(lemmatize("led", Pos::Verb), "lead");
        assert_eq!(lemmatize("was", Pos::Aux), "be");
        assert_eq!(lemmatize("children", Pos::Noun), "child");
        assert_eq!(lemmatize("wrote", Pos::Verb), "write");
    }

    #[test]
    fn irregular_table_is_sorted() {
        for w in IRREGULAR.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn noun_plurals() {
        assert_eq!(lemmatize("cats", Pos::Noun), "cat");
        assert_eq!(lemmatize("cities", Pos::Noun), "city");
        assert_eq!(lemmatize("churches", Pos::Noun), "church");
        assert_eq!(lemmatize("boxes", Pos::Noun), "box");
    }

    #[test]
    fn false_plurals_untouched() {
        assert_eq!(lemmatize("class", Pos::Noun), "class");
        assert_eq!(lemmatize("bus", Pos::Noun), "bus");
        assert_eq!(lemmatize("analysis", Pos::Noun), "analysis");
    }

    #[test]
    fn verb_forms() {
        assert_eq!(lemmatize("defeated", Pos::Verb), "defeat");
        assert_eq!(lemmatize("performing", Pos::Verb), "perform");
        assert_eq!(lemmatize("making", Pos::Verb), "make");
        assert_eq!(lemmatize("starred", Pos::Verb), "star");
        assert_eq!(lemmatize("studied", Pos::Verb), "study");
        assert_eq!(lemmatize("plays", Pos::Verb), "play");
    }

    #[test]
    fn closed_class_words_pass_through() {
        assert_eq!(lemmatize("the", Pos::Det), "the");
        assert_eq!(lemmatize("of", Pos::Prep), "of");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(lemmatize("is", Pos::Noun), "is");
        assert_eq!(lemmatize("as", Pos::Noun), "as");
    }
}
