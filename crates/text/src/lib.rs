//! # gced-text — text-processing substrate for Grow-and-Clip
//!
//! The GCED paper relies on Stanford CoreNLP / nltk for tokenization,
//! sentence splitting and part-of-speech information. This crate is the
//! from-scratch Rust replacement: a deterministic, offset-preserving
//! tokenizer, a rule-based sentence splitter, a closed-class + morphology
//! POS tagger, a light lemmatizer, and a vocabulary/interner.
//!
//! The central type is [`Document`]: the fully analysed form of a context
//! string, carrying global token indices that the rest of the system (the
//! weighted syntactic parse tree, the evidence forest, the distiller) uses
//! as node identities — exactly the index scheme of Fig. 6 in the paper.
//!
//! ```
//! use gced_text::analyze;
//!
//! let doc = analyze("Denver Broncos defeated Carolina Panthers. They earned the title.");
//! assert_eq!(doc.sentences.len(), 2);
//! assert_eq!(doc.tokens[0].text, "Denver");
//! assert_eq!(&doc.text[doc.tokens[2].start..doc.tokens[2].end], "defeated");
//! ```

pub mod lemma;
pub mod pos;
pub mod sentence;
pub mod stopwords;
pub mod token;
pub mod tokenizer;
pub mod vocab;

pub use lemma::lemmatize;
pub use pos::{tag_tokens, Pos};
pub use sentence::split_sentences;
pub use stopwords::{is_insignificant_question_word, WordClass};
pub use token::{SentId, Sentence, Token, TokenId};
pub use tokenizer::tokenize;
pub use vocab::Vocab;

/// A fully analysed text: raw text, tokens with POS and lemmas, and
/// sentence boundaries. Token `index` fields are global over the document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// The original input text (unmodified).
    pub text: String,
    /// All tokens, in order; `tokens[i].index == i`.
    pub tokens: Vec<Token>,
    /// Sentence spans over `tokens`.
    pub sentences: Vec<Sentence>,
}

impl Document {
    /// Tokens belonging to sentence `sent`.
    pub fn sentence_tokens(&self, sent: SentId) -> &[Token] {
        let s = &self.sentences[sent.0];
        &self.tokens[s.token_start..s.token_end]
    }

    /// Reconstruct the surface text of a sentence from its tokens
    /// (whitespace-joined; the original spacing is recoverable through
    /// the tokens' `start`/`end` offsets instead).
    pub fn sentence_text(&self, sent: SentId) -> String {
        join_tokens(self.sentence_tokens(sent))
    }

    /// Number of tokens in the document.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the document contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Lowercased token texts — the form used for lexical matching.
    pub fn lower_texts(&self) -> Vec<String> {
        self.tokens.iter().map(|t| t.text.to_lowercase()).collect()
    }
}

/// Analyse raw text end to end: sentence split, tokenize, POS-tag,
/// lemmatize. The output token indices are global and dense.
pub fn analyze(text: &str) -> Document {
    let sentence_spans = split_sentences(text);
    let mut tokens = Vec::new();
    let mut sentences = Vec::with_capacity(sentence_spans.len());
    for span in sentence_spans.iter() {
        let token_start = tokens.len();
        let raw = &text[span.clone()];
        for mut tok in tokenize(raw) {
            tok.start += span.start;
            tok.end += span.start;
            tok.index = tokens.len();
            tokens.push(tok);
        }
        let token_end = tokens.len();
        if token_end > token_start {
            sentences.push(Sentence {
                index: sentences.len(),
                token_start,
                token_end,
                char_start: span.start,
                char_end: span.end,
            });
        }
    }
    // Stamp tokens with their (dense) sentence index.
    for s in &sentences {
        for t in &mut tokens[s.token_start..s.token_end] {
            t.sent = s.index;
        }
    }
    tag_tokens(&mut tokens);
    for t in &mut tokens {
        t.lemma = lemmatize(&t.text.to_lowercase(), t.pos);
    }
    Document { text: text.to_string(), tokens, sentences }
}

/// Join tokens into a readable string with simple detokenization rules:
/// no space before punctuation or after an opening bracket.
pub fn join_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        let glue_left = matches!(
            t.text.as_str(),
            "." | "," | "!" | "?" | ";" | ":" | ")" | "]" | "}" | "'s" | "n't" | "%" | "'"
        );
        if i > 0 && !glue_left && !matches!(tokens[i - 1].text.as_str(), "(" | "[" | "{") {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_assigns_global_indices() {
        let doc = analyze("The cat sat. The dog ran.");
        assert_eq!(doc.sentences.len(), 2);
        for (i, t) in doc.tokens.iter().enumerate() {
            assert_eq!(t.index, i);
        }
        assert_eq!(doc.sentences[0].token_start, 0);
        assert_eq!(doc.sentences[1].token_start, doc.sentences[0].token_end);
    }

    #[test]
    fn analyze_offsets_point_into_original_text() {
        let text = "William the Conqueror led troops, in 1066.";
        let doc = analyze(text);
        for t in &doc.tokens {
            assert_eq!(&text[t.start..t.end], t.text, "offset mismatch for {t:?}");
        }
    }

    #[test]
    fn sentence_tokens_partition_document() {
        let doc = analyze("One two. Three four five. Six.");
        let total: usize = doc
            .sentences
            .iter()
            .map(|s| s.token_end - s.token_start)
            .sum();
        assert_eq!(total, doc.tokens.len());
    }

    #[test]
    fn empty_input_yields_empty_document() {
        let doc = analyze("");
        assert!(doc.is_empty());
        assert!(doc.sentences.is_empty());
    }

    #[test]
    fn whitespace_only_input_yields_empty_document() {
        let doc = analyze("   \n\t  ");
        assert!(doc.is_empty());
    }

    #[test]
    fn join_tokens_respects_punctuation() {
        let doc = analyze("Hello, world!");
        assert_eq!(join_tokens(&doc.tokens), "Hello, world!");
    }

    #[test]
    fn sentence_text_roundtrip() {
        let doc = analyze("Broncos defeated Panthers. It was close.");
        assert_eq!(doc.sentence_text(SentId(0)), "Broncos defeated Panthers.");
        assert_eq!(doc.sentence_text(SentId(1)), "It was close.");
    }

    #[test]
    fn tokens_are_tagged_and_lemmatized() {
        let doc = analyze("The cats were running quickly.");
        let cats = &doc.tokens[1];
        assert_eq!(cats.lemma, "cat");
        let running = doc.tokens.iter().find(|t| t.text == "running").unwrap();
        assert_eq!(running.lemma, "run");
    }
}
