//! # gced-text — text-processing substrate for Grow-and-Clip
//!
//! The GCED paper relies on Stanford CoreNLP / nltk for tokenization,
//! sentence splitting and part-of-speech information. This crate is the
//! from-scratch Rust replacement: a deterministic, offset-preserving
//! tokenizer, a rule-based sentence splitter, a closed-class + morphology
//! POS tagger, a light lemmatizer, and a vocabulary/interner.
//!
//! The central type is [`Document`]: the fully analysed form of a context
//! string, carrying global token indices that the rest of the system (the
//! weighted syntactic parse tree, the evidence forest, the distiller) uses
//! as node identities — exactly the index scheme of Fig. 6 in the paper.
//!
//! ```
//! use gced_text::analyze;
//!
//! let doc = analyze("Denver Broncos defeated Carolina Panthers. They earned the title.");
//! assert_eq!(doc.sentences.len(), 2);
//! assert_eq!(doc.tokens[0].text, "Denver");
//! assert_eq!(&doc.text[doc.tokens[2].start..doc.tokens[2].end], "defeated");
//! ```

pub mod lemma;
pub mod pos;
pub mod sentence;
pub mod stopwords;
pub mod token;
pub mod tokenizer;
pub mod vocab;

pub use lemma::lemmatize;
pub use pos::{tag_tokens, Pos};
pub use sentence::split_sentences;
pub use stopwords::{is_insignificant_question_word, WordClass};
pub use token::{SentId, Sentence, Token, TokenId};
pub use tokenizer::tokenize;
pub use vocab::Vocab;

/// A fully analysed text: raw text, tokens with POS and lemmas, and
/// sentence boundaries. Token `index` fields are global over the document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// The original input text (unmodified).
    pub text: String,
    /// All tokens, in order; `tokens[i].index == i`.
    pub tokens: Vec<Token>,
    /// Sentence spans over `tokens`.
    pub sentences: Vec<Sentence>,
}

impl Document {
    /// An empty document (no text, tokens, or sentences).
    pub fn empty() -> Self {
        Document {
            text: String::new(),
            tokens: Vec::new(),
            sentences: Vec::new(),
        }
    }

    /// Project the document onto a subset of its token indices without
    /// re-tokenizing, re-tagging, or re-lemmatizing.
    ///
    /// `selected` must be ascending, in-bounds token indices. The
    /// projection keeps each token's surface form, POS tag, lemma, and
    /// byte offsets; `index`/`sent` are re-densified. Consecutive
    /// selected tokens from the same original sentence stay in one
    /// sentence of the view, so sentence-scoped consumers (span
    /// enumeration, clue proximity) see the original boundaries.
    ///
    /// `view`'s buffers (including per-token `String`s) are reused, so a
    /// caller looping over many selections performs no steady-state
    /// allocation. The view's `text` is left empty: every consumer works
    /// from tokens, and the original text offsets remain available on
    /// each token.
    pub fn project_into(&self, selected: &[usize], view: &mut Document) {
        view.text.clear();
        let keep = view.tokens.len().min(selected.len());
        for (j, &i) in selected.iter().enumerate() {
            let src = &self.tokens[i];
            if j < keep {
                let dst = &mut view.tokens[j];
                dst.text.clone_from(&src.text);
                dst.lemma.clone_from(&src.lemma);
                dst.pos = src.pos;
                dst.start = src.start;
                dst.end = src.end;
            } else {
                view.tokens.push(src.clone());
            }
            view.tokens[j].index = j;
        }
        view.tokens.truncate(selected.len());
        view.sentences.clear();
        let mut run_start = 0usize;
        for j in 0..selected.len() {
            let src_sent = self.tokens[selected[j]].sent;
            let next_breaks =
                j + 1 == selected.len() || self.tokens[selected[j + 1]].sent != src_sent;
            if next_breaks {
                let sent_index = view.sentences.len();
                view.sentences.push(Sentence {
                    index: sent_index,
                    token_start: run_start,
                    token_end: j + 1,
                    char_start: self.tokens[selected[run_start]].start,
                    char_end: self.tokens[selected[j]].end,
                });
                for t in &mut view.tokens[run_start..=j] {
                    t.sent = sent_index;
                }
                run_start = j + 1;
            }
        }
    }

    /// Allocating convenience wrapper around [`Document::project_into`].
    pub fn project(&self, selected: &[usize]) -> Document {
        let mut view = Document::empty();
        self.project_into(selected, &mut view);
        view
    }

    /// Tokens belonging to sentence `sent`.
    pub fn sentence_tokens(&self, sent: SentId) -> &[Token] {
        let s = &self.sentences[sent.0];
        &self.tokens[s.token_start..s.token_end]
    }

    /// Reconstruct the surface text of a sentence from its tokens
    /// (whitespace-joined; the original spacing is recoverable through
    /// the tokens' `start`/`end` offsets instead).
    pub fn sentence_text(&self, sent: SentId) -> String {
        join_tokens(self.sentence_tokens(sent))
    }

    /// Number of tokens in the document.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the document contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Lowercased token texts — the form used for lexical matching.
    pub fn lower_texts(&self) -> Vec<String> {
        self.tokens.iter().map(|t| t.text.to_lowercase()).collect()
    }
}

/// Analyse raw text end to end: sentence split, tokenize, POS-tag,
/// lemmatize. The output token indices are global and dense.
pub fn analyze(text: &str) -> Document {
    let sentence_spans = split_sentences(text);
    let mut tokens = Vec::new();
    let mut sentences = Vec::with_capacity(sentence_spans.len());
    for span in sentence_spans.iter() {
        let token_start = tokens.len();
        let raw = &text[span.clone()];
        for mut tok in tokenize(raw) {
            tok.start += span.start;
            tok.end += span.start;
            tok.index = tokens.len();
            tokens.push(tok);
        }
        let token_end = tokens.len();
        if token_end > token_start {
            sentences.push(Sentence {
                index: sentences.len(),
                token_start,
                token_end,
                char_start: span.start,
                char_end: span.end,
            });
        }
    }
    // Stamp tokens with their (dense) sentence index.
    for s in &sentences {
        for t in &mut tokens[s.token_start..s.token_end] {
            t.sent = s.index;
        }
    }
    tag_tokens(&mut tokens);
    for t in &mut tokens {
        t.lemma = lemmatize(&t.text.to_lowercase(), t.pos);
    }
    Document {
        text: text.to_string(),
        tokens,
        sentences,
    }
}

/// Join tokens into a readable string with simple detokenization rules:
/// no space before punctuation or after an opening bracket.
pub fn join_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        let glue_left = matches!(
            t.text.as_str(),
            "." | "," | "!" | "?" | ";" | ":" | ")" | "]" | "}" | "'s" | "n't" | "%" | "'"
        );
        if i > 0 && !glue_left && !matches!(tokens[i - 1].text.as_str(), "(" | "[" | "{") {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_assigns_global_indices() {
        let doc = analyze("The cat sat. The dog ran.");
        assert_eq!(doc.sentences.len(), 2);
        for (i, t) in doc.tokens.iter().enumerate() {
            assert_eq!(t.index, i);
        }
        assert_eq!(doc.sentences[0].token_start, 0);
        assert_eq!(doc.sentences[1].token_start, doc.sentences[0].token_end);
    }

    #[test]
    fn analyze_offsets_point_into_original_text() {
        let text = "William the Conqueror led troops, in 1066.";
        let doc = analyze(text);
        for t in &doc.tokens {
            assert_eq!(&text[t.start..t.end], t.text, "offset mismatch for {t:?}");
        }
    }

    #[test]
    fn sentence_tokens_partition_document() {
        let doc = analyze("One two. Three four five. Six.");
        let total: usize = doc
            .sentences
            .iter()
            .map(|s| s.token_end - s.token_start)
            .sum();
        assert_eq!(total, doc.tokens.len());
    }

    #[test]
    fn empty_input_yields_empty_document() {
        let doc = analyze("");
        assert!(doc.is_empty());
        assert!(doc.sentences.is_empty());
    }

    #[test]
    fn whitespace_only_input_yields_empty_document() {
        let doc = analyze("   \n\t  ");
        assert!(doc.is_empty());
    }

    #[test]
    fn join_tokens_respects_punctuation() {
        let doc = analyze("Hello, world!");
        assert_eq!(join_tokens(&doc.tokens), "Hello, world!");
    }

    #[test]
    fn sentence_text_roundtrip() {
        let doc = analyze("Broncos defeated Panthers. It was close.");
        assert_eq!(doc.sentence_text(SentId(0)), "Broncos defeated Panthers.");
        assert_eq!(doc.sentence_text(SentId(1)), "It was close.");
    }

    #[test]
    fn project_preserves_annotations_and_groups_sentences() {
        let doc = analyze("The cats sat here. The dog ran away. Birds sang.");
        // Select tokens spanning sentences 0 and 2, skipping some.
        let selected: Vec<usize> = doc
            .tokens
            .iter()
            .filter(|t| t.sent != 1 && !t.is_punct())
            .map(|t| t.index)
            .collect();
        let view = doc.project(&selected);
        assert_eq!(view.len(), selected.len());
        assert_eq!(view.sentences.len(), 2);
        for (j, &i) in selected.iter().enumerate() {
            assert_eq!(view.tokens[j].text, doc.tokens[i].text);
            assert_eq!(view.tokens[j].pos, doc.tokens[i].pos);
            assert_eq!(view.tokens[j].lemma, doc.tokens[i].lemma);
            assert_eq!(view.tokens[j].index, j);
        }
        // Sentence spans partition the view.
        let covered: usize = view.sentences.iter().map(|s| s.len()).sum();
        assert_eq!(covered, view.len());
    }

    #[test]
    fn project_into_reuses_buffers_and_handles_shrink_growth() {
        let doc = analyze("Alpha beta gamma delta. Epsilon zeta.");
        let mut view = Document::empty();
        doc.project_into(&[0, 1, 2, 3, 4, 5], &mut view);
        assert_eq!(view.len(), 6);
        doc.project_into(&[1, 5], &mut view);
        assert_eq!(view.len(), 2);
        assert_eq!(view.tokens[0].text, "beta");
        assert_eq!(view.tokens[1].text, "Epsilon");
        assert_eq!(view.sentences.len(), 2);
        doc.project_into(&[], &mut view);
        assert!(view.is_empty());
        assert!(view.sentences.is_empty());
    }

    #[test]
    fn project_matches_full_selection() {
        let doc = analyze("Broncos defeated Panthers. It was close.");
        let all: Vec<usize> = (0..doc.len()).collect();
        let view = doc.project(&all);
        assert_eq!(view.tokens, doc.tokens);
        assert_eq!(view.sentences.len(), doc.sentences.len());
    }

    #[test]
    fn tokens_are_tagged_and_lemmatized() {
        let doc = analyze("The cats were running quickly.");
        let cats = &doc.tokens[1];
        assert_eq!(cats.lemma, "cat");
        let running = doc.tokens.iter().find(|t| t.text == "running").unwrap();
        assert_eq!(running.lemma, "run");
    }
}
