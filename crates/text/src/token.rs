//! Token and sentence types shared across the workspace.

use crate::pos::Pos;
use std::fmt;

/// Index of a token within a [`crate::Document`] (global, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub usize);

/// Index of a sentence within a [`crate::Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SentId(pub usize);

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One surface token with linguistic annotations.
///
/// `index` is the global document position (the node index of the paper's
/// weighted syntactic parse tree); `start..end` are byte offsets into the
/// original text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form exactly as it appeared in the text.
    pub text: String,
    /// Lowercased lemma (rule-based; see [`crate::lemma`]).
    pub lemma: String,
    /// Coarse part-of-speech tag.
    pub pos: Pos,
    /// Global token index within the document.
    pub index: usize,
    /// Sentence index within the document.
    pub sent: usize,
    /// Byte offset of the first byte in the original text.
    pub start: usize,
    /// Byte offset one past the last byte in the original text.
    pub end: usize,
}

impl Token {
    /// A bare token with only surface text and offsets; POS/lemma are
    /// filled in by the analysis pipeline.
    pub fn raw(text: impl Into<String>, start: usize, end: usize) -> Self {
        let text = text.into();
        Token {
            lemma: text.to_lowercase(),
            text,
            pos: Pos::Other,
            index: 0,
            sent: 0,
            start,
            end,
        }
    }

    /// Lowercased surface form.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True for punctuation tokens.
    pub fn is_punct(&self) -> bool {
        self.pos == Pos::Punct
    }

    /// True if this token's surface form is purely alphabetic.
    pub fn is_alpha(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_alphabetic())
    }
}

/// A contiguous run of tokens forming one sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sentence {
    /// Dense sentence index within the document.
    pub index: usize,
    /// First token index (inclusive).
    pub token_start: usize,
    /// One past the last token index.
    pub token_end: usize,
    /// Byte offset of the sentence start in the original text.
    pub char_start: usize,
    /// Byte offset one past the sentence end.
    pub char_end: usize,
}

impl Sentence {
    /// Number of tokens in the sentence.
    pub fn len(&self) -> usize {
        self.token_end - self.token_start
    }

    /// True if the sentence has no tokens (never produced by `analyze`).
    pub fn is_empty(&self) -> bool {
        self.token_end == self.token_start
    }

    /// Iterate over the global token indices the sentence covers.
    pub fn token_ids(&self) -> impl Iterator<Item = TokenId> {
        (self.token_start..self.token_end).map(TokenId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_token_defaults() {
        let t = Token::raw("Hello", 0, 5);
        assert_eq!(t.lemma, "hello");
        assert_eq!(t.pos, Pos::Other);
        assert!(t.is_alpha());
    }

    #[test]
    fn token_is_alpha_rejects_numbers_and_mixed() {
        assert!(!Token::raw("1066", 0, 4).is_alpha());
        assert!(!Token::raw("B-52", 0, 4).is_alpha());
        assert!(!Token::raw("", 0, 0).is_alpha());
    }

    #[test]
    fn sentence_token_ids() {
        let s = Sentence {
            index: 0,
            token_start: 3,
            token_end: 6,
            char_start: 0,
            char_end: 0,
        };
        let ids: Vec<_> = s.token_ids().collect();
        assert_eq!(ids, vec![TokenId(3), TokenId(4), TokenId(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TokenId(7).to_string(), "t7");
        assert_eq!(SentId(2).to_string(), "s2");
    }
}
