//! Coarse part-of-speech tagging.
//!
//! A deterministic tagger layering (1) closed-class lexicon lookups,
//! (2) morphological suffix heuristics, (3) capitalization (proper nouns),
//! and (4) a small contextual repair pass. It is intentionally coarse —
//! the L-PCFG grammar and the QWS module only need the distinctions below.

use crate::stopwords::{classify, WordClass};
use crate::token::Token;

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pos {
    /// Common noun (default open-class tag).
    Noun,
    /// Proper noun (capitalized, not sentence-initial-only).
    ProperNoun,
    /// Personal / possessive pronoun.
    Pronoun,
    /// Main verb.
    Verb,
    /// Auxiliary or modal verb.
    Aux,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Determiner / article.
    Det,
    /// Preposition (including infinitival "to").
    Prep,
    /// Conjunction.
    Conj,
    /// Cardinal number.
    Num,
    /// wh-question word.
    Wh,
    /// Possessive clitic `'s` or negation `n't` or other particles.
    Particle,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl Pos {
    /// Open-class tags — candidates for content / clue words.
    pub fn is_open_class(self) -> bool {
        matches!(
            self,
            Pos::Noun | Pos::ProperNoun | Pos::Verb | Pos::Adj | Pos::Adv | Pos::Num
        )
    }

    /// Short human-readable label (used in traces and examples).
    pub fn label(self) -> &'static str {
        match self {
            Pos::Noun => "NN",
            Pos::ProperNoun => "NNP",
            Pos::Pronoun => "PRP",
            Pos::Verb => "VB",
            Pos::Aux => "AUX",
            Pos::Adj => "JJ",
            Pos::Adv => "RB",
            Pos::Det => "DT",
            Pos::Prep => "IN",
            Pos::Conj => "CC",
            Pos::Num => "CD",
            Pos::Wh => "WH",
            Pos::Particle => "RP",
            Pos::Punct => "PU",
            Pos::Other => "XX",
        }
    }
}

/// Frequent verbs whose base form carries no reliable suffix signal.
const COMMON_VERBS: &[&str] = &[
    "win",
    "won",
    "earn",
    "lead",
    "led",
    "perform",
    "write",
    "wrote",
    "written",
    "sing",
    "sang",
    "sung",
    "play",
    "played",
    "become",
    "became",
    "make",
    "made",
    "take",
    "took",
    "give",
    "gave",
    "found",
    "founded",
    "establish",
    "direct",
    "compose",
    "discover",
    "invent",
    "defeat",
    "defeated",
    "represent",
    "represented",
    "describe",
    "described",
    "locate",
    "located",
    "publish",
    "published",
    "release",
    "released",
    "receive",
    "received",
    "serve",
    "served",
    "hold",
    "held",
    "begin",
    "began",
    "begun",
    "know",
    "known",
    "call",
    "called",
    "name",
    "named",
    "bear",
    "born",
    "raise",
    "raised",
    "move",
    "moved",
    "record",
    "recorded",
    "study",
    "studied",
    "teach",
    "taught",
    "build",
    "built",
    "design",
    "designed",
    "develop",
    "developed",
    "star",
    "starred",
    "appear",
    "appeared",
    "marry",
    "married",
    "die",
    "died",
    "live",
    "lived",
    "work",
    "worked",
    "join",
    "joined",
    "say",
    "said",
    "see",
    "saw",
    "seen",
    "go",
    "went",
    "gone",
    "come",
    "came",
    "get",
    "got",
    "run",
    "ran",
    "sit",
    "sat",
    "stand",
    "stood",
    "rise",
    "rose",
    "risen",
    "grow",
    "grew",
    "grown",
    "show",
    "showed",
    "shown",
    "open",
    "opened",
    "close",
    "closed",
    "remain",
    "remained",
    "include",
    "included",
    "contain",
    "contained",
    "feature",
    "featured",
    "produce",
    "produced",
    "capture",
    "captured",
    "occupy",
    "occupied",
    "explore",
    "explored",
    "conquer",
    "conquered",
    "rule",
    "ruled",
    "reign",
    "reigned",
    "paint",
    "painted",
    "sculpt",
    "sculpted",
    "score",
    "scored",
    "coach",
    "coached",
    "host",
    "hosted",
    "visit",
    "visited",
    "border",
    "borders",
    "bordered",
    "flow",
    "flows",
    "flowed",
    "cover",
    "covers",
    "covered",
    "span",
    "spans",
    "spanned",
];

/// Frequent adjectives with no reliable suffix signal.
const COMMON_ADJECTIVES: &[&str] = &[
    "good",
    "bad",
    "big",
    "small",
    "new",
    "old",
    "high",
    "low",
    "long",
    "short",
    "great",
    "large",
    "young",
    "early",
    "late",
    "major",
    "minor",
    "famous",
    "ancient",
    "modern",
    "northern",
    "southern",
    "eastern",
    "western",
    "central",
    "first",
    "second",
    "third",
    "last",
    "next",
    "other",
    "same",
    "different",
    "important",
    "popular",
    "main",
    "key",
    "red",
    "blue",
    "green",
    "white",
    "black",
    "golden",
    "royal",
    "national",
    "local",
    "annual",
    "final",
    "own",
    "chief",
    "prominent",
    "notable",
    "renowned",
    "top",
];

/// Frequent adverbs without the -ly suffix.
const COMMON_ADVERBS: &[&str] = &[
    "very", "quite", "too", "also", "often", "never", "always", "again", "still", "soon", "now",
    "here", "there", "well", "almost", "already", "later", "once", "twice", "perhaps", "rather",
    "away", "back", "together",
];

/// Tag a mutable slice of tokens in place. Tokens must already carry their
/// sentence indices (used for sentence-initial capitalization handling).
pub fn tag_tokens(tokens: &mut [Token]) {
    let len = tokens.len();
    for i in 0..len {
        let sent_initial = i == 0 || tokens[i - 1].sent != tokens[i].sent;
        tokens[i].pos = tag_word(&tokens[i].text, sent_initial);
    }
    repair_pass(tokens);
}

/// Tag one word given whether it starts a sentence.
fn tag_word(text: &str, sent_initial: bool) -> Pos {
    if text.chars().all(|c| !c.is_alphanumeric()) {
        return Pos::Punct;
    }
    if text
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == ',')
    {
        return Pos::Num;
    }
    let lower = text.to_lowercase();
    if lower == "'s" || lower == "\u{2019}s" || lower == "n't" || lower == "n\u{2019}t" {
        return Pos::Particle;
    }
    match classify(&lower) {
        WordClass::Question => return Pos::Wh,
        WordClass::Auxiliary => return Pos::Aux,
        WordClass::Determiner => return Pos::Det,
        WordClass::Preposition => return Pos::Prep,
        WordClass::Pronoun => return Pos::Pronoun,
        WordClass::Conjunction => return Pos::Conj,
        WordClass::Particle => return Pos::Particle,
        WordClass::Open => {}
    }
    if COMMON_VERBS.contains(&lower.as_str()) {
        return Pos::Verb;
    }
    if COMMON_ADJECTIVES.contains(&lower.as_str()) {
        return Pos::Adj;
    }
    if COMMON_ADVERBS.contains(&lower.as_str()) {
        return Pos::Adv;
    }
    // Capitalized mid-sentence => proper noun. Sentence-initial capitalized
    // words fall through to morphology and default to proper noun only if
    // they look like names (no common suffix match).
    let capitalized = text.chars().next().is_some_and(|c| c.is_uppercase());
    if capitalized && !sent_initial {
        return Pos::ProperNoun;
    }
    if let Some(pos) = suffix_tag(&lower) {
        return pos;
    }
    if capitalized {
        return Pos::ProperNoun;
    }
    Pos::Noun
}

/// Morphological suffix heuristics for open-class words.
fn suffix_tag(lower: &str) -> Option<Pos> {
    let n = lower.len();
    if n > 4 && lower.ends_with("ly") {
        return Some(Pos::Adv);
    }
    if n > 5 && (lower.ends_with("ing") || lower.ends_with("ized") || lower.ends_with("ised")) {
        return Some(Pos::Verb);
    }
    if n > 4 && lower.ends_with("ed") {
        return Some(Pos::Verb);
    }
    if n > 4
        && (lower.ends_with("ous")
            || lower.ends_with("ful")
            || lower.ends_with("ive")
            || lower.ends_with("able")
            || lower.ends_with("ible")
            || lower.ends_with("ish")
            || lower.ends_with("less")
            || lower.ends_with("ical")
            || lower.ends_with("ial"))
    {
        return Some(Pos::Adj);
    }
    if n > 5
        && (lower.ends_with("tion")
            || lower.ends_with("sion")
            || lower.ends_with("ment")
            || lower.ends_with("ness")
            || lower.ends_with("ity")
            || lower.ends_with("ship")
            || lower.ends_with("ism"))
    {
        return Some(Pos::Noun);
    }
    None
}

/// Contextual repairs: a word tagged Verb directly after a determiner is
/// re-tagged Noun ("the painting"), and "to" before a verb stays Prep (we
/// do not distinguish infinitival to).
fn repair_pass(tokens: &mut [Token]) {
    for i in 1..tokens.len() {
        if tokens[i].sent != tokens[i - 1].sent {
            continue;
        }
        if tokens[i].pos == Pos::Verb
            && matches!(tokens[i - 1].pos, Pos::Det | Pos::Adj | Pos::Num)
            && tokens[i].text.to_lowercase().ends_with("ing")
        {
            tokens[i].pos = Pos::Noun;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;

    fn pos_of(text: &str, word: &str) -> Pos {
        let doc = analyze(text);
        doc.tokens
            .iter()
            .find(|t| t.text == word)
            .unwrap_or_else(|| panic!("{word} not found in {text}"))
            .pos
    }

    #[test]
    fn closed_classes() {
        assert_eq!(pos_of("The cat sat.", "The"), Pos::Det);
        assert_eq!(pos_of("Who won the game?", "Who"), Pos::Wh);
        assert_eq!(pos_of("It was done by him.", "by"), Pos::Prep);
        assert_eq!(pos_of("It was done by him.", "was"), Pos::Aux);
        assert_eq!(pos_of("He and she left.", "and"), Pos::Conj);
    }

    #[test]
    fn proper_noun_mid_sentence() {
        assert_eq!(pos_of("The Denver Broncos won.", "Denver"), Pos::ProperNoun);
        assert_eq!(
            pos_of("The Denver Broncos won.", "Broncos"),
            Pos::ProperNoun
        );
    }

    #[test]
    fn verbs_by_lexicon_and_suffix() {
        assert_eq!(pos_of("They defeated the team.", "defeated"), Pos::Verb);
        assert_eq!(pos_of("She was performing daily.", "performing"), Pos::Verb);
        assert_eq!(pos_of("He analyzed the data.", "analyzed"), Pos::Verb);
    }

    #[test]
    fn adjectives_and_adverbs() {
        assert_eq!(pos_of("A famous painter lived here.", "famous"), Pos::Adj);
        assert_eq!(
            pos_of("She sang beautifully there.", "beautifully"),
            Pos::Adv
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(pos_of("Founded in 1066 exactly.", "1066"), Pos::Num);
        assert_eq!(pos_of("It costs 3.5 million.", "3.5"), Pos::Num);
    }

    #[test]
    fn punctuation() {
        assert_eq!(pos_of("Stop, now!", ","), Pos::Punct);
        assert_eq!(pos_of("Stop, now!", "!"), Pos::Punct);
    }

    #[test]
    fn possessive_clitic_is_particle() {
        assert_eq!(pos_of("The team's coach spoke.", "'s"), Pos::Particle);
    }

    #[test]
    fn noun_suffixes() {
        assert_eq!(
            pos_of("The celebration was loud.", "celebration"),
            Pos::Noun
        );
        assert_eq!(pos_of("Their friendship lasted.", "friendship"), Pos::Noun);
    }

    #[test]
    fn gerund_after_determiner_is_noun() {
        assert_eq!(pos_of("The painting hung there.", "painting"), Pos::Noun);
    }

    #[test]
    fn open_class_predicate() {
        assert!(Pos::Noun.is_open_class());
        assert!(Pos::ProperNoun.is_open_class());
        assert!(Pos::Verb.is_open_class());
        assert!(!Pos::Det.is_open_class());
        assert!(!Pos::Punct.is_open_class());
    }

    #[test]
    fn labels_are_distinct_for_core_tags() {
        use std::collections::HashSet;
        let tags = [
            Pos::Noun,
            Pos::ProperNoun,
            Pos::Pronoun,
            Pos::Verb,
            Pos::Aux,
            Pos::Adj,
            Pos::Adv,
            Pos::Det,
            Pos::Prep,
            Pos::Conj,
            Pos::Num,
            Pos::Wh,
            Pos::Particle,
            Pos::Punct,
            Pos::Other,
        ];
        let labels: HashSet<_> = tags.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), tags.len());
    }
}
