//! Closed-class word lists and the QWS "insignificant word" filter.
//!
//! Section III-C of the paper removes from the question: all question terms
//! (wh-words), auxiliary verbs, functional words (conjunctions, articles,
//! prepositions, pronouns) and punctuation. The remaining words are the
//! significant words used to find question-relevant clue words.

/// Coarse closed-class membership for a lowercased word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordClass {
    /// wh-question words: who, what, where, ...
    Question,
    /// auxiliary / modal verbs: is, did, would, ...
    Auxiliary,
    /// determiners and articles.
    Determiner,
    /// prepositions.
    Preposition,
    /// personal/possessive/reflexive pronouns.
    Pronoun,
    /// coordinating/subordinating conjunctions.
    Conjunction,
    /// common adverbial/particle function words (not, also, there, ...).
    Particle,
    /// not a closed-class word.
    Open,
}

pub const QUESTION_WORDS: &[&str] = &[
    "who", "whom", "whose", "what", "which", "where", "when", "why", "how",
];

pub const AUXILIARIES: &[&str] = &[
    "be", "am", "is", "are", "was", "were", "been", "being", "do", "does", "did", "done", "have",
    "has", "had", "having", "will", "would", "shall", "should", "can", "could", "may", "might",
    "must", "ought",
];

pub const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "each", "every", "some", "any", "no",
    "another", "such", "both", "either", "neither", "all", "most", "many", "few", "several",
    "various",
];

pub const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "from", "to", "about", "into", "over", "under",
    "between", "among", "after", "before", "during", "against", "through", "across", "behind",
    "beyond", "near", "within", "without", "upon", "as", "per", "since", "until", "toward",
    "towards",
];

pub const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "her",
    "us",
    "them",
    "my",
    "your",
    "his",
    "its",
    "our",
    "their",
    "mine",
    "yours",
    "hers",
    "ours",
    "theirs",
    "myself",
    "yourself",
    "himself",
    "herself",
    "itself",
    "ourselves",
    "themselves",
    "one",
    "someone",
    "anyone",
    "everyone",
    "something",
    "anything",
    "everything",
    "nothing",
];

pub const CONJUNCTIONS: &[&str] = &[
    "and", "or", "but", "nor", "yet", "so", "because", "although", "though", "while", "whereas",
    "if", "unless", "whether", "than", "that",
];

pub const PARTICLES: &[&str] = &[
    "not", "n't", "also", "too", "there", "then", "thus", "just", "only", "even", "up", "out",
    "off", "down",
];

/// Classify a lowercased word into its closed-class category.
pub fn classify(word: &str) -> WordClass {
    if QUESTION_WORDS.contains(&word) {
        WordClass::Question
    } else if AUXILIARIES.contains(&word) {
        WordClass::Auxiliary
    } else if DETERMINERS.contains(&word) {
        WordClass::Determiner
    } else if PREPOSITIONS.contains(&word) {
        WordClass::Preposition
    } else if PRONOUNS.contains(&word) {
        WordClass::Pronoun
    } else if CONJUNCTIONS.contains(&word) {
        WordClass::Conjunction
    } else if PARTICLES.contains(&word) {
        WordClass::Particle
    } else {
        WordClass::Open
    }
}

/// The QWS filter of Sec. III-C: true when a question word carries no
/// content and must be removed before clue-word matching. Punctuation is
/// handled by the caller via POS; this covers the lexical classes.
pub fn is_insignificant_question_word(word: &str) -> bool {
    let lower = word.to_lowercase();
    if !lower.chars().any(|c| c.is_alphanumeric()) {
        return true; // pure punctuation
    }
    classify(&lower) != WordClass::Open
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_question_words() {
        assert_eq!(classify("who"), WordClass::Question);
        assert_eq!(classify("how"), WordClass::Question);
    }

    #[test]
    fn classify_open_words() {
        assert_eq!(classify("broncos"), WordClass::Open);
        assert_eq!(classify("defeated"), WordClass::Open);
    }

    #[test]
    fn insignificant_filter_matches_paper_example() {
        // "Which NFL team represented the AFC at Super Bowl 50?"
        // Significant leftovers: NFL, team, represented, AFC, Super, Bowl, 50.
        let q = [
            "which",
            "nfl",
            "team",
            "represented",
            "the",
            "afc",
            "at",
            "super",
            "bowl",
            "50",
            "?",
        ];
        let kept: Vec<&str> = q
            .iter()
            .copied()
            .filter(|w| !is_insignificant_question_word(w))
            .collect();
        assert_eq!(
            kept,
            vec!["nfl", "team", "represented", "afc", "super", "bowl", "50"]
        );
    }

    #[test]
    fn auxiliaries_and_pronouns_are_insignificant() {
        for w in ["did", "is", "they", "their", "and", "of", "the", "not"] {
            assert!(
                is_insignificant_question_word(w),
                "{w} should be insignificant"
            );
        }
    }

    #[test]
    fn punctuation_is_insignificant() {
        for w in ["?", "!", ",", ".", "(", ")"] {
            assert!(is_insignificant_question_word(w));
        }
    }

    #[test]
    fn case_insensitive() {
        assert!(is_insignificant_question_word("Which"));
        assert!(!is_insignificant_question_word("NFL"));
    }

    #[test]
    fn word_lists_are_lowercase_and_unique() {
        for list in [
            QUESTION_WORDS,
            AUXILIARIES,
            DETERMINERS,
            PREPOSITIONS,
            PRONOUNS,
            CONJUNCTIONS,
            PARTICLES,
        ] {
            let mut seen = std::collections::HashSet::new();
            for w in list {
                assert_eq!(*w, w.to_lowercase());
                assert!(seen.insert(*w), "duplicate {w}");
            }
        }
    }
}
