//! Embedded lexical data.
//!
//! Coverage is driven by the vocabulary of the synthetic corpora in
//! `gced-datasets` (sports, music, geography, history, science domains)
//! plus a layer of frequent general English. All entries are lowercase.

/// Synonym sets. Every member of a set is a synonym of every other member.
pub const SYNSETS: &[&[&str]] = &[
    // --- general verbs -------------------------------------------------
    &["defeat", "beat", "overcome", "vanquish"],
    &["win", "triumph", "prevail"],
    &["earn", "gain", "obtain", "secure"],
    &["lead", "head", "command", "direct"],
    &["perform", "play", "present"],
    &["represent", "stand", "embody"],
    &["found", "establish", "create", "institute"],
    &["discover", "find", "detect", "uncover"],
    &["invent", "devise", "originate"],
    &["write", "compose", "author", "pen"],
    &["build", "construct", "erect"],
    &["show", "display", "exhibit", "demonstrate"],
    &["begin", "start", "commence"],
    &["end", "finish", "conclude", "terminate"],
    &["study", "examine", "investigate"],
    &["describe", "depict", "portray"],
    &["capture", "seize", "take"],
    &["release", "publish", "issue"],
    &["receive", "get", "accept"],
    &["hold", "host", "stage"],
    &["move", "relocate", "transfer"],
    &["name", "call", "designate", "dub"],
    &["border", "adjoin", "neighbor"],
    &["cover", "span", "extend"],
    &["rule", "govern", "reign"],
    &["teach", "instruct", "educate"],
    &["live", "reside", "dwell"],
    &["die", "perish", "expire"],
    &["marry", "wed"],
    &["sing", "vocalize"],
    &["dance", "move"],
    // --- general nouns --------------------------------------------------
    &["champion", "winner", "victor", "titleholder"],
    &["team", "squad", "club", "side"],
    &["game", "match", "contest"],
    &["competition", "tournament", "contest", "championship"],
    &["title", "championship", "crown"],
    &["battle", "fight", "combat", "conflict"],
    &["war", "conflict", "warfare"],
    &["king", "monarch", "ruler", "sovereign"],
    &["queen", "monarch", "ruler"],
    &["duke", "noble", "aristocrat"],
    &["leader", "chief", "head", "commander"],
    &["army", "force", "troops", "military"],
    &["city", "town", "municipality", "metropolis"],
    &["country", "nation", "state", "land"],
    &["capital", "seat"],
    &["river", "stream", "waterway"],
    &["mountain", "peak", "summit"],
    &["region", "area", "zone", "territory"],
    &["population", "inhabitants", "residents", "people"],
    &["singer", "vocalist", "artist"],
    &["musician", "artist", "performer"],
    &["band", "group", "ensemble"],
    &["song", "track", "tune", "number"],
    &["album", "record", "release"],
    &["movie", "film", "picture"],
    &["author", "writer", "novelist"],
    &["book", "novel", "work", "volume"],
    &["painting", "artwork", "canvas"],
    &["painter", "artist"],
    &["scientist", "researcher", "scholar"],
    &["physicist", "scientist"],
    &["chemist", "scientist"],
    &["discovery", "finding", "breakthrough"],
    &["invention", "creation", "innovation"],
    &["theory", "hypothesis", "model"],
    &["element", "substance"],
    &["university", "college", "institution", "academy"],
    &["professor", "academic", "scholar"],
    &["award", "prize", "honor", "trophy"],
    &["coach", "manager", "trainer"],
    &["player", "athlete", "competitor"],
    &["stadium", "arena", "venue", "ground"],
    &["child", "kid", "youngster"],
    &["museum", "gallery"],
    &["bridge", "crossing", "span"],
    &["company", "firm", "corporation", "enterprise"],
    &["founder", "creator", "originator"],
    &["evidence", "proof", "support"],
    &["answer", "reply", "response"],
    &["question", "query", "inquiry"],
    // --- domain terms -----------------------------------------------------
    &["nfl", "football"],
    &["nba", "basketball"],
    &["mlb", "baseball"],
    &["duchy", "duke"],
    // --- adjectives -----------------------------------------------------
    &["famous", "renowned", "celebrated", "prominent", "notable"],
    &["big", "large", "huge", "vast"],
    &["small", "little", "tiny", "minor"],
    &["old", "ancient", "aged"],
    &["new", "modern", "recent"],
    &["important", "significant", "major", "key"],
    &["quick", "fast", "rapid", "swift"],
    &["beautiful", "lovely", "gorgeous"],
    &["popular", "beloved", "favored"],
    &["first", "initial", "earliest"],
    &["last", "final", "ultimate"],
];

/// Symmetric antonym pairs.
pub const ANTONYMS: &[(&str, &str)] = &[
    ("win", "lose"),
    ("winner", "loser"),
    ("victory", "defeat"),
    ("north", "south"),
    ("east", "west"),
    ("northern", "southern"),
    ("eastern", "western"),
    ("big", "small"),
    ("large", "small"),
    ("old", "new"),
    ("old", "young"),
    ("ancient", "modern"),
    ("early", "late"),
    ("first", "last"),
    ("high", "low"),
    ("long", "short"),
    ("begin", "end"),
    ("start", "finish"),
    ("open", "close"),
    ("rise", "fall"),
    ("major", "minor"),
    ("war", "peace"),
    ("attack", "defend"),
    ("offense", "defense"),
    ("hot", "cold"),
    ("day", "night"),
    ("living", "dead"),
    ("birth", "death"),
    ("before", "after"),
];

/// Hypernym edges: (hyponym, hypernym). Siblings = co-hyponyms.
pub const HYPERNYMS: &[(&str, &str)] = &[
    // sports
    ("football", "sport"),
    ("basketball", "sport"),
    ("baseball", "sport"),
    ("hockey", "sport"),
    ("soccer", "sport"),
    ("tennis", "sport"),
    ("golf", "sport"),
    ("cricket", "sport"),
    ("rugby", "sport"),
    ("nfl", "league"),
    ("nba", "league"),
    ("mlb", "league"),
    ("nhl", "league"),
    ("afc", "conference"),
    ("nfc", "conference"),
    ("quarterback", "player"),
    ("striker", "player"),
    ("pitcher", "player"),
    // music
    ("violin", "instrument"),
    ("piano", "instrument"),
    ("guitar", "instrument"),
    ("drums", "instrument"),
    ("cello", "instrument"),
    ("flute", "instrument"),
    ("trumpet", "instrument"),
    ("jazz", "genre"),
    ("rock", "genre"),
    ("pop", "genre"),
    ("blues", "genre"),
    ("opera", "genre"),
    ("singing", "performance"),
    ("dancing", "performance"),
    ("acting", "performance"),
    // geography
    ("river", "waterbody"),
    ("lake", "waterbody"),
    ("sea", "waterbody"),
    ("ocean", "waterbody"),
    ("mountain", "landform"),
    ("valley", "landform"),
    ("plateau", "landform"),
    ("plain", "landform"),
    ("desert", "landform"),
    ("city", "settlement"),
    ("town", "settlement"),
    ("village", "settlement"),
    ("capital", "settlement"),
    ("france", "country"),
    ("germany", "country"),
    ("england", "country"),
    ("spain", "country"),
    ("italy", "country"),
    // history / society
    ("king", "royalty"),
    ("queen", "royalty"),
    ("prince", "royalty"),
    ("princess", "royalty"),
    ("duke", "royalty"),
    ("emperor", "royalty"),
    ("battle", "event"),
    ("war", "event"),
    ("siege", "event"),
    ("treaty", "agreement"),
    ("armistice", "agreement"),
    ("soldier", "fighter"),
    ("knight", "fighter"),
    ("warrior", "fighter"),
    // science
    ("physics", "science"),
    ("chemistry", "science"),
    ("biology", "science"),
    ("astronomy", "science"),
    ("geology", "science"),
    ("mathematics", "science"),
    ("electron", "particle"),
    ("proton", "particle"),
    ("neutron", "particle"),
    ("hydrogen", "element"),
    ("oxygen", "element"),
    ("carbon", "element"),
    ("radium", "element"),
    ("polonium", "element"),
    ("telescope", "instrument"),
    ("microscope", "instrument"),
    // arts
    ("novel", "book"),
    ("biography", "book"),
    ("poem", "literature"),
    ("novel", "literature"),
    ("play", "literature"),
    ("portrait", "painting"),
    ("landscape", "painting"),
    ("fresco", "painting"),
    ("sculpture", "artwork"),
    ("painting", "artwork"),
    // awards
    ("grammy", "award"),
    ("oscar", "award"),
    ("nobel", "award"),
    ("pulitzer", "award"),
    // animals (general layer)
    ("dog", "animal"),
    ("cat", "animal"),
    ("horse", "animal"),
    ("eagle", "bird"),
    ("falcon", "bird"),
    ("bronco", "horse"),
    ("panther", "cat"),
    // colors
    ("red", "color"),
    ("blue", "color"),
    ("green", "color"),
    ("orange", "color"),
    ("golden", "color"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_entries_lowercase() {
        for set in SYNSETS {
            for w in *set {
                assert_eq!(*w, w.to_lowercase(), "synset entry {w}");
            }
        }
        for (a, b) in ANTONYMS {
            assert_eq!(*a, a.to_lowercase());
            assert_eq!(*b, b.to_lowercase());
        }
        for (c, p) in HYPERNYMS {
            assert_eq!(*c, c.to_lowercase());
            assert_eq!(*p, p.to_lowercase());
        }
    }

    #[test]
    fn synsets_have_at_least_two_members() {
        for set in SYNSETS {
            assert!(set.len() >= 2);
        }
    }

    #[test]
    fn no_self_antonyms() {
        for (a, b) in ANTONYMS {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn no_duplicate_antonym_pairs() {
        let mut seen = HashSet::new();
        for (a, b) in ANTONYMS {
            let key = if a < b { (*a, *b) } else { (*b, *a) };
            assert!(seen.insert(key), "duplicate antonym pair {key:?}");
        }
    }

    #[test]
    fn hypernym_edges_are_not_reflexive() {
        for (c, p) in HYPERNYMS {
            assert_ne!(c, p);
        }
    }
}
