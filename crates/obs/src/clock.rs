//! The observability clock — the **only** module in the workspace (with
//! the serve batcher/http deadline modules and the bench harness) that
//! is allowed to read the monotonic clock (`gced-analyze` DET003
//! allowlist).
//!
//! Everything here is a *sidecar* measurement: ticks feed span timings,
//! stage histograms, and profiler exports, never rendered result bytes.
//! The rest of `gced-obs` (and every instrumented crate) works in plain
//! `u64` nanosecond offsets handed out by this module, so a wall-clock
//! read can never leak into an output path without tripping the lint.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The process trace epoch: the first clock read. All tick values are
/// offsets from it, so timestamps from different threads share one
/// monotonic timeline (what the Chrome trace export needs).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process trace epoch. The first call
/// in the process returns 0.
pub fn ticks_ns() -> u64 {
    Instant::now().duration_since(epoch()).as_nanos() as u64
}

/// A started monotonic stopwatch: the type non-allowlisted modules use
/// when they need an elapsed duration (probe latency, server uptime)
/// without reading the clock themselves.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start a stopwatch now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since `start`.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds since `start`, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        let n = self.0.elapsed().as_nanos();
        if n > u64::MAX as u128 {
            u64::MAX
        } else {
            n as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let a = ticks_ns();
        let b = ticks_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_advances() {
        let w = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(w.elapsed_ns() >= 1_000_000);
        assert!(w.elapsed() >= Duration::from_millis(1));
    }
}
