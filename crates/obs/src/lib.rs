//! # gced-obs — deterministic span tracing and stage profiling
//!
//! A zero-dependency observability layer for the Grow-and-Clip
//! pipeline: RAII [`span`] guards record a tree of stage timings and
//! **deterministic counter payloads** (trials pruned, cache hits, spans
//! scored) per distillation, a [`capture`] scope collects one tree per
//! unit of work (one request, one offline distillation), and exporters
//! turn trees into Chrome trace-event JSON ([`chrome_trace`], loadable
//! in Perfetto / `chrome://tracing`), a per-stage text summary
//! ([`stage_summary`]), or deterministic sidecar JSON
//! ([`SpanNode::render_json`], the serve flight recorder's format).
//!
//! ## Determinism contract
//!
//! Monotonic-clock reads live exclusively in [`clock`] (DET003
//! allowlisted); every other module — including this one — handles
//! opaque `u64` tick offsets. Traces are a *sidecar channel*: span
//! names, nesting, and counters are pure functions of the input, and
//! nothing observed here may feed rendered result bytes. The serve
//! byte-parity pin (served body == offline body) holds with tracing on.
//!
//! ## Cost model
//!
//! Tracing is off by default. Disabled, [`span`] and [`counter`] are a
//! single relaxed atomic load — the `obs/span_disabled_overhead` bench
//! gates the instrumented hot loop against the pre-instrumentation
//! `gced/distill_end_to_end` median. Enabled, each span is two clock
//! reads and a `Vec` push on a thread-local buffer; recording happens
//! only inside a [`capture`] scope (or, for whole-process profiling,
//! with [`set_ambient`] collection armed), so an enabled process pays
//! nothing on threads that aren't tracing.

pub mod clock;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------------

/// Master switch: when off, instrumentation is one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Ambient collection: completed root spans on threads *without* a
/// [`capture`] scope are pushed to the global collector (whole-process
/// profiling for `gced run --profile`). Off by default so a long-lived
/// server can trace per-request without unbounded global accumulation.
static AMBIENT: AtomicBool = AtomicBool::new(false);

/// Enable or disable tracing process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is tracing enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm ambient (whole-process) collection. Implies nothing
/// about [`set_enabled`]; profiling callers set both.
pub fn set_ambient(on: bool) {
    AMBIENT.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Thread-local recording
// ---------------------------------------------------------------------------

/// One recorded span, flat form (tree-ified on take).
struct Rec {
    name: &'static str,
    parent: Option<usize>,
    start_ns: u64,
    dur_ns: u64,
    counters: Vec<(&'static str, u64)>,
}

struct Buf {
    recs: Vec<Rec>,
    stack: Vec<usize>,
    /// Ambient buffers flush each completed root span to the global
    /// collector; capture buffers hand the whole tree to their scope.
    ambient: bool,
}

impl Buf {
    fn new(ambient: bool) -> Self {
        Buf {
            recs: Vec::new(),
            stack: Vec::new(),
            ambient,
        }
    }
}

thread_local! {
    static BUF: RefCell<Option<Buf>> = const { RefCell::new(None) };
}

/// Stable per-thread index for profiler exports (assignment order, not
/// OS thread id — DET004-clean).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Completed ambient root spans: `(thread index, tree)`.
static COLLECTOR: Mutex<Vec<(u64, SpanNode)>> = Mutex::new(Vec::new());

/// Drain everything ambient collection gathered, sorted by
/// `(thread index, start tick)`.
pub fn drain_ambient() -> Vec<(u64, SpanNode)> {
    let mut trees = std::mem::take(
        &mut *COLLECTOR
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    trees.sort_by_key(|(tid, n)| (*tid, n.start_ns));
    trees
}

/// An RAII span: created open by [`span`], closed (duration stamped) on
/// drop. Inert (zero further cost) when tracing is disabled or the
/// thread isn't recording.
pub struct SpanGuard {
    idx: Option<usize>,
}

/// Open a span named `name` under the current span of this thread's
/// trace, if one is being recorded.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { idx: None };
    }
    span_slow(name)
}

#[inline(never)]
fn span_slow(name: &'static str) -> SpanGuard {
    BUF.with(|cell| {
        let mut cell = cell.borrow_mut();
        let buf = match cell.as_mut() {
            Some(buf) => buf,
            None if AMBIENT.load(Ordering::Relaxed) => cell.insert(Buf::new(true)),
            None => return SpanGuard { idx: None },
        };
        let parent = buf.stack.last().copied();
        let idx = buf.recs.len();
        buf.recs.push(Rec {
            name,
            parent,
            start_ns: clock::ticks_ns(),
            dur_ns: 0,
            counters: Vec::new(),
        });
        buf.stack.push(idx);
        SpanGuard { idx: Some(idx) }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        BUF.with(|cell| {
            let mut cell = cell.borrow_mut();
            let Some(buf) = cell.as_mut() else { return };
            let end = clock::ticks_ns();
            // Close any children a panic left open, then this span.
            while let Some(top) = buf.stack.pop() {
                buf.recs[top].dur_ns = end.saturating_sub(buf.recs[top].start_ns);
                if top == idx {
                    break;
                }
            }
            if buf.ambient && buf.stack.is_empty() {
                let recs = std::mem::take(&mut buf.recs);
                for tree in build_forest(recs) {
                    let tid = TID.with(|t| *t);
                    COLLECTOR
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((tid, tree));
                }
            }
        });
    }
}

/// Add `delta` to the named counter of the innermost open span on this
/// thread. Counters must be **deterministic payloads** (cache hits,
/// trials pruned — pure functions of the input), never timings.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    counter_slow(name, delta);
}

#[inline(never)]
fn counter_slow(name: &'static str, delta: u64) {
    BUF.with(|cell| {
        let mut cell = cell.borrow_mut();
        let Some(buf) = cell.as_mut() else { return };
        let Some(&top) = buf.stack.last() else { return };
        let counters = &mut buf.recs[top].counters;
        match counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => counters.push((name, delta)),
        }
    });
}

/// Run `f` with a fresh trace on this thread, rooted at a span named
/// `root`, and return its result plus the recorded tree. Returns
/// `None` for the tree when tracing is disabled. Nested captures stack:
/// the outer trace pauses and resumes untouched; if `f` panics the
/// partial trace is discarded and the outer trace restored.
pub fn capture<T>(root: &'static str, f: impl FnOnce() -> T) -> (T, Option<SpanNode>) {
    if !enabled() {
        return (f(), None);
    }
    struct Restore {
        prev: Option<Option<Buf>>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                BUF.with(|cell| *cell.borrow_mut() = prev);
            }
        }
    }
    let prev = BUF.with(|cell| cell.borrow_mut().replace(Buf::new(false)));
    let mut restore = Restore { prev: Some(prev) };
    let guard = span(root);
    let out = f();
    drop(guard);
    let buf = BUF.with(|cell| {
        let mut cell = cell.borrow_mut();
        let taken = cell.take();
        *cell = restore.prev.take().flatten();
        taken
    });
    // `restore` is now disarmed (prev taken); its drop is a no-op.
    drop(restore);
    (
        out,
        buf.and_then(|b| build_forest(b.recs).into_iter().next()),
    )
}

// ---------------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------------

/// One node of a recorded span tree. `start_ns`/`dur_ns` are monotonic
/// sidecar timings (excluded from determinism comparisons); `name`,
/// `counters` (insertion-ordered), and `children` (execution-ordered)
/// are deterministic for a given input.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub name: &'static str,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub counters: Vec<(&'static str, u64)>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A hand-assembled node (the serve batcher grafts a
    /// `batch.coalesce` root over each request's distill tree).
    pub fn synthetic(name: &'static str, start_ns: u64, dur_ns: u64) -> SpanNode {
        SpanNode {
            name,
            start_ns,
            dur_ns,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Total duration of every span named `name` in this tree (ns).
    pub fn total_ns(&self, name: &str) -> u64 {
        let own = if self.name == name { self.dur_ns } else { 0 };
        own + self.children.iter().map(|c| c.total_ns(name)).sum::<u64>()
    }

    /// Sum of the named counter over the whole tree.
    pub fn counter_total(&self, name: &str) -> u64 {
        let own: u64 = self
            .counters
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .sum();
        own + self
            .children
            .iter()
            .map(|c| c.counter_total(name))
            .sum::<u64>()
    }

    /// Render the tree as JSON. With `include_timings` false the output
    /// contains only the deterministic fields (names, counters,
    /// children) — what the flight-recorder determinism test compares.
    pub fn render_json(&self, include_timings: bool) -> String {
        let mut out = String::with_capacity(256);
        self.push_json(&mut out, include_timings);
        out
    }

    fn push_json(&self, out: &mut String, include_timings: bool) {
        out.push_str("{\"name\":");
        push_json_string(out, self.name);
        if include_timings {
            out.push_str(",\"start_ns\":");
            out.push_str(&self.start_ns.to_string());
            out.push_str(",\"dur_ns\":");
            out.push_str(&self.dur_ns.to_string());
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.push_json(out, include_timings);
        }
        out.push_str("]}");
    }
}

/// Tree-ify a flat record list (children keep execution order). Spans
/// without a parent become roots; the normal capture path produces
/// exactly one.
fn build_forest(recs: Vec<Rec>) -> Vec<SpanNode> {
    let mut nodes: Vec<Option<SpanNode>> = recs
        .iter()
        .map(|r| {
            Some(SpanNode {
                name: r.name,
                start_ns: r.start_ns,
                dur_ns: r.dur_ns,
                counters: r.counters.clone(),
                children: Vec::new(),
            })
        })
        .collect();
    let mut roots = Vec::new();
    // Children appear after their parent in record order, so walking
    // from the end attaches each subtree fully built.
    for i in (0..recs.len()).rev() {
        let node = nodes[i].take().expect("unvisited node");
        match recs[i].parent {
            Some(p) => {
                let parent = nodes[p].as_mut().expect("parent outlives child");
                parent.children.insert(0, node);
            }
            None => roots.insert(0, node),
        }
    }
    roots
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Minimal JSON string escape (names are identifiers, but stay safe).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render span trees as Chrome trace-event JSON (the format Perfetto
/// and `chrome://tracing` load): one complete (`"ph":"X"`) event per
/// span, timestamps in microseconds on the shared process timeline,
/// counters as event `args`.
pub fn chrome_trace(threads: &[(u64, SpanNode)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, tree) in threads {
        push_chrome_events(&mut out, *tid, tree, &mut first);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn push_chrome_events(out: &mut String, tid: u64, node: &SpanNode, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":");
    push_json_string(out, node.name);
    out.push_str(",\"ph\":\"X\",\"ts\":");
    push_micros(out, node.start_ns);
    out.push_str(",\"dur\":");
    push_micros(out, node.dur_ns);
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"args\":{");
    for (i, (name, value)) in node.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str("}}");
    for child in &node.children {
        push_chrome_events(out, tid, child, first);
    }
}

/// Nanoseconds as microseconds with fixed millinanosecond precision
/// (`123456` ns → `123.456`).
fn push_micros(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    out.push('.');
    out.push_str(&format!("{:03}", ns % 1_000));
}

/// Per-stage totals aggregated over a set of trees.
#[derive(Debug, Clone)]
pub struct StageRow {
    pub name: &'static str,
    pub calls: u64,
    pub total_ns: u64,
    /// Total minus time spent in child spans.
    pub self_ns: u64,
}

/// Aggregate spans by name over `threads`, sorted by self time
/// (descending), ties by name — the profiler's table rows.
pub fn stage_rows(threads: &[(u64, SpanNode)]) -> Vec<StageRow> {
    let mut rows: Vec<StageRow> = Vec::new();
    fn visit(node: &SpanNode, rows: &mut Vec<StageRow>) {
        let children_ns: u64 = node.children.iter().map(|c| c.dur_ns).sum();
        let self_ns = node.dur_ns.saturating_sub(children_ns);
        match rows.iter_mut().find(|r| r.name == node.name) {
            Some(row) => {
                row.calls += 1;
                row.total_ns += node.dur_ns;
                row.self_ns += self_ns;
            }
            None => rows.push(StageRow {
                name: node.name,
                calls: 1,
                total_ns: node.dur_ns,
                self_ns,
            }),
        }
        for child in &node.children {
            visit(child, rows);
        }
    }
    for (_, tree) in threads {
        visit(tree, &mut rows);
    }
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    rows
}

/// The sorted per-stage text summary `--profile` prints: self/total
/// time and call counts per stage.
pub fn stage_summary(threads: &[(u64, SpanNode)]) -> String {
    let rows = stage_rows(threads);
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("stage".len()))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>8}  {:>12}  {:>12}\n",
        "stage", "calls", "self(ms)", "total(ms)"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12.3}  {:>12.3}\n",
            r.name,
            r.calls,
            r.self_ns as f64 / 1e6,
            r.total_ns as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize: the tests flip process-global switches.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let out = f();
        set_enabled(false);
        set_ambient(false);
        out
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(false);
        let (value, tree) = capture("root", || {
            let _s = span("child");
            counter("hits", 3);
            41 + 1
        });
        assert_eq!(value, 42);
        assert!(tree.is_none());
    }

    #[test]
    fn capture_builds_a_nested_tree_with_counters() {
        let tree = with_tracing(|| {
            let (value, tree) = capture("distill", || {
                {
                    let _g = span("grow");
                    {
                        let _t = span("grow.trial");
                        counter("scored", 2);
                    }
                    let _t2 = span("grow.trial");
                    counter("pruned", 1);
                    counter("pruned", 4);
                }
                let _c = span("clip");
                7
            });
            assert_eq!(value, 7);
            tree.expect("tree recorded")
        });
        assert_eq!(tree.name, "distill");
        assert_eq!(tree.children.len(), 2);
        let grow = &tree.children[0];
        assert_eq!(grow.name, "grow");
        assert_eq!(grow.children.len(), 2);
        assert_eq!(grow.children[0].counters, vec![("scored", 2)]);
        // Repeated counter() calls on one span accumulate.
        assert_eq!(grow.children[1].counters, vec![("pruned", 5)]);
        assert_eq!(tree.children[1].name, "clip");
        assert_eq!(tree.counter_total("pruned"), 5);
        assert_eq!(tree.counter_total("scored"), 2);
        assert!(tree.total_ns("grow.trial") <= tree.total_ns("grow"));
    }

    #[test]
    fn spans_outside_any_scope_are_inert() {
        with_tracing(|| {
            // Enabled, but no capture and no ambient: nothing recorded,
            // nothing leaks into a later capture.
            {
                let _s = span("stray");
                counter("stray", 1);
            }
            let (_, tree) = capture("root", || ());
            let tree = tree.expect("tree");
            assert!(tree.children.is_empty());
            assert_eq!(tree.counter_total("stray"), 0);
        });
    }

    #[test]
    fn nested_captures_restore_the_outer_trace() {
        let tree = with_tracing(|| {
            let (_, outer) = capture("outer", || {
                let _before = span("before");
                drop(_before);
                let (_, inner) = capture("inner", || {
                    let _s = span("inner.child");
                });
                let inner = inner.expect("inner tree");
                assert_eq!(inner.name, "inner");
                assert_eq!(inner.children.len(), 1);
                let _after = span("after");
            });
            outer.expect("outer tree")
        });
        // The inner capture's spans never contaminate the outer tree.
        let names: Vec<&str> = tree.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["before", "after"]);
    }

    #[test]
    fn capture_discards_on_panic_and_restores() {
        with_tracing(|| {
            let result = std::panic::catch_unwind(|| {
                let (_, _) = capture("doomed", || {
                    let _s = span("child");
                    panic!("boom");
                });
            });
            assert!(result.is_err());
            // The thread still captures cleanly afterwards.
            let (_, tree) = capture("next", || {
                let _s = span("ok");
            });
            let tree = tree.expect("tree");
            assert_eq!(tree.children.len(), 1);
            assert_eq!(tree.children[0].name, "ok");
        });
    }

    #[test]
    fn ambient_collection_gathers_root_spans() {
        with_tracing(|| {
            set_ambient(true);
            drain_ambient();
            {
                let _root = span("unit");
                let _child = span("unit.child");
            }
            {
                let _root = span("unit2");
            }
            set_ambient(false);
            let trees = drain_ambient();
            let names: Vec<&str> = trees.iter().map(|(_, t)| t.name).collect();
            assert_eq!(names, vec!["unit", "unit2"]);
            assert_eq!(trees[0].1.children.len(), 1);
            assert!(drain_ambient().is_empty());
        });
    }

    #[test]
    fn render_json_is_deterministic_and_timings_are_optional() {
        let tree = with_tracing(|| {
            let (_, tree) = capture("root", || {
                let _s = span("stage");
                counter("hits", 2);
            });
            tree.expect("tree")
        });
        let with_t = tree.render_json(true);
        assert!(with_t.contains("\"start_ns\":"));
        assert!(with_t.contains("\"dur_ns\":"));
        let bare = tree.render_json(false);
        assert!(!bare.contains("_ns\""));
        assert_eq!(
            bare,
            "{\"name\":\"root\",\"counters\":{},\"children\":[\
             {\"name\":\"stage\",\"counters\":{\"hits\":2},\"children\":[]}]}"
        );
        assert_eq!(bare, tree.render_json(false), "byte-stable");
    }

    #[test]
    fn chrome_trace_emits_one_complete_event_per_span() {
        let mut root = SpanNode::synthetic("root", 1_500, 10_000);
        let mut child = SpanNode::synthetic("child", 2_000, 3_250);
        child.counters.push(("pruned", 4));
        root.children.push(child);
        let json = chrome_trace(&[(1, root)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"dur\":3.250"));
        assert!(json.contains("\"args\":{\"pruned\":4}"));
    }

    #[test]
    fn stage_summary_aggregates_self_and_total() {
        let mut root = SpanNode::synthetic("distill", 0, 10_000_000);
        let mut grow = SpanNode::synthetic("grow", 0, 6_000_000);
        grow.children.push(SpanNode::synthetic("qa", 0, 2_000_000));
        grow.children.push(SpanNode::synthetic("qa", 0, 1_000_000));
        root.children.push(grow);
        let rows = stage_rows(&[(1, root)]);
        let find = |n: &str| rows.iter().find(|r| r.name == n).expect("row");
        assert_eq!(find("qa").calls, 2);
        assert_eq!(find("qa").total_ns, 3_000_000);
        assert_eq!(find("grow").self_ns, 3_000_000);
        assert_eq!(find("distill").self_ns, 4_000_000);
        let text = stage_summary(&[(1, SpanNode::synthetic("only", 0, 1_000))]);
        assert!(text.contains("stage"));
        assert!(text.contains("only"));
    }
}
