//! Incremental selection prediction — the QA half of the shared
//! evidence-search engine.
//!
//! Both halves of Grow-and-Clip evaluate the QA model on many
//! *selections of one analysed document*: the grow search (ASE) trials
//! sentence subsets, the clip search (SCS) trials token removals. A
//! selection splits into **runs** — the maximal groups of selected
//! tokens sharing one original sentence, which are exactly the sentences
//! of the projected view ([`gced_text::Document::project_into`]) — and
//! the span scorer's features factor almost entirely per run: every
//! feature of a candidate span depends only on the run's own tokens plus
//! four small integers describing the *clue layout* around it (distance
//! to the nearest clue / verb-clue before and after the run, in view
//! coordinates).
//!
//! [`SelectionScoreCache`] exploits that factorization: per-run best
//! spans are memoized keyed by `(run, clue layout)`, so consecutive
//! near-identical selections (adjacent greedy trials, consecutive clip
//! iterations) re-score only the runs that actually changed. Every
//! prediction is **bitwise identical** to
//! [`QaModel::predict_selection`] on the same selection — the features
//! are computed by mirrored arithmetic on the same inputs, the argmax
//! uses the same first-strict-max rule, and the property suite pins the
//! equivalence on randomized documents and selections.
//!
//! The cache transparently falls back to the uncached path when the
//! factorization does not hold: score-noise profiles perturb spans by
//! their *view-global* coordinates, and window truncation cuts runs
//! mid-sentence, so both gate to [`QaModel::predict_selection`].

use crate::features::{span_boundary, wh_block, QuestionAnalysis, N_BASE};
use crate::model::{Prediction, QaModel, SelectionScratch, MAX_SPAN};
use gced_nn::kernels::fold_dot_f64;
use gced_text::{join_tokens, Document, Token};
use std::collections::HashMap;

/// Absent cross-run clue distance.
const NONE: u32 = u32::MAX;

/// The clue layout around one run, in view coordinates: distance from
/// the run start to the nearest clue / verb-clue before it, and from the
/// run end to the nearest clue / verb-clue after it (`NONE` = absent).
/// Together with the run's own tokens this determines every span
/// feature, so it is the memoization key's context half.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrossCtx {
    gb: u32,
    ga: u32,
    vb: u32,
    va: u32,
}

/// Best span of one run under one clue layout: run-relative token range
/// plus its score (`None` when the run admits no candidate span).
#[derive(Debug, Clone, Copy)]
struct RunBest {
    rel: Option<(u32, u32)>,
    score: f64,
}

/// Context-independent data of one run, computed once per distinct run.
#[derive(Debug)]
struct RunEntry {
    /// Sentence clue coverage (feature f1) of the run.
    coverage: f64,
    /// In-run clue positions, run-relative, ascending.
    clues_rel: Vec<u32>,
    /// In-run verb-clue positions, run-relative, ascending.
    verb_clues_rel: Vec<u32>,
    /// Memoized best spans per clue layout.
    by_ctx: Vec<(CrossCtx, RunBest)>,
}

/// Scratch describing one run of the current selection.
#[derive(Debug, Clone, Copy)]
struct RunRef {
    /// Start within `selected` (also the run's view start).
    start: usize,
    /// One past the end within `selected`.
    end: usize,
}

/// Per-(question, document) cache of span-score partials.
///
/// Create one per analysed document and reuse it for every selection of
/// that document scored against one question — the contract the search
/// engine's `SearchContext` upholds. Feeding selections of a different
/// document or question produces unspecified predictions (debug builds
/// assert the document size).
#[derive(Debug, Default)]
pub struct SelectionScoreCache {
    init: bool,
    doc_len: usize,
    /// token -> matches a question content word (clue / f5 predicate).
    clue: Vec<bool>,
    /// token -> clue with `Pos::Verb`.
    verb_clue: Vec<bool>,
    /// token -> id of its lemma among content lemmas (f1), or `NONE`.
    cov_lemma: Vec<u32>,
    /// token -> id of its lemma among matched lemmas (coverage), or `NONE`.
    matched_lemma: Vec<u32>,
    /// Number of distinct matched-lemma ids.
    n_matched: usize,
    /// `q.content_lemmas.len()`.
    total_content: usize,
    /// token -> IDF value (feature f6 term).
    idf_val: Vec<f64>,
    runs: HashMap<Box<[u32]>, RunEntry>,
    /// Cache effectiveness counters (runs scored fresh vs replayed).
    pub run_misses: u64,
    /// See [`SelectionScoreCache::run_misses`].
    pub run_hits: u64,
    // -- per-call scratch ------------------------------------------------
    run_refs: Vec<RunRef>,
    ctxs: Vec<CrossCtx>,
    bests: Vec<RunBest>,
    seen_stamp: Vec<u32>,
    stamp: u32,
    key_buf: Vec<u32>,
    winner_tokens: Vec<Token>,
    fallback: SelectionScratch,
}

impl SelectionScoreCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)build the per-token tables for one (question, document) pair.
    fn init(&mut self, qa: &QaModel, q: &QuestionAnalysis, doc: &Document) {
        let n = doc.len();
        self.doc_len = n;
        self.clue.clear();
        self.verb_clue.clear();
        self.cov_lemma.clear();
        self.matched_lemma.clear();
        self.idf_val.clear();
        self.runs.clear();
        self.total_content = q.content_lemmas.len();
        let mut cov_ids: HashMap<&str, u32> = HashMap::new();
        let mut matched_ids: HashMap<&str, u32> = HashMap::new();
        for t in &doc.tokens {
            let lower = t.lower();
            let matched = q.matches(&lower, &t.lemma);
            self.clue.push(matched);
            self.verb_clue
                .push(matched && t.pos == gced_text::Pos::Verb);
            self.cov_lemma.push(if q.content_lemmas.contains(&t.lemma) {
                let next = cov_ids.len() as u32;
                *cov_ids.entry(t.lemma.as_str()).or_insert(next)
            } else {
                NONE
            });
            self.matched_lemma.push(if matched {
                let next = matched_ids.len() as u32;
                *matched_ids.entry(t.lemma.as_str()).or_insert(next)
            } else {
                NONE
            });
            self.idf_val
                .push(qa.idf.get(&lower).copied().unwrap_or(2.0));
        }
        self.n_matched = matched_ids.len();
        self.seen_stamp = vec![0; cov_ids.len().max(self.n_matched)];
        self.stamp = 0;
        self.init = true;
    }

    /// Next dedup stamp (lazy-cleared `seen` bitmap).
    fn bump_stamp(&mut self) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.seen_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
        self.stamp
    }
}

impl QaModel {
    /// [`QaModel::predict_selection`] through a span-score cache: runs
    /// unchanged since an earlier selection (same tokens, same clue
    /// layout) replay their memoized best span instead of re-scoring.
    /// Bitwise-identical output; falls back to the uncached path for
    /// noisy profiles and window-truncated views.
    pub fn predict_selection_cached(
        &self,
        q: &QuestionAnalysis,
        doc: &Document,
        selected: &[usize],
        question: &str,
        cache: &mut SelectionScoreCache,
    ) -> Prediction {
        if self.profile().noise != 0.0 || selected.len() > self.profile().window {
            return self.predict_selection(q, doc, selected, question, &mut cache.fallback);
        }
        if !cache.init {
            cache.init(self, q, doc);
        }
        debug_assert_eq!(
            cache.doc_len,
            doc.len(),
            "SelectionScoreCache is bound to one document"
        );

        // ---- segment the selection into sentence runs -------------------
        cache.run_refs.clear();
        let mut i = 0;
        while i < selected.len() {
            let sent = doc.tokens[selected[i]].sent;
            let start = i;
            while i < selected.len() && doc.tokens[selected[i]].sent == sent {
                i += 1;
            }
            cache.run_refs.push(RunRef { start, end: i });
        }

        // ---- question coverage (abstention check) -----------------------
        // Mirrors `question_coverage` on the projected view: distinct
        // matched lemmas across all runs, capped at the content total.
        let coverage = if cache.total_content == 0 {
            1.0
        } else {
            let stamp = cache.bump_stamp();
            let mut present = 0usize;
            for &t in selected {
                let id = cache.matched_lemma[t];
                if id != NONE && cache.seen_stamp[id as usize] != stamp {
                    cache.seen_stamp[id as usize] = stamp;
                    present += 1;
                }
            }
            present.min(cache.total_content) as f64 / cache.total_content as f64
        };
        if coverage < self.threshold() {
            return Prediction::none();
        }

        // ---- clue layout per run (view coordinates) ---------------------
        // Forward pass tracks the nearest clue / verb-clue before each
        // run; backward pass the nearest after. Distances are run-edge
        // relative, so runs keep their layout when far-away parts of the
        // selection change.
        let n_runs = cache.run_refs.len();
        cache.ctxs.clear();
        cache.ctxs.resize(
            n_runs,
            CrossCtx {
                gb: NONE,
                ga: NONE,
                vb: NONE,
                va: NONE,
            },
        );
        let mut last_clue: Option<usize> = None;
        let mut last_verb: Option<usize> = None;
        for r in 0..n_runs {
            let RunRef { start, end } = cache.run_refs[r];
            cache.ctxs[r].gb = last_clue.map_or(NONE, |p| (start - p) as u32);
            cache.ctxs[r].vb = last_verb.map_or(NONE, |p| (start - p) as u32);
            for (v, &t) in selected.iter().enumerate().take(end).skip(start) {
                if cache.clue[t] {
                    last_clue = Some(v);
                    if cache.verb_clue[t] {
                        last_verb = Some(v);
                    }
                }
            }
        }
        let mut next_clue: Option<usize> = None;
        let mut next_verb: Option<usize> = None;
        for r in (0..n_runs).rev() {
            let RunRef { start, end } = cache.run_refs[r];
            cache.ctxs[r].ga = next_clue.map_or(NONE, |p| (p + 1 - end) as u32);
            cache.ctxs[r].va = next_verb.map_or(NONE, |p| (p + 1 - end) as u32);
            for v in (start..end).rev() {
                let t = selected[v];
                if cache.clue[t] {
                    if next_clue.is_none_or(|p| v < p) {
                        next_clue = Some(v);
                    }
                    if cache.verb_clue[t] && next_verb.is_none_or(|p| v < p) {
                        next_verb = Some(v);
                    }
                }
            }
        }

        // ---- per-run best spans (memoized) ------------------------------
        cache.bests.clear();
        for r in 0..n_runs {
            let RunRef { start, end } = cache.run_refs[r];
            let run = &selected[start..end];
            let ctx = cache.ctxs[r];
            cache.key_buf.clear();
            cache.key_buf.extend(run.iter().map(|&t| t as u32));
            if !cache.runs.contains_key(cache.key_buf.as_slice()) {
                let entry = build_run_entry(
                    run,
                    &cache.clue,
                    &cache.verb_clue,
                    &cache.cov_lemma,
                    cache.total_content,
                    &mut cache.seen_stamp,
                    &mut cache.stamp,
                );
                cache.runs.insert(cache.key_buf.as_slice().into(), entry);
            }
            let entry = cache
                .runs
                .get_mut(cache.key_buf.as_slice())
                .expect("run entry just ensured");
            let best = if let Some(&(_, b)) = entry.by_ctx.iter().find(|(c, _)| *c == ctx) {
                cache.run_hits += 1;
                b
            } else {
                cache.run_misses += 1;
                let _span = gced_obs::span("qa.predict");
                let b = score_run(
                    self,
                    q,
                    doc,
                    run,
                    entry.coverage,
                    &entry.clues_rel,
                    &entry.verb_clues_rel,
                    &cache.idf_val,
                    ctx,
                );
                entry.by_ctx.push((ctx, b));
                b
            };
            cache.bests.push(best);
        }

        // ---- global argmax (first strict max, in view order) ------------
        let mut best: Option<(usize, (u32, u32), f64)> = None;
        for (r, rb) in cache.bests.iter().enumerate() {
            let Some(rel) = rb.rel else { continue };
            match best {
                Some((_, _, b)) if b >= rb.score => {}
                _ => best = Some((r, rel, rb.score)),
            }
        }
        let Some((r, (rs, re), score)) = best else {
            return Prediction::none();
        };
        let run_start = cache.run_refs[r].start;
        cache.winner_tokens.clear();
        cache.winner_tokens.extend(
            selected[run_start + rs as usize..run_start + re as usize]
                .iter()
                .map(|&t| doc.tokens[t].clone()),
        );
        Prediction {
            text: join_tokens(&cache.winner_tokens),
            score,
            span: Some((run_start + rs as usize, run_start + re as usize)),
        }
    }
}

/// Build the context-independent run data.
fn build_run_entry(
    run: &[usize],
    clue: &[bool],
    verb_clue: &[bool],
    cov_lemma: &[u32],
    total_content: usize,
    seen_stamp: &mut [u32],
    stamp: &mut u32,
) -> RunEntry {
    let mut clues_rel = Vec::new();
    let mut verb_clues_rel = Vec::new();
    // Distinct content lemmas present (feature f1's numerator).
    *stamp = stamp.wrapping_add(1);
    if *stamp == 0 {
        seen_stamp.iter_mut().for_each(|s| *s = 0);
        *stamp = 1;
    }
    let cov_stamp = *stamp;
    let mut cov_present = 0usize;
    for (rel, &t) in run.iter().enumerate() {
        if clue[t] {
            clues_rel.push(rel as u32);
            if verb_clue[t] {
                verb_clues_rel.push(rel as u32);
            }
        }
        let cid = cov_lemma[t];
        if cid != NONE && seen_stamp[cid as usize] != cov_stamp {
            seen_stamp[cid as usize] = cov_stamp;
            cov_present += 1;
        }
    }
    // Mirrors `sentence_clue_coverage` on the view sentence.
    let coverage = if total_content == 0 {
        0.0
    } else {
        cov_present as f64 / total_content as f64
    };
    RunEntry {
        coverage,
        clues_rel,
        verb_clues_rel,
        by_ctx: Vec::new(),
    }
}

/// Score every candidate span of one run under one clue layout,
/// returning the first strict maximum — mirrored arithmetic of
/// `base_features_with_coverage` + `score_span` on the projected view.
#[allow(clippy::too_many_arguments)]
fn score_run(
    qa: &QaModel,
    q: &QuestionAnalysis,
    doc: &Document,
    run: &[usize],
    coverage: f64,
    clues_rel: &[u32],
    verb_clues_rel: &[u32],
    idf_val: &[f64],
    ctx: CrossCtx,
) -> RunBest {
    let n = run.len();
    let weights = qa.weights();
    let off = wh_block(q.wh) * N_BASE;
    let mut best: Option<((u32, u32), f64)> = None;
    for rs in 0..n {
        if !span_boundary(&doc.tokens[run[rs]].pos) {
            continue;
        }
        let hi = (rs + MAX_SPAN).min(n);
        for re in (rs + 1)..=hi {
            if !span_boundary(&doc.tokens[run[re - 1]].pos) {
                continue;
            }
            let score = span_score(
                q,
                doc,
                run,
                coverage,
                clues_rel,
                verb_clues_rel,
                idf_val,
                ctx,
                rs,
                re,
                weights,
                off,
            );
            match best {
                Some((_, b)) if b >= score => {}
                _ => best = Some(((rs as u32, re as u32), score)),
            }
        }
    }
    match best {
        Some((rel, score)) => RunBest {
            rel: Some(rel),
            score,
        },
        None => RunBest {
            rel: None,
            score: f64::NEG_INFINITY,
        },
    }
}

/// One span's score. Every feature value is produced by the same
/// floating-point expression as the view-global path, so the resulting
/// f64 is bit-equal; both paths contract through the shared
/// [`fold_dot_f64`] kernel, so the dot cannot drift.
#[allow(clippy::too_many_arguments)]
fn span_score(
    q: &QuestionAnalysis,
    doc: &Document,
    run: &[usize],
    coverage: f64,
    clues_rel: &[u32],
    verb_clues_rel: &[u32],
    idf_val: &[f64],
    ctx: CrossCtx,
    rs: usize,
    re: usize,
    weights: &[f64; crate::features::N_FEATURES],
    off: usize,
) -> f64 {
    use gced_text::Pos;
    let len = re - rs;
    let mut f = [0.0f64; N_BASE];
    f[0] = 1.0;
    f[1] = coverage;
    // f2: nearest clue outside the span. In-run clues share the view
    // sentence (no penalty); cross-run clues carry the +6 penalty and
    // their distance decomposes into span-to-edge + edge-to-clue.
    let mut nearest: Option<usize> = None;
    let mut consider = |d: usize| match nearest {
        Some(b) if b <= d => {}
        _ => nearest = Some(d),
    };
    for &p in clues_rel {
        let p = p as usize;
        if p >= rs && p < re {
            continue;
        }
        let d = if p < rs { rs - p } else { p + 1 - re };
        consider(d);
    }
    if ctx.gb != NONE {
        consider(rs + ctx.gb as usize + 6);
    }
    if ctx.ga != NONE {
        consider((run.len() - re) + ctx.ga as usize + 6);
    }
    f[2] = match nearest {
        Some(d) => 1.0 / (1.0 + d as f64),
        None => 0.0,
    };
    // f3: answer-type match.
    let span_tok = |j: usize| &doc.tokens[run[j]];
    let mut has_num = false;
    let mut has_proper = false;
    let mut has_noun = false;
    for j in rs..re {
        match span_tok(j).pos {
            Pos::Num => has_num = true,
            Pos::ProperNoun => {
                has_proper = true;
                has_noun = true;
            }
            Pos::Noun => has_noun = true,
            _ => {}
        }
    }
    f[3] = match q.wh {
        crate::WhType::Person | crate::WhType::Place => {
            if has_proper {
                1.0
            } else {
                0.0
            }
        }
        crate::WhType::Number => {
            if has_num {
                1.0
            } else {
                0.0
            }
        }
        crate::WhType::Entity => {
            if has_noun {
                1.0
            } else {
                0.0
            }
        }
        crate::WhType::Unknown => 0.5,
    };
    f[4] = (len as f64 - 2.0).abs() / 4.0;
    // f5: question overlap — the clue predicate restricted to the span.
    let overlap = clues_rel
        .iter()
        .filter(|&&p| (p as usize) >= rs && (p as usize) < re)
        .count();
    f[5] = overlap as f64 / len as f64;
    // f6: mean IDF.
    f[6] = (rs..re).map(|j| idf_val[run[j]]).sum::<f64>() / len as f64 / 10.0;
    f[7] = (rs..re)
        .filter(|&j| span_tok(j).pos == Pos::ProperNoun)
        .count() as f64
        / len as f64;
    f[8] = (rs..re).filter(|&j| span_tok(j).pos == Pos::Num).count() as f64 / len as f64;
    // f9/f10: any clue within 3 tokens before/after the span (raw view
    // distance, no sentence penalty) — the nearest clue decides
    // existence-within-threshold.
    let in_run_before = clues_rel
        .iter()
        .any(|&p| (p as usize) < rs && rs - (p as usize) <= 3);
    let in_run_after = clues_rel
        .iter()
        .any(|&p| (p as usize) >= re && (p as usize) + 1 - re <= 3);
    let cross_before = ctx.gb != NONE && rs + ctx.gb as usize <= 3;
    let cross_after = ctx.ga != NONE && (run.len() - re) + ctx.ga as usize <= 3;
    f[9] = (in_run_before || cross_before) as u8 as f64;
    f[10] = (in_run_after || cross_after) as u8 as f64;
    f[11] = (rs == 0) as u8 as f64;
    // f12/f13: direction-aware verb-clue adjacency.
    let verb_in_after = verb_clues_rel
        .iter()
        .any(|&p| (p as usize) >= re && (p as usize) + 1 - re <= 3);
    let verb_in_before = verb_clues_rel
        .iter()
        .any(|&p| (p as usize) < rs && rs - (p as usize) <= 3);
    let verb_cross_after = ctx.va != NONE && (run.len() - re) + ctx.va as usize <= 3;
    let verb_cross_before = ctx.vb != NONE && rs + ctx.vb as usize <= 3;
    let verb_clue_after = verb_in_after || verb_cross_after;
    let verb_clue_before = verb_in_before || verb_cross_before;
    f[12] = (q.wh_subject && verb_clue_after) as u8 as f64;
    f[13] = (!q.wh_subject && verb_clue_before) as u8 as f64;
    let score = fold_dot_f64(0.0, &f, &weights[..N_BASE]);
    fold_dot_f64(score, &f, &weights[off..off + N_BASE])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelProfile, QaModel};
    use gced_text::analyze;

    fn trained(kind: gced_datasets::DatasetKind, seed: u64) -> QaModel {
        let ds = gced_datasets::generate(
            kind,
            gced_datasets::GeneratorConfig {
                train: 120,
                dev: 20,
                seed,
            },
        );
        let mut qa = QaModel::new(ModelProfile::plm());
        qa.train(&ds.train.examples);
        qa
    }

    /// Deterministic selection sampler.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    fn assert_bitwise_equal(
        qa: &QaModel,
        q: &QuestionAnalysis,
        doc: &Document,
        question: &str,
        selections: &[Vec<usize>],
    ) {
        let mut cache = SelectionScoreCache::new();
        let mut scratch = SelectionScratch::default();
        for sel in selections {
            let plain = qa.predict_selection(q, doc, sel, question, &mut scratch);
            let cached = qa.predict_selection_cached(q, doc, sel, question, &mut cache);
            assert_eq!(plain.text, cached.text, "selection {sel:?}");
            assert_eq!(
                plain.score.to_bits(),
                cached.score.to_bits(),
                "selection {sel:?}: {} vs {}",
                plain.score,
                cached.score
            );
            assert_eq!(plain.span, cached.span, "selection {sel:?}");
        }
    }

    #[test]
    fn cached_matches_plain_on_random_selections() {
        let qa = trained(gced_datasets::DatasetKind::Squad11, 11);
        let question = "Which team defeated the Panthers?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze(
            "The weather was mild that week in the city. The Denver Broncos defeated the \
             Carolina Panthers to earn the title. Tickets sold out early in the morning. \
             The parade lasted two days and the fans celebrated.",
        );
        let n = doc.len();
        let mut rng = Lcg(42);
        let mut selections: Vec<Vec<usize>> = vec![(0..n).collect(), vec![0], vec![n - 1]];
        for _ in 0..40 {
            let sel: Vec<usize> = (0..n).filter(|_| !rng.next().is_multiple_of(3)).collect();
            if !sel.is_empty() {
                selections.push(sel);
            }
        }
        // Whole-sentence subsets (the grow search's trial shapes).
        for mask in 1..16usize {
            let sel: Vec<usize> = doc
                .sentences
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .flat_map(|(_, s)| s.token_start..s.token_end)
                .collect();
            selections.push(sel);
        }
        assert_bitwise_equal(&qa, &q, &doc, question, &selections);
    }

    #[test]
    fn cached_matches_plain_with_learned_threshold() {
        // SQuAD-2.0 training calibrates a finite no-answer threshold, so
        // the abstention branch is exercised through the cached coverage.
        let qa = trained(gced_datasets::DatasetKind::Squad20, 7);
        assert!(qa.learned_threshold().is_some());
        let question = "Who discovered the comet?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze(
            "The committee approved the budget. The bridge opened in spring. \
             A famous astronomer discovered the comet in 1786.",
        );
        let n = doc.len();
        let mut rng = Lcg(9);
        let mut selections: Vec<Vec<usize>> = vec![(0..n).collect()];
        for _ in 0..30 {
            let sel: Vec<usize> = (0..n).filter(|_| rng.next().is_multiple_of(2)).collect();
            if !sel.is_empty() {
                selections.push(sel);
            }
        }
        assert_bitwise_equal(&qa, &q, &doc, question, &selections);
    }

    #[test]
    fn repeated_selections_hit_the_cache() {
        let qa = trained(gced_datasets::DatasetKind::Squad11, 3);
        let question = "Which team won the title?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze("The Broncos won the title. The band played all night.");
        let sel: Vec<usize> = (0..doc.len()).collect();
        let mut cache = SelectionScoreCache::new();
        let a = qa.predict_selection_cached(&q, &doc, &sel, question, &mut cache);
        let misses = cache.run_misses;
        assert!(misses > 0);
        let b = qa.predict_selection_cached(&q, &doc, &sel, question, &mut cache);
        assert_eq!(cache.run_misses, misses, "second pass re-scored runs");
        assert!(cache.run_hits > 0);
        assert_eq!(a.text, b.text);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }

    #[test]
    fn noisy_profiles_fall_back_to_the_plain_path() {
        let mut profile = ModelProfile::plm();
        profile.noise = 1.5;
        profile.seed = 4;
        let qa = QaModel::new(profile);
        let question = "Who won?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze("The Broncos won the final game in Denver.");
        let sel: Vec<usize> = (0..doc.len()).collect();
        let mut cache = SelectionScoreCache::new();
        let mut scratch = SelectionScratch::default();
        let plain = qa.predict_selection(&q, &doc, &sel, question, &mut scratch);
        let cached = qa.predict_selection_cached(&q, &doc, &sel, question, &mut cache);
        assert_eq!(plain, cached);
        assert_eq!(
            cache.run_misses + cache.run_hits,
            0,
            "cache must be bypassed"
        );
    }

    #[test]
    fn empty_selection_abstains() {
        let qa = trained(gced_datasets::DatasetKind::Squad11, 3);
        let question = "Who won?";
        let q = QuestionAnalysis::new(question);
        let doc = analyze("The Broncos won.");
        let mut cache = SelectionScoreCache::new();
        let p = qa.predict_selection_cached(&q, &doc, &[], question, &mut cache);
        assert!(p.text.is_empty());
        assert!(p.span.is_none());
    }
}
