//! The extractive span model: averaged-perceptron training, profile-
//! conditioned inference, and EM/F1 evaluation.

use crate::features::{
    base_features_with_coverage, clue_positions, clue_positions_into, for_each_candidate_span,
    span_features, wh_block, QuestionAnalysis, N_BASE, N_FEATURES,
};
use gced_datasets::QaExample;
use gced_metrics::overlap::{best_f1, exact_match, token_f1};
use gced_nn::kernels::fold_dot_f64;
use gced_text::{analyze, Document};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Maximum candidate span length in tokens (shared with the incremental
/// selection predictor and the grow search's admissible F1 bound, which
/// must enumerate the same span set).
pub const MAX_SPAN: usize = 6;

/// Inference-time behaviour of one baseline QA system (DESIGN.md S7).
///
/// `noise` perturbs span scores deterministically per (profile, question)
/// — emulating a weaker model making different mistakes than a stronger
/// one; `window` truncates long contexts — emulating encoder context
/// limits (BERT vs Longformer/BigBird).
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// Score-noise amplitude (0 = oracle-quality inference).
    pub noise: f64,
    /// Context window in tokens; longer contexts are truncated.
    pub window: usize,
    /// Below this best-span score the model answers "no answer"
    /// (SQuAD-2.0 behaviour).
    pub no_answer_threshold: f64,
    /// Seed folded into the per-question noise hash.
    pub seed: u64,
    /// Perceptron epochs used when this profile is trained.
    pub epochs: usize,
}

impl ModelProfile {
    /// A clean, high-capacity profile — the internal "PLM" used by the
    /// GCED pipeline itself (large-RoBERTa in the paper).
    pub fn plm() -> Self {
        ModelProfile {
            name: "PLM".to_string(),
            noise: 0.0,
            window: 512,
            no_answer_threshold: f64::NEG_INFINITY,
            seed: 0,
            epochs: 4,
        }
    }
}

/// A model's answer for one question.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Answer text ("" = no answer).
    pub text: String,
    /// Score of the chosen span (NEG_INFINITY when abstaining on an
    /// empty candidate set).
    pub score: f64,
    /// Global token range of the span in the analysed context.
    pub span: Option<(usize, usize)>,
}

impl Prediction {
    pub(crate) fn none() -> Self {
        Prediction {
            text: String::new(),
            score: f64::NEG_INFINITY,
            span: None,
        }
    }
}

/// Reusable buffers for [`QaModel::predict_selection`]: the projected
/// document view and the clue-position list survive across calls, so the
/// clip search's candidate loop allocates nothing in steady state.
#[derive(Debug, Clone)]
pub struct SelectionScratch {
    view: Document,
    clues: Vec<usize>,
}

impl Default for SelectionScratch {
    fn default() -> Self {
        SelectionScratch {
            view: Document::empty(),
            clues: Vec::new(),
        }
    }
}

/// EM/F1 aggregates (percentages, as the paper reports them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    pub em: f64,
    pub f1: f64,
    /// Number of evaluated examples.
    pub count: usize,
}

/// Feature-based extractive QA model.
#[derive(Debug, Clone)]
pub struct QaModel {
    profile: ModelProfile,
    weights: [f64; N_FEATURES],
    /// IDF table learned from the training contexts.
    pub(crate) idf: HashMap<String, f64>,
    /// No-answer threshold calibrated on unanswerable training examples
    /// (SQuAD-2.0); overrides the profile's when present.
    learned_threshold: Option<f64>,
    trained: bool,
}

impl QaModel {
    /// An untrained model with sensible prior weights (usable zero-shot;
    /// training sharpens it).
    pub fn new(profile: ModelProfile) -> Self {
        let mut weights = [0.0; N_FEATURES];
        // Priors on the shared block; the wh-type-crossed blocks start at
        // zero and are filled in by training.
        weights[1] = 1.0; // clue coverage of the sentence
        weights[2] = 2.0; // proximity to clue tokens
        weights[3] = 1.5; // answer-type match
        weights[4] = -1.0; // length penalty
        weights[5] = -2.0; // question-overlap penalty
        weights[6] = 0.5; // rarity
        weights[9] = 0.5; // clue just before the span
        weights[10] = 0.5; // clue just after the span
        weights[12] = 2.0; // subject question, span before relation verb
        weights[13] = 2.0; // object question, span after relation verb
        QaModel {
            profile,
            weights,
            idf: HashMap::new(),
            learned_threshold: None,
            trained: false,
        }
    }

    /// The profile this model runs under.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// True once [`QaModel::train`] has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The learned weight vector (diagnostics/tests).
    pub fn weights(&self) -> &[f64; N_FEATURES] {
        &self.weights
    }

    /// The learned IDF table, as `(word, idf)` pairs sorted by word —
    /// the serialization interchange form.
    pub fn idf_parts(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self.idf.iter().map(|(w, &x)| (w.clone(), x)).collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The calibrated no-answer threshold, if training learned one.
    pub fn learned_threshold(&self) -> Option<f64> {
        self.learned_threshold
    }

    /// Rebuild a trained model from its profile and learned state
    /// (weights, [`QaModel::idf_parts`], [`QaModel::learned_threshold`]).
    /// Predictions are bitwise-identical to the original model's: every
    /// score is a pure function of the restored state.
    pub fn from_parts(
        profile: ModelProfile,
        weights: [f64; N_FEATURES],
        idf: Vec<(String, f64)>,
        learned_threshold: Option<f64>,
        trained: bool,
    ) -> Self {
        QaModel {
            profile,
            weights,
            // gced-allow(DET001): consumes the Vec parameter into the idf HashMap — no map is iterated and no order leaves this constructor
            idf: idf.into_iter().collect(),
            learned_threshold,
            trained,
        }
    }

    /// Train with the averaged perceptron on (question, context, answer)
    /// triples. Unanswerable examples contribute to the IDF table only.
    /// Deterministic: fixed iteration order.
    pub fn train(&mut self, examples: &[QaExample]) {
        self.fit_idf(examples);
        let mut totals = [0.0f64; N_FEATURES];
        let mut steps = 0.0f64;
        // Pre-analyse contexts once.
        type Prepared = (Document, QuestionAnalysis, (usize, usize));
        let prepared: Vec<Option<Prepared>> = examples
            .iter()
            .map(|ex| {
                if !ex.answerable {
                    return None;
                }
                let doc = analyze(&ex.context);
                let q = QuestionAnalysis::new(&ex.question);
                gold_span(&doc, &ex.answer).map(|g| (doc, q, g))
            })
            .collect();
        for _ in 0..self.profile.epochs {
            for item in prepared.iter().flatten() {
                let (doc, q, gold) = item;
                let clues = clue_positions(doc, q);
                let pred = self.best_span(doc, q, &clues, None);
                if let Some((ps, pe)) = pred {
                    let pred_text = span_text(doc, ps, pe);
                    let gold_text = span_text(doc, gold.0, gold.1);
                    if token_f1(&pred_text, &gold_text).f1 < 1.0 {
                        let fg = span_features(doc, gold.0, gold.1, q, &clues, &self.idf);
                        let fp = span_features(doc, ps, pe, q, &clues, &self.idf);
                        for (w, (g, p)) in self.weights.iter_mut().zip(fg.iter().zip(&fp)) {
                            *w += g - p;
                        }
                    }
                }
                for (t, w) in totals.iter_mut().zip(&self.weights) {
                    *t += w;
                }
                steps += 1.0;
            }
        }
        if steps > 0.0 {
            for (w, t) in self.weights.iter_mut().zip(&totals) {
                *w = t / steps;
            }
        }
        self.trained = true;
        self.calibrate_threshold(examples);
    }

    /// Calibrate the no-answer threshold when the training data contains
    /// unanswerable questions (SQuAD-2.0): sweep candidate thresholds
    /// over the observed best-span scores of answerable vs unanswerable
    /// examples and keep the best separator.
    fn calibrate_threshold(&mut self, examples: &[QaExample]) {
        let unanswerable: Vec<&QaExample> = examples
            .iter()
            .filter(|e| !e.answerable)
            .take(200)
            .collect();
        if unanswerable.is_empty() {
            self.learned_threshold = None;
            return;
        }
        let answerable: Vec<&QaExample> =
            examples.iter().filter(|e| e.answerable).take(200).collect();
        // The calibrated quantity is question coverage — the fraction of
        // the question's content words present in the (window-truncated)
        // context. It is scale-free, so a threshold calibrated on raw
        // contexts transfers to short evidence contexts, unlike a raw
        // best-span score.
        let score_of = |ex: &QaExample| -> Option<f64> {
            let full = analyze(&ex.context);
            let doc = if full.len() > self.profile.window {
                truncate_doc(&full, self.profile.window)
            } else {
                full
            };
            let q = QuestionAnalysis::new(&ex.question);
            Some(question_coverage(&doc, &q))
        };
        let pos: Vec<f64> = answerable.iter().filter_map(|e| score_of(e)).collect();
        let neg: Vec<f64> = unanswerable.iter().filter_map(|e| score_of(e)).collect();
        if pos.is_empty() || neg.is_empty() {
            self.learned_threshold = None;
            return;
        }
        // Candidate thresholds: every observed score; pick the split
        // maximizing *balanced* accuracy (answerable usually outnumber
        // unanswerable ~2:1, and plain accuracy would sacrifice the
        // minority class — observed as a no-answer EM collapse).
        let mut candidates: Vec<f64> = pos.iter().chain(neg.iter()).copied().collect();
        candidates.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        let mut best = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &t in &candidates {
            let pos_ok = pos.iter().filter(|&&s| s >= t).count() as f64 / pos.len() as f64;
            let neg_ok = neg.iter().filter(|&&s| s < t).count() as f64 / neg.len() as f64;
            let balanced = pos_ok + neg_ok;
            if balanced > best.1 {
                best = (t, balanced);
            }
        }
        self.learned_threshold = Some(best.0);
    }

    /// The active no-answer threshold.
    pub(crate) fn threshold(&self) -> f64 {
        self.learned_threshold
            .unwrap_or(self.profile.no_answer_threshold)
    }

    fn fit_idf(&mut self, examples: &[QaExample]) {
        let mut df: HashMap<String, usize> = HashMap::new();
        let n = examples.len().max(1);
        for ex in examples {
            let doc = analyze(&ex.context);
            let uniq: std::collections::HashSet<String> =
                doc.tokens.iter().map(|t| t.lower()).collect();
            // gced-allow(DET001): commutative document-frequency counting — hash order feeds only `+1`s into a map, so no order can reach output
            for w in uniq {
                *df.entry(w).or_insert(0) += 1;
            }
        }
        self.idf = df
            // gced-allow(DET001): HashMap-to-HashMap rebuild — serialization order is imposed later by to_parts(), which sorts
            .into_iter()
            .map(|(w, c)| (w, ((n as f64 + 1.0) / (c as f64 + 1.0)).ln() + 1.0))
            .collect();
    }

    /// Predict an answer for (question, context).
    pub fn predict(&self, question: &str, context: &str) -> Prediction {
        let doc = analyze(context);
        let q = QuestionAnalysis::new(question);
        self.predict_analyzed(&q, &doc, question)
    }

    /// Predict over a pre-analysed context (ASE calls this in a loop).
    pub fn predict_analyzed(
        &self,
        q: &QuestionAnalysis,
        doc: &Document,
        question: &str,
    ) -> Prediction {
        // Window truncation: weaker encoders only see a prefix.
        let truncated;
        let doc = if doc.len() > self.profile.window {
            truncated = truncate_doc(doc, self.profile.window);
            &truncated
        } else {
            doc
        };
        let clues = clue_positions(doc, q);
        self.predict_prepared(q, doc, &clues, question)
    }

    /// Predict over a **selection** of a pre-analysed context: the
    /// evidence formed by `selected` (ascending token indices of `doc`),
    /// with zero re-tokenization — the clip search's inner loop.
    ///
    /// Equivalent to projecting the document onto the selection
    /// ([`Document::project_into`]) and running [`QaModel::predict_analyzed`],
    /// but all buffers live in `scratch`, so a caller evaluating many
    /// candidate selections performs no steady-state allocation.
    pub fn predict_selection(
        &self,
        q: &QuestionAnalysis,
        doc: &Document,
        selected: &[usize],
        question: &str,
        scratch: &mut SelectionScratch,
    ) -> Prediction {
        doc.project_into(selected, &mut scratch.view);
        let truncated;
        let view = if scratch.view.len() > self.profile.window {
            truncated = truncate_doc(&scratch.view, self.profile.window);
            &truncated
        } else {
            &scratch.view
        };
        clue_positions_into(view, q, &mut scratch.clues);
        self.predict_prepared(q, view, &scratch.clues, question)
    }

    /// Shared tail of the prediction paths: abstention check + argmax.
    fn predict_prepared(
        &self,
        q: &QuestionAnalysis,
        doc: &Document,
        clues: &[usize],
        question: &str,
    ) -> Prediction {
        let _span = gced_obs::span("qa.predict");
        let noise_key = self.noise_key(question);
        if question_coverage(doc, q) < self.threshold() {
            return Prediction::none();
        }
        match self.best_span_stats(doc, q, clues, noise_key) {
            Some(((s, e), score, _z)) => Prediction {
                text: span_text(doc, s, e),
                score,
                span: Some((s, e)),
            },
            None => Prediction::none(),
        }
    }

    fn noise_key(&self, question: &str) -> Option<u64> {
        if self.profile.noise == 0.0 {
            None
        } else {
            let mut h = DefaultHasher::new();
            self.profile.seed.hash(&mut h);
            question.hash(&mut h);
            Some(h.finish())
        }
    }

    /// Effective noise amplitude for a context of `tokens` tokens: a
    /// weak encoder's confusion grows with the number of distractor
    /// positions it must score, so the amplitude scales with the square
    /// root of context size (reference point: 120 tokens). This is the
    /// mechanism by which short, dense evidences genuinely help weaker
    /// models — the effect Tables VI/VII measure.
    fn effective_noise(&self, tokens: usize) -> f64 {
        self.profile.noise * ((tokens as f64 / 120.0).sqrt()).min(2.0)
    }

    fn best_span(
        &self,
        doc: &Document,
        q: &QuestionAnalysis,
        clues: &[usize],
        noise_key: Option<u64>,
    ) -> Option<(usize, usize)> {
        self.best_span_stats(doc, q, clues, noise_key)
            .map(|(span, _, _)| span)
    }

    /// Best span plus its score and its z-score against the context's
    /// full candidate-score distribution. The z-score is the abstention
    /// signal: in an answerable context the best span is an outlier; in
    /// an unanswerable one it sits near the bulk. Unlike a raw score
    /// threshold, this transfers between raw contexts and short
    /// evidences (their score scales differ wildly).
    fn best_span_stats(
        &self,
        doc: &Document,
        q: &QuestionAnalysis,
        clues: &[usize],
        noise_key: Option<u64>,
    ) -> Option<((usize, usize), f64, f64)> {
        let mut best: Option<((usize, usize), f64)> = None;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        let mut n = 0usize;
        // The sentence clue-coverage feature is span-independent;
        // computing it per sentence instead of per span removes the
        // dominant per-span cost (a lemma-set scan of the sentence).
        let coverage: Vec<f64> = (0..doc.sentences.len())
            .map(|s| crate::features::sentence_clue_coverage(doc, s, q))
            .collect();
        for_each_candidate_span(doc, MAX_SPAN, |s, e| {
            let score =
                self.score_span(doc, q, clues, s, e, noise_key, coverage[doc.tokens[s].sent]);
            sum += score;
            sum2 += score * score;
            n += 1;
            match best {
                Some((_, b)) if b >= score => {}
                _ => best = Some(((s, e), score)),
            }
        });
        let (span, score) = best?;
        let mean = sum / n as f64;
        let var = (sum2 / n as f64 - mean * mean).max(0.0);
        let std = var.sqrt();
        let z = if std > 1e-9 {
            (score - mean) / std
        } else {
            0.0
        };
        Some((span, score, z))
    }

    #[allow(clippy::too_many_arguments)]
    fn score_span(
        &self,
        doc: &Document,
        q: &QuestionAnalysis,
        clues: &[usize],
        s: usize,
        e: usize,
        noise_key: Option<u64>,
        sentence_coverage: f64,
    ) -> f64 {
        // The crossed feature vector is the 14 base features in block 0
        // plus a copy in the wh-type block and zeros elsewhere, so the
        // dot product needs only the two non-zero blocks — no N_FEATURES
        // allocation per span.
        let f = base_features_with_coverage(doc, s, e, q, clues, &self.idf, sentence_coverage);
        let off = wh_block(q.wh) * N_BASE;
        let score = fold_dot_f64(0.0, &f, &self.weights[..N_BASE]);
        let mut score = fold_dot_f64(score, &f, &self.weights[off..off + N_BASE]);
        if let Some(key) = noise_key {
            // Deterministic per-(profile, question, span) perturbation.
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            s.hash(&mut h);
            e.hash(&mut h);
            let u = (h.finish() % 10_000) as f64 / 10_000.0; // [0,1)
            score += (u * 2.0 - 1.0) * self.effective_noise(doc.len());
        }
        score
    }

    /// Evaluate EM/F1 (percentages) over a set of examples, using alias
    /// sets where present and the empty answer for unanswerables.
    pub fn evaluate(&self, examples: &[QaExample]) -> EvalResult {
        let mut em = 0.0;
        let mut f1 = 0.0;
        for ex in examples {
            let pred = self.predict(&ex.question, &ex.context);
            if ex.answerable {
                let refs: Vec<&str> = ex.aliases.iter().map(String::as_str).collect();
                em += refs.iter().any(|r| exact_match(&pred.text, r)) as u8 as f64;
                f1 += best_f1(&pred.text, refs.iter().copied()).f1;
            } else {
                let correct = pred.text.is_empty();
                em += correct as u8 as f64;
                f1 += correct as u8 as f64;
            }
        }
        let n = examples.len().max(1) as f64;
        EvalResult {
            em: 100.0 * em / n,
            f1: 100.0 * f1 / n,
            count: examples.len(),
        }
    }
}

/// Fraction of the question's distinct content lemmas present in the
/// context (1.0 when the question has no content words). The abstention
/// signal for unanswerable questions: SQuAD-2.0 negatives ask about
/// entities the context never mentions.
fn question_coverage(doc: &Document, q: &QuestionAnalysis) -> f64 {
    let total = q.content_lemmas.len();
    if total == 0 {
        return 1.0;
    }
    let present: std::collections::HashSet<&str> = doc
        .tokens
        .iter()
        .filter(|t| q.matches(&t.lower(), &t.lemma))
        .map(|t| t.lemma.as_str())
        .collect();
    // Cap at the lemma count (surface/lemma matching can over-count).
    present.len().min(total) as f64 / total as f64
}

/// First token range of `answer` inside the analysed context.
pub fn gold_span(doc: &Document, answer: &str) -> Option<(usize, usize)> {
    let ans = analyze(answer);
    if ans.is_empty() {
        return None;
    }
    let ans_lower: Vec<String> = ans.tokens.iter().map(|t| t.lower()).collect();
    let ctx_lower: Vec<String> = doc.tokens.iter().map(|t| t.lower()).collect();
    let n = ans_lower.len();
    (0..ctx_lower.len().saturating_sub(n - 1))
        .find(|&i| ctx_lower[i..i + n] == ans_lower[..])
        .map(|i| (i, i + n))
}

/// Surface text of a token range.
pub fn span_text(doc: &Document, s: usize, e: usize) -> String {
    gced_text::join_tokens(&doc.tokens[s..e])
}

/// Truncate an analysed document to its first `window` tokens, keeping
/// sentence structure consistent.
fn truncate_doc(doc: &Document, window: usize) -> Document {
    let tokens: Vec<_> = doc.tokens.iter().take(window).cloned().collect();
    let sentences: Vec<_> = doc
        .sentences
        .iter()
        .filter(|s| s.token_start < window)
        .map(|s| {
            let mut s = *s;
            s.token_end = s.token_end.min(window);
            s
        })
        .collect();
    Document {
        text: doc.text.clone(),
        tokens,
        sentences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_datasets::{generate, DatasetKind, GeneratorConfig};

    fn tiny_dataset() -> gced_datasets::Dataset {
        generate(
            DatasetKind::Squad11,
            GeneratorConfig {
                train: 120,
                dev: 60,
                seed: 3,
            },
        )
    }

    #[test]
    fn gold_span_finds_answers() {
        let doc = analyze("The Denver Broncos defeated the Carolina Panthers.");
        let g = gold_span(&doc, "Denver Broncos").unwrap();
        assert_eq!(span_text(&doc, g.0, g.1), "Denver Broncos");
        assert!(gold_span(&doc, "Seattle Seahawks").is_none());
        assert!(gold_span(&doc, "").is_none());
    }

    #[test]
    fn gold_span_is_case_insensitive() {
        let doc = analyze("She discovered radium in 1898.");
        assert!(gold_span(&doc, "Radium").is_some());
    }

    #[test]
    fn untrained_model_answers_obvious_questions() {
        let model = QaModel::new(ModelProfile::plm());
        let pred = model.predict(
            "Which team defeated the Panthers?",
            "The Denver Broncos defeated the Carolina Panthers to earn the title.",
        );
        assert!(
            pred.text.contains("Broncos") || pred.text.contains("Denver"),
            "got {:?}",
            pred.text
        );
    }

    #[test]
    fn training_improves_or_matches_em() {
        let ds = tiny_dataset();
        let mut trained = QaModel::new(ModelProfile::plm());
        let untrained = trained.clone();
        trained.train(&ds.train.examples);
        let e_untrained = untrained.evaluate(&ds.dev.examples);
        let e_trained = trained.evaluate(&ds.dev.examples);
        assert!(
            e_trained.f1 >= e_untrained.f1 - 1.0,
            "training hurt: {} -> {}",
            e_untrained.f1,
            e_trained.f1
        );
        assert!(trained.is_trained());
    }

    #[test]
    fn trained_plm_is_accurate_on_synthetic_squad() {
        let ds = tiny_dataset();
        let mut model = QaModel::new(ModelProfile::plm());
        model.train(&ds.train.examples);
        let e = model.evaluate(&ds.dev.examples);
        assert!(e.em > 55.0, "EM too low: {}", e.em);
        assert!(e.f1 > 65.0, "F1 too low: {}", e.f1);
    }

    #[test]
    fn noise_degrades_accuracy() {
        let ds = tiny_dataset();
        let mut clean = QaModel::new(ModelProfile::plm());
        clean.train(&ds.train.examples);
        let mut noisy_profile = ModelProfile::plm();
        noisy_profile.noise = 3.0;
        noisy_profile.seed = 11;
        let mut noisy = QaModel::new(noisy_profile);
        noisy.train(&ds.train.examples);
        let e_clean = clean.evaluate(&ds.dev.examples);
        let e_noisy = noisy.evaluate(&ds.dev.examples);
        assert!(
            e_noisy.em < e_clean.em,
            "noise did not degrade: {} vs {}",
            e_noisy.em,
            e_clean.em
        );
    }

    #[test]
    fn window_truncation_degrades_on_long_contexts() {
        let ds = generate(
            DatasetKind::TriviaWeb,
            GeneratorConfig {
                train: 100,
                dev: 60,
                seed: 5,
            },
        );
        let mut wide = QaModel::new(ModelProfile::plm());
        wide.train(&ds.train.examples);
        let mut narrow_profile = ModelProfile::plm();
        narrow_profile.window = 30;
        let mut narrow = QaModel::new(narrow_profile);
        narrow.train(&ds.train.examples);
        let e_wide = wide.evaluate(&ds.dev.examples);
        let e_narrow = narrow.evaluate(&ds.dev.examples);
        assert!(
            e_narrow.f1 < e_wide.f1,
            "truncation did not degrade: {} vs {}",
            e_narrow.f1,
            e_wide.f1
        );
    }

    #[test]
    fn parts_roundtrip_predicts_bitwise_identically() {
        let ds = tiny_dataset();
        let mut model = QaModel::new(ModelProfile::plm());
        model.train(&ds.train.examples);
        let parts = model.idf_parts();
        assert_eq!(parts, model.idf_parts(), "interchange form must be stable");
        let back = QaModel::from_parts(
            model.profile().clone(),
            *model.weights(),
            parts,
            model.learned_threshold(),
            model.is_trained(),
        );
        assert!(back.is_trained());
        for ex in ds.dev.examples.iter().take(12) {
            let a = model.predict(&ex.question, &ex.context);
            let b = back.predict(&ex.question, &ex.context);
            assert_eq!(a.text, b.text, "{}", ex.id);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{}", ex.id);
        }
    }

    #[test]
    fn predictions_are_deterministic() {
        let model = QaModel::new(ModelProfile {
            noise: 0.5,
            seed: 7,
            ..ModelProfile::plm()
        });
        let p1 = model.predict("Who won?", "The Broncos won the title in Denver.");
        let p2 = model.predict("Who won?", "The Broncos won the title in Denver.");
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_context_abstains() {
        let model = QaModel::new(ModelProfile::plm());
        let p = model.predict("Who won?", "");
        assert!(p.text.is_empty());
        assert!(p.span.is_none());
    }

    #[test]
    fn no_answer_threshold_abstains() {
        let mut profile = ModelProfile::plm();
        profile.no_answer_threshold = f64::INFINITY;
        let model = QaModel::new(profile);
        let p = model.predict("Who won?", "The Broncos won the game.");
        assert!(p.text.is_empty());
    }

    #[test]
    fn evaluate_counts_unanswerable() {
        let ex = QaExample {
            id: "t".into(),
            question: "Who won the cup?".into(),
            context: "The weather was mild all week.".into(),
            answer: String::new(),
            aliases: vec![],
            answerable: false,
            domain: gced_datasets::Domain::Sports,
        };
        // A model with an infinite threshold always abstains => correct.
        let mut profile = ModelProfile::plm();
        profile.no_answer_threshold = f64::INFINITY;
        let model = QaModel::new(profile);
        let e = model.evaluate(std::slice::from_ref(&ex));
        assert_eq!(e.em, 100.0);
    }
}
