//! Question analysis and span feature extraction.

use gced_text::{is_insignificant_question_word, Document, Pos};
use std::collections::{HashMap, HashSet};

/// Expected answer type, derived from the question's wh-word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhType {
    /// who / whom / whose → person-like proper noun.
    Person,
    /// where → location-like proper noun.
    Place,
    /// when / how many / how much → number.
    Number,
    /// which / what → entity (noun or proper noun).
    Entity,
    /// anything else.
    Unknown,
}

/// Pre-analysis of a question, reused across the candidate spans of a
/// context (and across ASE's repeated sentence-subset predictions).
#[derive(Debug, Clone)]
pub struct QuestionAnalysis {
    /// Lowercased content words of the question (QWS-style filter).
    pub content_words: HashSet<String>,
    /// Lemmas of the content words.
    pub content_lemmas: HashSet<String>,
    /// Expected answer type.
    pub wh: WhType,
    /// True when the wh-phrase is the grammatical subject ("Which team
    /// *defeated* X?") rather than an object/oblique ("Which team did X
    /// defeat?"). Subject answers sit before the relation verb in
    /// declarative contexts; object answers after.
    pub wh_subject: bool,
}

impl QuestionAnalysis {
    /// Analyse a question string.
    pub fn new(question: &str) -> Self {
        let doc = gced_text::analyze(question);
        let mut content_words = HashSet::new();
        let mut content_lemmas = HashSet::new();
        let mut wh = WhType::Unknown;
        let mut how_seen = false;
        for t in &doc.tokens {
            let lower = t.lower();
            match lower.as_str() {
                "who" | "whom" | "whose" => wh = WhType::Person,
                "where" => wh = WhType::Place,
                "when" => wh = WhType::Number,
                "how" => how_seen = true,
                "many" | "much" if how_seen => wh = WhType::Number,
                "which" | "what" if wh == WhType::Unknown => {
                    wh = WhType::Entity;
                }
                _ => {}
            }
            if !is_insignificant_question_word(&lower) && t.pos != Pos::Punct {
                content_words.insert(lower);
                content_lemmas.insert(t.lemma.clone());
            }
        }
        // Subject detection: scanning right from the wh-word, a main verb
        // before any auxiliary marks the wh-phrase as the subject.
        let mut wh_subject = false;
        if let Some(wh_pos) = doc.tokens.iter().position(|t| t.pos == Pos::Wh) {
            for t in &doc.tokens[wh_pos + 1..] {
                match t.pos {
                    Pos::Verb => {
                        wh_subject = true;
                        break;
                    }
                    Pos::Aux => break,
                    _ => {}
                }
            }
        }
        QuestionAnalysis {
            content_words,
            content_lemmas,
            wh,
            wh_subject,
        }
    }

    /// True if a (lowercased word, lemma) pair matches a question
    /// content word.
    pub fn matches(&self, lower: &str, lemma: &str) -> bool {
        self.content_words.contains(lower) || self.content_lemmas.contains(lemma)
    }
}

/// Number of base features produced by [`base_features`].
pub const N_BASE: usize = 14;

/// Total feature arity after wh-type crossing: one shared block plus one
/// block per [`WhType`] (the crossing lets the perceptron learn, e.g.,
/// that clue adjacency matters for *which*-questions but not for
/// *when*-questions — a per-type weight a flat model cannot express).
pub const N_FEATURES: usize = N_BASE * 6;

/// Index of the crossed block for a wh-type (block 0 is shared).
pub(crate) fn wh_block(wh: WhType) -> usize {
    match wh {
        WhType::Person => 1,
        WhType::Place => 2,
        WhType::Number => 3,
        WhType::Entity => 4,
        WhType::Unknown => 5,
    }
}

/// The crossed feature vector: base features in block 0, a copy in the
/// block of the question's wh-type, zeros elsewhere.
pub fn span_features(
    doc: &Document,
    start: usize,
    end: usize,
    q: &QuestionAnalysis,
    clue_pos: &[usize],
    idf: &HashMap<String, f64>,
) -> Vec<f64> {
    let base = base_features(doc, start, end, q, clue_pos, idf);
    let mut out = vec![0.0; N_FEATURES];
    out[..N_BASE].copy_from_slice(&base);
    let block = wh_block(q.wh);
    out[block * N_BASE..(block + 1) * N_BASE].copy_from_slice(&base);
    out
}

/// Dense base feature vector over a candidate span `[start, end)`
/// (global token indices) of an analysed context.
///
/// `clue_pos` are the token indices in the context matching question
/// content words; `idf` maps lowercased words to inverse document
/// frequencies learned at training time.
pub fn base_features(
    doc: &Document,
    start: usize,
    end: usize,
    q: &QuestionAnalysis,
    clue_pos: &[usize],
    idf: &HashMap<String, f64>,
) -> [f64; N_BASE] {
    let sent = doc.tokens[start].sent;
    let coverage = sentence_clue_coverage(doc, sent, q);
    base_features_with_coverage(doc, start, end, q, clue_pos, idf, coverage)
}

/// The f1 term of [`base_features`]: fraction of the question's content
/// lemmas present in sentence `sent`. Span-independent, so the span
/// scorer computes it once per sentence instead of once per candidate
/// span.
pub fn sentence_clue_coverage(doc: &Document, sent: usize, q: &QuestionAnalysis) -> f64 {
    if q.content_lemmas.is_empty() {
        return 0.0;
    }
    let sent_span = &doc.sentences[sent];
    let present = doc.tokens[sent_span.token_start..sent_span.token_end]
        .iter()
        .filter(|t| q.content_lemmas.contains(&t.lemma))
        .map(|t| t.lemma.as_str())
        .collect::<HashSet<_>>()
        .len();
    present as f64 / q.content_lemmas.len() as f64
}

/// [`base_features`] with the sentence clue coverage (f1) supplied by
/// the caller — see [`sentence_clue_coverage`].
pub fn base_features_with_coverage(
    doc: &Document,
    start: usize,
    end: usize,
    q: &QuestionAnalysis,
    clue_pos: &[usize],
    idf: &HashMap<String, f64>,
    sentence_coverage: f64,
) -> [f64; N_BASE] {
    let span = &doc.tokens[start..end];
    let sent = doc.tokens[start].sent;
    let sent_span = &doc.sentences[sent];
    let len = end - start;
    let mut f = [0.0; N_BASE];
    // f0: bias
    f[0] = 1.0;
    // f1: fraction of question content lemmas present in the sentence.
    f[1] = sentence_coverage;
    // f2: proximity to the nearest clue token outside the span
    // (clues in another sentence are distance-penalized).
    let nearest = clue_pos
        .iter()
        .filter(|&&p| p < start || p >= end)
        .map(|&p| {
            let d = if p < start { start - p } else { p + 1 - end };
            if doc.tokens[p].sent == sent {
                d
            } else {
                d + 6
            }
        })
        .min();
    f[2] = match nearest {
        Some(d) => 1.0 / (1.0 + d as f64),
        None => 0.0,
    };
    // f3: answer-type match.
    let has_num = span.iter().any(|t| t.pos == Pos::Num);
    let has_proper = span.iter().any(|t| t.pos == Pos::ProperNoun);
    let has_noun = span
        .iter()
        .any(|t| matches!(t.pos, Pos::Noun | Pos::ProperNoun));
    f[3] = match q.wh {
        WhType::Person | WhType::Place => {
            if has_proper {
                1.0
            } else {
                0.0
            }
        }
        WhType::Number => {
            if has_num {
                1.0
            } else {
                0.0
            }
        }
        WhType::Entity => {
            if has_noun {
                1.0
            } else {
                0.0
            }
        }
        WhType::Unknown => 0.5,
    };
    // f4: length penalty (prefer short spans; gold spans are 1-4 tokens).
    f[4] = (len as f64 - 2.0).abs() / 4.0;
    // f5: overlap with the question (answers rarely repeat the question).
    let overlap = span
        .iter()
        .filter(|t| q.matches(&t.lower(), &t.lemma))
        .count();
    f[5] = overlap as f64 / len as f64;
    // f6: mean IDF (rarity) of span tokens.
    f[6] = span
        .iter()
        .map(|t| idf.get(&t.lower()).copied().unwrap_or(2.0))
        .sum::<f64>()
        / len as f64
        / 10.0;
    // f7: proper-noun fraction.
    f[7] = span.iter().filter(|t| t.pos == Pos::ProperNoun).count() as f64 / len as f64;
    // f8: number fraction.
    f[8] = span.iter().filter(|t| t.pos == Pos::Num).count() as f64 / len as f64;
    // f9: a clue token within 3 tokens *before* the span (patterns like
    // "(AFC) champion <span>").
    f[9] = clue_pos.iter().any(|&p| p < start && start - p <= 3) as u8 as f64;
    // f10: a clue token within 3 tokens *after* the span ("<span> was
    // born" patterns).
    f[10] = clue_pos.iter().any(|&p| p >= end && p + 1 - end <= 3) as u8 as f64;
    // f11: span is sentence-initial (subjects often answer who/which).
    f[11] = (start == sent_span.token_start) as u8 as f64;
    // f12/f13: direction-aware verb-clue adjacency. Subject questions
    // ("Which team defeated X?") expect the answer just *before* the
    // relation verb; object questions just *after* it.
    let verb_clue_after = clue_pos
        .iter()
        .any(|&p| p >= end && p + 1 - end <= 3 && doc.tokens[p].pos == Pos::Verb);
    let verb_clue_before = clue_pos
        .iter()
        .any(|&p| p < start && start - p <= 3 && doc.tokens[p].pos == Pos::Verb);
    f[12] = (q.wh_subject && verb_clue_after) as u8 as f64;
    f[13] = (!q.wh_subject && verb_clue_before) as u8 as f64;
    f
}

/// Token indices of the context matching the question's content words.
pub fn clue_positions(doc: &Document, q: &QuestionAnalysis) -> Vec<usize> {
    let mut out = Vec::new();
    clue_positions_into(doc, q, &mut out);
    out
}

/// Enumerate candidate spans: within one sentence, 1..=`max_len` tokens,
/// starting and ending on content-bearing tokens.
pub fn candidate_spans(doc: &Document, max_len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for_each_candidate_span(doc, max_len, |s, e| out.push((s, e)));
    out
}

/// Streaming form of [`candidate_spans`]: invokes `f(start, end)` per
/// span in the same order without materializing the span list (the span
/// scorer's inner loop runs once per clip-search candidate, so the
/// allocation matters).
pub fn for_each_candidate_span<F: FnMut(usize, usize)>(doc: &Document, max_len: usize, mut f: F) {
    for s in &doc.sentences {
        for start in s.token_start..s.token_end {
            if !span_boundary(&doc.tokens[start].pos) {
                continue;
            }
            let hi = (start + max_len).min(s.token_end);
            for end in (start + 1)..=hi {
                if !span_boundary(&doc.tokens[end - 1].pos) {
                    continue;
                }
                f(start, end);
            }
        }
    }
}

/// Token indices of the context matching the question's content words,
/// appended to `out` (reusable-buffer form of [`clue_positions`]).
pub fn clue_positions_into(doc: &Document, q: &QuestionAnalysis, out: &mut Vec<usize>) {
    out.clear();
    out.extend(
        doc.tokens
            .iter()
            .filter(|t| q.matches(&t.lower(), &t.lemma))
            .map(|t| t.index),
    );
}

/// POS tags allowed at span boundaries.
pub(crate) fn span_boundary(pos: &Pos) -> bool {
    matches!(
        pos,
        Pos::Noun | Pos::ProperNoun | Pos::Num | Pos::Adj | Pos::Verb | Pos::Other | Pos::Pronoun
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gced_text::analyze;

    #[test]
    fn wh_type_detection() {
        assert_eq!(
            QuestionAnalysis::new("Who won the game?").wh,
            WhType::Person
        );
        assert_eq!(
            QuestionAnalysis::new("Where was she born?").wh,
            WhType::Place
        );
        assert_eq!(
            QuestionAnalysis::new("When did it happen?").wh,
            WhType::Number
        );
        assert_eq!(
            QuestionAnalysis::new("How many people live there?").wh,
            WhType::Number
        );
        assert_eq!(
            QuestionAnalysis::new("Which team represented the AFC?").wh,
            WhType::Entity
        );
        assert_eq!(QuestionAnalysis::new("Name the duke.").wh, WhType::Unknown);
    }

    #[test]
    fn content_words_filtered() {
        let q = QuestionAnalysis::new("Which NFL team represented the AFC at Super Bowl 50?");
        assert!(q.content_words.contains("nfl"));
        assert!(q.content_words.contains("team"));
        assert!(q.content_words.contains("represented"));
        assert!(!q.content_words.contains("which"));
        assert!(!q.content_words.contains("the"));
        assert!(!q.content_words.contains("at"));
    }

    #[test]
    fn lemma_matching() {
        let q = QuestionAnalysis::new("Who defeated the Panthers?");
        // "defeat" is the lemma of "defeated"
        assert!(q.matches("defeated", "defeat"));
        assert!(q.matches("defeats", "defeat"));
        assert!(!q.matches("celebrated", "celebrate"));
    }

    #[test]
    fn clue_positions_found() {
        let q = QuestionAnalysis::new("Which team defeated the Panthers?");
        let doc = analyze("The Broncos defeated the Panthers. The team celebrated.");
        let clues = clue_positions(&doc, &q);
        let words: Vec<&str> = clues.iter().map(|&i| doc.tokens[i].text.as_str()).collect();
        assert!(words.contains(&"defeated"));
        assert!(words.contains(&"Panthers"));
        assert!(words.contains(&"team"));
    }

    #[test]
    fn candidate_spans_stay_within_sentences() {
        let doc = analyze("Alpha beta. Gamma delta.");
        for (s, e) in candidate_spans(&doc, 4) {
            assert_eq!(doc.tokens[s].sent, doc.tokens[e - 1].sent);
        }
    }

    #[test]
    fn candidate_spans_exclude_punctuation_boundaries() {
        let doc = analyze("The Broncos, strong and fast, won.");
        for (s, e) in candidate_spans(&doc, 5) {
            assert_ne!(doc.tokens[s].pos, Pos::Punct);
            assert_ne!(doc.tokens[e - 1].pos, Pos::Punct);
        }
    }

    #[test]
    fn features_have_fixed_arity_and_bias() {
        let q = QuestionAnalysis::new("Who won?");
        let doc = analyze("Broncos won the title.");
        let clues = clue_positions(&doc, &q);
        let f = span_features(&doc, 0, 1, &q, &clues, &HashMap::new());
        assert_eq!(f.len(), N_FEATURES);
        assert_eq!(f[0], 1.0);
    }

    #[test]
    fn type_match_feature_fires() {
        let q = QuestionAnalysis::new("When did the Broncos win?");
        let doc = analyze("The Broncos won in 1998.");
        let clues = clue_positions(&doc, &q);
        let year = doc.tokens.iter().position(|t| t.text == "1998").unwrap();
        let f_num = span_features(&doc, year, year + 1, &q, &clues, &HashMap::new());
        assert_eq!(f_num[3], 1.0);
        let broncos = doc.tokens.iter().position(|t| t.text == "Broncos").unwrap();
        let f_np = span_features(&doc, broncos, broncos + 1, &q, &clues, &HashMap::new());
        assert_eq!(f_np[3], 0.0);
    }

    #[test]
    fn proximity_feature_decays() {
        let q = QuestionAnalysis::new("Which team defeated the Panthers?");
        let doc = analyze("The Broncos defeated the Panthers badly yesterday evening.");
        let clues = clue_positions(&doc, &q);
        let broncos = 1;
        let evening = doc.tokens.iter().position(|t| t.text == "evening").unwrap();
        let near = span_features(&doc, broncos, broncos + 1, &q, &clues, &HashMap::new());
        let far = span_features(&doc, evening, evening + 1, &q, &clues, &HashMap::new());
        assert!(near[2] > far[2]);
    }
}
