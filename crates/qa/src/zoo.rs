//! The nine-baseline model zoo (Tables VI and VII).
//!
//! Each published checkpoint is emulated by a [`ModelProfile`] whose
//! context window and inference-noise amplitude are set so the baseline
//! EM/F1 on the synthetic dev splits lands in the published band and the
//! *ordering* of models matches the paper (DESIGN.md S7). The published
//! reference numbers are kept alongside each profile so the benches can
//! print paper-vs-measured rows.

use crate::model::ModelProfile;

/// A zoo entry: the profile plus the paper's published baseline numbers.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    pub profile: ModelProfile,
    /// Published (EM, F1) on the first dataset variant
    /// (SQuAD-1.1 / TriviaQA-Web).
    pub paper_v1: (f64, f64),
    /// Published (EM, F1) on the second variant
    /// (SQuAD-2.0 / TriviaQA-Wiki).
    pub paper_v2: (f64, f64),
    /// Published +GCED (EM, F1) on the first variant.
    pub paper_v1_gced: (f64, f64),
    /// Published +GCED (EM, F1) on the second variant.
    pub paper_v2_gced: (f64, f64),
}

fn profile(name: &str, noise: f64, window: usize, seed: u64) -> ModelProfile {
    ModelProfile {
        name: name.to_string(),
        noise,
        window,
        no_answer_threshold: f64::NEG_INFINITY,
        seed,
        epochs: 3,
    }
}

/// The nine SQuAD baselines of Table VI, weakest to strongest.
pub fn squad_models() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            profile: profile("BERT-large", 1.0, 140, 101),
            paper_v1: (84.1, 90.9),
            paper_v2: (79.0, 81.8),
            paper_v1_gced: (88.1, 92.3),
            paper_v2_gced: (85.0, 90.9),
        },
        ZooEntry {
            profile: profile("RoBERTa-500K", 0.45, 200, 102),
            paper_v1: (88.9, 94.6),
            paper_v2: (86.5, 89.4),
            paper_v1_gced: (91.5, 95.8),
            paper_v2_gced: (88.7, 92.3),
        },
        ZooEntry {
            profile: profile("SpanBERT", 0.35, 190, 103),
            paper_v1: (88.8, 94.6),
            paper_v2: (85.7, 88.7),
            paper_v1_gced: (91.2, 96.1),
            paper_v2_gced: (89.2, 92.9),
        },
        ZooEntry {
            profile: profile("ALBERT", 0.2, 200, 104),
            paper_v1: (89.3, 94.8),
            paper_v2: (87.4, 90.2),
            paper_v1_gced: (92.0, 96.1),
            paper_v2_gced: (90.6, 93.1),
        },
        ZooEntry {
            profile: profile("XLNet-large", 0.15, 220, 105),
            paper_v1: (89.7, 95.1),
            paper_v2: (87.9, 90.6),
            paper_v1_gced: (92.8, 96.2),
            paper_v2_gced: (90.5, 93.5),
        },
        ZooEntry {
            profile: profile("ELECTRA-1.75M", 0.3, 220, 106),
            paper_v1: (89.7, 94.9),
            paper_v2: (88.0, 90.6),
            paper_v1_gced: (93.0, 95.9),
            paper_v2_gced: (91.6, 93.9),
        },
        ZooEntry {
            profile: profile("LUKE", 0.12, 220, 107),
            paper_v1: (89.8, 95.0),
            paper_v2: (87.9, 90.5),
            paper_v1_gced: (92.8, 96.7),
            paper_v2_gced: (91.4, 93.4),
        },
        ZooEntry {
            profile: profile("T5", 0.05, 240, 108),
            paper_v1: (90.1, 95.6),
            paper_v2: (88.2, 90.8),
            paper_v1_gced: (93.7, 97.0),
            paper_v2_gced: (91.8, 94.0),
        },
        ZooEntry {
            profile: profile("DeBERTa-large", 0.05, 240, 109),
            paper_v1: (90.1, 95.5),
            paper_v2: (88.0, 90.7),
            paper_v1_gced: (93.1, 97.1),
            paper_v2_gced: (91.0, 93.0),
        },
    ]
}

/// The nine TriviaQA baselines of Table VII. TriviaQA documents are long
/// and noisy, so the window knob carries most of the spread: retrieval
/// pipelines (BERT+BM25, GraphRetriever, RAG) see a narrow slice of the
/// document, long-input encoders (Longformer, BigBird) see nearly all
/// of it.
pub fn trivia_models() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            profile: profile("BERT+BM25", 5.0, 40, 201),
            paper_v1: (47.2, 56.1),
            paper_v2: (46.4, 54.7),
            paper_v1_gced: (63.8, 70.5),
            paper_v2_gced: (62.1, 69.0),
        },
        ZooEntry {
            profile: profile("GraphRetriever", 3.9, 56, 202),
            paper_v1: (55.8, 64.3),
            paper_v2: (54.9, 63.4),
            paper_v1_gced: (69.3, 75.5),
            paper_v2_gced: (68.2, 73.9),
        },
        ZooEntry {
            profile: profile("RoBERTa-base", 2.1, 110, 203),
            paper_v1: (69.7, 76.8),
            paper_v2: (67.6, 74.3),
            paper_v1_gced: (80.4, 84.8),
            paper_v2_gced: (78.4, 82.1),
        },
        ZooEntry {
            profile: profile("Longformer-base", 1.6, 400, 204),
            paper_v1: (74.6, 78.6),
            paper_v2: (72.0, 75.2),
            paper_v1_gced: (82.1, 86.4),
            paper_v2_gced: (79.8, 83.0),
        },
        ZooEntry {
            profile: profile("Bigbird-itc", 1.3, 400, 205),
            paper_v1: (77.6, 81.8),
            paper_v2: (75.7, 79.5),
            paper_v1_gced: (85.1, 90.4),
            paper_v2_gced: (84.3, 89.2),
        },
        ZooEntry {
            profile: profile("ELECTRA-base", 2.3, 110, 206),
            paper_v1: (68.9, 75.6),
            paper_v2: (65.4, 73.8),
            paper_v1_gced: (79.4, 84.6),
            paper_v2_gced: (76.8, 81.7),
        },
        ZooEntry {
            profile: profile("RAG-Sequence", 4.0, 56, 207),
            paper_v1: (58.9, 62.7),
            paper_v2: (55.8, 61.5),
            paper_v1_gced: (71.4, 74.8),
            paper_v2_gced: (68.9, 73.5),
        },
        ZooEntry {
            profile: profile("PA+PDR", 3.6, 72, 208),
            paper_v1: (62.3, 69.0),
            paper_v2: (60.1, 66.7),
            paper_v1_gced: (73.0, 80.1),
            paper_v2_gced: (72.5, 78.9),
        },
        ZooEntry {
            profile: profile("Hard-EM", 2.2, 100, 209),
            paper_v1: (68.5, 75.8),
            paper_v2: (66.9, 75.3),
            paper_v1_gced: (80.1, 83.2),
            paper_v2_gced: (78.4, 83.8),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_models_per_dataset() {
        assert_eq!(squad_models().len(), 9);
        assert_eq!(trivia_models().len(), 9);
    }

    #[test]
    fn names_match_tables() {
        let names: Vec<String> = squad_models()
            .iter()
            .map(|e| e.profile.name.clone())
            .collect();
        assert_eq!(names[0], "BERT-large");
        assert_eq!(names[8], "DeBERTa-large");
        let names: Vec<String> = trivia_models()
            .iter()
            .map(|e| e.profile.name.clone())
            .collect();
        assert_eq!(names[0], "BERT+BM25");
        assert_eq!(names[4], "Bigbird-itc");
    }

    #[test]
    fn noise_ordering_tracks_published_em() {
        // Within each zoo, a model with strictly higher published EM never
        // has strictly more noise *and* a smaller window.
        for zoo in [squad_models(), trivia_models()] {
            for a in &zoo {
                for b in &zoo {
                    if a.paper_v1.0 > b.paper_v1.0 {
                        assert!(
                            a.profile.noise <= b.profile.noise
                                || a.profile.window >= b.profile.window,
                            "{} stronger than {} but worse-provisioned",
                            a.profile.name,
                            b.profile.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_seeds() {
        let mut seeds: Vec<u64> = squad_models()
            .iter()
            .chain(trivia_models().iter())
            .map(|e| e.profile.seed)
            .collect();
        let before = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), before);
    }

    #[test]
    fn published_numbers_are_in_range() {
        for e in squad_models().iter().chain(trivia_models().iter()) {
            for (em, f1) in [e.paper_v1, e.paper_v2] {
                assert!(em > 40.0 && em < 95.0);
                assert!(
                    f1 >= em && f1 < 100.0,
                    "{}: F1 {} < EM {}",
                    e.profile.name,
                    f1,
                    em
                );
            }
        }
    }
}
