//! # gced-qa — extractive QA models
//!
//! The GCED paper uses fine-tuned pretrained language models in three
//! roles: (1) the internal "PLM" that powers the Answer-oriented
//! Sentences Extractor and the informativeness score (Eq. 1), (2) the
//! nine baseline QA systems per dataset of Tables VI/VII, and (3) the
//! retrained models of the evidence-augmentation experiments.
//!
//! Offline, all three roles are filled by a **feature-based extractive
//! span scorer trained with an averaged perceptron** ([`model::QaModel`],
//! DESIGN.md S1): candidate answer spans are scored by clue proximity,
//! answer-type match, rarity, and shape features, and the model learns
//! feature weights from the synthetic training split. Its accuracy rises
//! with the signal-to-noise ratio of its context — the exact property the
//! paper's experiments exercise (shorter, denser evidence ⇒ better QA).
//!
//! The baseline zoo ([`zoo`]) instantiates the nine models per dataset as
//! differently-parameterized profiles (context window, inference noise) —
//! DESIGN.md S7. The relative EM/F1 ordering then reproduces the paper's;
//! the +GCED gains are *not* injected anywhere.

pub mod features;
pub mod incremental;
pub mod model;
pub mod zoo;

pub use features::{QuestionAnalysis, WhType};
pub use incremental::SelectionScoreCache;
pub use model::{EvalResult, ModelProfile, Prediction, QaModel, SelectionScratch};
