//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small fixed-protocol benchmark harness with the same API:
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Protocol: a warm-up phase estimates the per-iteration cost, then
//! `sample_size` timed samples are collected and the **median ns/iter**
//! is reported. Each result is also written as a small JSON file under
//! `$GCED_BENCH_DIR` (default `target/gced-criterion/`) so perf
//! trajectories can be diffed across commits (see `BENCH_pipeline.json`
//! at the repository root).
//!
//! `--test` on the command line (as passed by `cargo bench -- --test`)
//! runs every benchmark exactly once as a smoke test without timing.

use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted:
/// this harness times every routine invocation individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// One benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Median nanoseconds per iteration over all samples.
    pub median_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            test_mode: false,
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Apply command-line configuration (`--test`, name filters).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            f(&mut b);
            println!("test {name} ... ok (smoke, 1 iteration)");
            return;
        }
        // Warm-up: double the iteration count until the warm-up budget is
        // spent, producing a per-iteration estimate.
        let warm_start = Instant::now();
        let mut per_iter_ns = loop {
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
            if warm_start.elapsed() >= self.warm_up_time {
                break ns.max(1.0);
            }
            b.iters = (b.iters * 2).min(1 << 30);
        };
        // Sampling: size each sample so all samples fit the budget.
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        let budget_ns = self.measurement_time.as_nanos() as f64;
        for _ in 0..self.sample_size {
            let target = budget_ns / self.sample_size as f64;
            b.iters = ((target / per_iter_ns) as u64).clamp(1, 1 << 30);
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
            per_iter_ns = ns.max(1.0);
            samples_ns.push(ns);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        println!("{name:<44} time: [{}]", format_ns(median_ns));
        let result = BenchResult {
            name: name.to_string(),
            median_ns,
            samples: samples_ns.len(),
        };
        write_result_json(&result);
        self.results.push(result);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a one-line summary (called by `criterion_group!`).
    pub fn final_summary(&self) {
        if !self.test_mode && !self.results.is_empty() {
            println!("({} benchmark(s) done)", self.results.len());
        }
    }
}

/// Times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Where result JSONs go: `$GCED_BENCH_DIR`, else the **workspace**
/// `target/gced-criterion/`. Cargo runs bench binaries with the package
/// directory as cwd, so a bare relative path would scatter outputs into
/// per-crate `target/` dirs; walking up to the nearest existing `target`
/// finds the shared workspace build dir instead.
fn bench_out_dir() -> PathBuf {
    if let Ok(d) = std::env::var("GCED_BENCH_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d).join("gced-criterion");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("target").is_dir() {
            return dir.join("target").join("gced-criterion");
        }
        if !dir.pop() {
            return PathBuf::from("target/gced-criterion");
        }
    }
}

fn write_result_json(r: &BenchResult) {
    let dir = bench_out_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let file: String = r
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let json = format!(
        "{{\n  \"name\": \"{}\",\n  \"median_ns\": {:.1},\n  \"samples\": {}\n}}\n",
        r.name, r.median_ns, r.samples
    );
    let _ = std::fs::write(dir.join(format!("{file}.json")), json);
}

/// Declare a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_protocol_runs() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(Vec::<u8>::new, |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed < Duration::from_secs(1));
    }

    #[test]
    fn format_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
    }
}
