//! Offline stand-in for the parts of the `rand` crate this workspace
//! uses (`SmallRng`, `Rng::{gen, gen_range, gen_bool}`, `SliceRandom`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal deterministic implementation instead. The stream is
//! xoshiro256++ seeded through splitmix64 — not bit-compatible with the
//! real `rand::rngs::SmallRng`, but every consumer in this workspace only
//! relies on *determinism for a given seed*, which this guarantees.

use std::ops::Range;

/// Core RNG interface: a 64-bit word source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, rng)
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// Uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngCore};

    /// `choose` / `shuffle` over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..60);
            assert!((10..60).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_floats() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = [1, 2, 3];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
