//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a deterministic property-testing harness with the same macro
//! and strategy surface: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, `Strategy` (with `prop_map` / `prop_flat_map` /
//! `boxed`), `Just`, `BoxedStrategy`, ranges, `prop::sample::select`,
//! `prop::collection::vec`, and simple `"[class]{m,n}"` string regexes.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its deterministic case seed instead), and rejected cases (via
//! `prop_assume!`) are retried a bounded number of times.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard this input and try another.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases to run per property.
    pub cases: u32,
    /// Maximum retries per case when inputs are rejected.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        ProptestConfig {
            cases,
            max_global_rejects: 64,
        }
    }
}

/// Deterministic per-case RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for (test name, case index, reject-retry attempt).
    pub fn for_case(name: &str, case: u32, attempt: u32) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        case.hash(&mut h);
        attempt.hash(&mut h);
        TestRng {
            state: h.finish() | 1,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test values. Object-safe: combinators carry a
/// `Self: Sized` bound.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it induces.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

/// Every strategy in a `Vec` generates one element of the output `Vec`.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// `&'static str` regex strategy for the `[class]{min,max}` subset.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{min,max}` into (alphabet, min, max). Supports literal
/// characters and `a-z` ranges; a trailing `-` is a literal.
fn parse_class_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let body = pat.strip_prefix('[')?;
    let close = body.find(']')?;
    let class: Vec<char> = body[..close].chars().collect();
    let rep = body[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            let mut c = a;
            loop {
                chars.push(c);
                if c == b {
                    break;
                }
                c = char::from_u32(c as u32 + 1)?;
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

/// Namespaced strategy constructors (`prop::…`).
pub mod prop {
    /// Sampling from explicit pools.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly select one element of a non-empty `Vec`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires a non-empty pool");
            Select { options }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` of `lens`-many elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, lens: Range<usize>) -> VecStrategy<S> {
            assert!(lens.start < lens.end, "empty length range");
            VecStrategy { elem, lens }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            lens: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.lens.end - self.lens.start) as u64;
                let len = self.lens.start + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Drives the generated cases of one property (used by [`proptest!`]).
pub struct Runner {
    config: ProptestConfig,
    name: &'static str,
}

impl Runner {
    /// New runner for a named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Runner { config, name }
    }

    /// Run `body` for every case, retrying rejected inputs.
    pub fn run<F>(&self, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut accepted = false;
            for attempt in 0..=self.config.max_global_rejects {
                let mut rng = TestRng::for_case(self.name, case, attempt);
                match body(&mut rng) {
                    Ok(()) => {
                        accepted = true;
                        break;
                    }
                    Err(TestCaseError::Reject) => continue,
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest property {} failed at case {case} (attempt {attempt}): {msg}",
                        self.name
                    ),
                }
            }
            // A fully rejected case is skipped, mirroring proptest's
            // tolerance for sparse assumptions.
            let _ = accepted;
        }
    }
}

/// The `proptest!` macro: deterministic case generation, no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::Runner::new($cfg, stringify!($name));
                runner.run(|__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `prop_assume!`: reject the current input unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// `prop_assert!`: fail the property with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!`: fail unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// `prop_assert_ne!`: fail if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {left:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_parse_supported_classes() {
        let (chars, lo, hi) = super::parse_class_regex("[ a-cA-C0-2,.'()-]{1,40}").unwrap();
        assert_eq!(lo, 1);
        assert_eq!(hi, 40);
        for c in [
            ' ', 'a', 'b', 'c', 'A', 'C', '0', '2', ',', '.', '\'', '(', ')', '-',
        ] {
            assert!(chars.contains(&c), "missing {c:?}");
        }
        assert!(!chars.contains(&'z'));
    }

    #[test]
    fn string_strategy_respects_length_and_alphabet() {
        let mut rng = super::TestRng::for_case("t", 0, 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z ]{1,5}", &mut rng);
            assert!((1..=5).contains(&s.chars().count()), "bad len {s:?}");
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_case("x", 3, 0);
        let mut b = super::TestRng::for_case("x", 3, 0);
        let strat = prop::collection::vec(0usize..10, 1..6);
        assert_eq!(
            Strategy::generate(&strat, &mut a),
            Strategy::generate(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself works end to end, including assume/assert.
        #[test]
        fn macro_end_to_end(x in 1usize..50, v in prop::collection::vec(0u8..4, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            prop_assert!(v.len() < 5, "len was {}", v.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        /// Mapped and boxed strategies compose.
        #[test]
        fn combinators(y in (1u8..=5).prop_map(|r| r as f64), z in Just(7usize).boxed()) {
            prop_assert!((1.0..=5.0).contains(&y));
            prop_assert_eq!(z, 7);
        }
    }
}
