//! The human-evaluation scoresheet (paper Table I).

/// The three rated criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    Informativeness,
    Conciseness,
    Readability,
}

impl Criterion {
    /// All criteria in table order.
    pub fn all() -> [Criterion; 3] {
        [
            Criterion::Informativeness,
            Criterion::Conciseness,
            Criterion::Readability,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Criterion::Informativeness => "Informativeness",
            Criterion::Conciseness => "Conciseness",
            Criterion::Readability => "Readability",
        }
    }

    /// The Table I level descriptions, index 0 = score 5 down to score 1.
    pub fn levels(self) -> [&'static str; 5] {
        match self {
            Criterion::Informativeness => [
                "Extremely related to the QA pair; the input answer can be completely inferred.",
                "Generally related; the input answer can be partly inferred.",
                "Generally related, but the input answer can't be inferred.",
                "Only some details identical; the answer can't be inferred.",
                "The evidence is irrelevant to the QA pair.",
            ],
            Criterion::Conciseness => [
                "Extremely concise.",
                "Generally concise (1-1.5x longer than the expected evidence).",
                "Some redundant information (1.5-2x longer).",
                "Too much redundant information (2-3x longer).",
                "The evidence is the whole document (>3x longer).",
            ],
            Criterion::Readability => [
                "Extremely fluent and logical.",
                "Understandable with a few grammar mistakes (1-2).",
                "Understandable to some extent, many grammar mistakes (>2).",
                "Cannot be understood, but some segments are fluent.",
                "Not readable.",
            ],
        }
    }
}

/// Render Table I as text (printed by the agreement bench header).
pub fn render_table1() -> String {
    let mut out = String::from("Table I: human evaluation scoresheet\n");
    for c in Criterion::all() {
        out.push_str(&format!("{}\n", c.name()));
        for (i, level) in c.levels().iter().enumerate() {
            out.push_str(&format!("  ({}) {}\n", 5 - i, level));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_criteria_five_levels() {
        assert_eq!(Criterion::all().len(), 3);
        for c in Criterion::all() {
            assert_eq!(c.levels().len(), 5);
        }
    }

    #[test]
    fn render_includes_all_scores() {
        let t = render_table1();
        for s in [
            "(5)",
            "(4)",
            "(3)",
            "(2)",
            "(1)",
            "Informativeness",
            "Conciseness",
            "Readability",
        ] {
            assert!(t.contains(s), "missing {s}");
        }
    }
}
