//! # gced-eval — rater simulation and experiment runners
//!
//! Everything Section IV of the paper needs:
//!
//! * [`rubric`] — the 1–5 scoresheet of Table I;
//! * [`raters`] — the simulated 9-rater panel (3 groups × 3 raters) of
//!   Sec. IV-A1 (DESIGN.md S8): each rater measures the three rubric
//!   constructs through observable proxies, plus a seeded personal bias
//!   and per-item noise;
//! * [`protocol`] — the evaluation protocol: per-group Krippendorff's α
//!   (Table II), the < 0.7 per-item agreement filter, group averaging;
//! * [`scale`] — experiment sizing via the `GCED_SCALE` env var;
//! * [`experiments`] — runners regenerating Tables II–VIII and Fig. 7;
//! * [`shard`] — dataset-level sharded runs of every experiment with
//!   deterministic merge and a shared fit cache (the `gced` CLI's
//!   backend);
//! * [`tables`] — plain-text + TSV table rendering for the benches.

pub mod experiments;
pub mod protocol;
pub mod raters;
pub mod rubric;
pub mod scale;
pub mod shard;
pub mod tables;

pub use experiments::ExperimentContext;
pub use protocol::{HumanEvalOutcome, RatingProtocol};
pub use raters::{Rater, RaterPanel};
pub use scale::Scale;
pub use shard::{merge, run_shard, MergedRun, ShardError, ShardOutput};
