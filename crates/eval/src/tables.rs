//! Plain-text and TSV table rendering for the benches.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                out.extend(std::iter::repeat_n(' ', width[i] - c.len()));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }

    /// Render as machine-readable TSV (header prefixed with '#').
    pub fn render_tsv(&self) -> String {
        let mut out = String::from("#");
        out.push_str(&self.header.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a 2-decimal score (the paper's 0.xx style).
pub fn score(x: f64) -> String {
    format!("{x:.2}")
}

/// Format an EM/F1 percentage with one decimal (the paper's style).
pub fn pct(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["Model", "EM", "F1"]);
        t.row(vec!["BERT-large".into(), "84.1".into(), "90.9".into()]);
        t.row(vec!["T5".into(), "90.1".into(), "95.6".into()]);
        let s = t.render();
        assert!(s.contains("Model"));
        assert!(s.contains("BERT-large  84.1  90.9"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn renders_tsv() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_tsv(), "#a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(score(0.876), "0.88");
        assert_eq!(pct(84.13), "84.1");
    }
}
