//! The human-evaluation protocol (paper Sec. IV-A1).
//!
//! 1. Items are distributed round-robin over the three rater groups
//!    (raters within a group rate the same evidences).
//! 2. Krippendorff's α is computed per group per criterion (Table II);
//! 3. items with per-item agreement < 0.7 on any criterion are
//!    discarded as controversial;
//! 4. surviving ratings are averaged and rescaled to [0, 1], and the
//!    hybrid score is the equal-weight mean of the three criteria (the
//!    paper sets the three weight factors equal for human evaluation).

use crate::raters::{RatedItem, RaterPanel};
use crate::rubric::Criterion;
use gced_metrics::krippendorff::{alpha_interval, item_agreement};

/// Aggregated outcome of rating a set of items.
#[derive(Debug, Clone)]
pub struct HumanEvalOutcome {
    /// Mean informativeness in [0, 1].
    pub informativeness: f64,
    /// Mean conciseness in [0, 1].
    pub conciseness: f64,
    /// Mean readability in [0, 1].
    pub readability: f64,
    /// Equal-weight hybrid in [0, 1].
    pub hybrid: f64,
    /// Items rated (before filtering).
    pub rated: usize,
    /// Items discarded by the < 0.7 agreement filter.
    pub discarded: usize,
    /// Per-group, per-criterion Krippendorff's α: `alpha[group][criterion]`
    /// in the order of [`Criterion::all`], plus the hybrid row.
    pub alpha: Vec<[Option<f64>; 4]>,
}

/// The rating protocol runner.
#[derive(Debug, Clone)]
pub struct RatingProtocol {
    panel: RaterPanel,
    /// Agreement threshold below which an item is discarded (paper: 0.7).
    pub agreement_threshold: f64,
}

impl RatingProtocol {
    /// The paper's protocol with a seeded panel.
    pub fn paper(seed: u64) -> Self {
        RatingProtocol {
            panel: RaterPanel::paper(seed),
            agreement_threshold: 0.7,
        }
    }

    /// Rate `items` and aggregate.
    pub fn run(&self, items: &[RatedItem]) -> HumanEvalOutcome {
        let n_groups = self.panel.groups.len();
        // ratings[group][criterion] = units (one Vec<f64> per item).
        let mut units: Vec<[Vec<Vec<f64>>; 3]> =
            vec![[Vec::new(), Vec::new(), Vec::new()]; n_groups];
        // Per-item mean ratings (for the final aggregate) and agreement.
        let mut kept_scores: Vec<[f64; 3]> = Vec::new();
        let mut discarded = 0usize;
        for (i, item) in items.iter().enumerate() {
            let group = i % n_groups;
            let raters = &self.panel.groups[group];
            let mut per_criterion: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for (c_idx, c) in Criterion::all().into_iter().enumerate() {
                for r in raters {
                    per_criterion[c_idx].push(r.rate(item, c));
                }
            }
            let agreed = per_criterion
                .iter()
                .all(|rs| item_agreement(rs, (1.0, 5.0)) >= self.agreement_threshold);
            for (c_idx, rs) in per_criterion.iter().enumerate() {
                units[group][c_idx].push(rs.clone());
            }
            if agreed {
                kept_scores.push([
                    mean(&per_criterion[0]),
                    mean(&per_criterion[1]),
                    mean(&per_criterion[2]),
                ]);
            } else {
                discarded += 1;
            }
        }
        let alpha = units
            .iter()
            .map(|group_units| {
                let a0 = alpha_interval(&group_units[0]);
                let a1 = alpha_interval(&group_units[1]);
                let a2 = alpha_interval(&group_units[2]);
                // Hybrid agreement: per-item mean across criteria.
                let hybrid_units: Vec<Vec<f64>> = (0..group_units[0].len())
                    .map(|i| {
                        let m = group_units[0][i].len();
                        (0..m)
                            .map(|r| {
                                (group_units[0][i][r] + group_units[1][i][r] + group_units[2][i][r])
                                    / 3.0
                            })
                            .collect()
                    })
                    .collect();
                [a0, a1, a2, alpha_interval(&hybrid_units)]
            })
            .collect();
        let informativeness = mean(&kept_scores.iter().map(|s| s[0] / 5.0).collect::<Vec<_>>());
        let conciseness = mean(&kept_scores.iter().map(|s| s[1] / 5.0).collect::<Vec<_>>());
        let readability = mean(&kept_scores.iter().map(|s| s[2] / 5.0).collect::<Vec<_>>());
        HumanEvalOutcome {
            informativeness,
            conciseness,
            readability,
            hybrid: (informativeness + conciseness + readability) / 3.0,
            rated: items.len(),
            discarded,
            alpha,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(quality: f64, n: usize) -> Vec<RatedItem> {
        (0..n)
            .map(|i| RatedItem {
                id: format!("item{i}"),
                evidence_tokens: if quality > 0.5 { 10 } else { 50 },
                answer_tokens: 2,
                inference_f1: quality,
                question_overlap: 0.2 + 0.013 * (i % 50) as f64,
                lm_readability: 0.25 + quality * 0.3,
                has_verb: quality > 0.3,
            })
            .collect()
    }

    #[test]
    fn good_evidences_score_high() {
        let protocol = RatingProtocol::paper(42);
        let out = protocol.run(&items(1.0, 60));
        assert!(out.informativeness > 0.75, "I = {}", out.informativeness);
        assert!(out.conciseness > 0.75, "C = {}", out.conciseness);
        assert!(out.readability > 0.7, "R = {}", out.readability);
        assert!(out.hybrid > 0.72);
    }

    #[test]
    fn bad_evidences_score_low() {
        let protocol = RatingProtocol::paper(42);
        let out = protocol.run(&items(0.0, 60));
        assert!(out.hybrid < 0.6, "H = {}", out.hybrid);
        let good = protocol.run(&items(1.0, 60));
        assert!(good.hybrid > out.hybrid + 0.15);
    }

    #[test]
    fn alpha_is_in_paper_band() {
        let protocol = RatingProtocol::paper(42);
        // Mixed-quality items give the rating variance α needs.
        let mut mixed = items(1.0, 40);
        mixed.extend(items(0.5, 40));
        mixed.extend(items(0.0, 40));
        let out = protocol.run(&mixed);
        for group in &out.alpha {
            for a in group.iter().flatten() {
                assert!(*a > 0.55 && *a <= 1.0, "alpha {a} out of band");
            }
        }
    }

    #[test]
    fn filter_discards_some_items_but_not_all() {
        let protocol = RatingProtocol::paper(42);
        let mut mixed = items(1.0, 30);
        mixed.extend(items(0.4, 30));
        let out = protocol.run(&mixed);
        assert!(out.discarded < out.rated);
    }

    #[test]
    fn outcome_is_deterministic() {
        let protocol = RatingProtocol::paper(7);
        let a = protocol.run(&items(0.8, 30));
        let b = protocol.run(&items(0.8, 30));
        assert_eq!(a.hybrid, b.hybrid);
        assert_eq!(a.discarded, b.discarded);
    }

    #[test]
    fn empty_items() {
        let protocol = RatingProtocol::paper(1);
        let out = protocol.run(&[]);
        assert_eq!(out.rated, 0);
        assert_eq!(out.hybrid, 0.0);
    }
}
