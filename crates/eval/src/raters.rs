//! Simulated human raters (paper Sec. IV-A1; DESIGN.md S8).
//!
//! Each rater maps an evidence to 1–5 ratings on the Table I rubric by
//! measuring the three constructs through observable proxies:
//!
//! * **informativeness** — whether the input answer can be inferred from
//!   the evidence, proxied by the PLM's answer-prediction F1 (the same
//!   construct Eq. 1 measures, which is how the paper motivates Eq. 1 in
//!   the first place);
//! * **conciseness** — the evidence length relative to the *expected
//!   evidence* (answer plus a minimal supporting clause), the explicit
//!   ratio rubric of Table I;
//! * **readability** — corpus-normalized LM fluency plus structural
//!   checks (a verb, a minimum length).
//!
//! On top of the shared proxy, every rater has a seeded personal bias
//! (systematic strictness) and per-item noise (attention fluctuations),
//! so raters genuinely disagree and Krippendorff's α is a meaningful
//! quantity to report in Table II.

use crate::rubric::Criterion;
use gced::Distillation;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Everything a rater sees for one item.
#[derive(Debug, Clone)]
pub struct RatedItem {
    /// Stable item id (drives per-item noise).
    pub id: String,
    /// The distilled evidence under evaluation.
    pub evidence_tokens: usize,
    /// Tokens of the input answer.
    pub answer_tokens: usize,
    /// PLM answer-inference score on the evidence (Eq. 1 F1).
    pub inference_f1: f64,
    /// Fraction of the question's content words present in the evidence
    /// (drives the rubric's "generally related" distinctions).
    pub question_overlap: f64,
    /// Normalized LM readability of the evidence.
    pub lm_readability: f64,
    /// True when the evidence contains a main verb.
    pub has_verb: bool,
}

impl RatedItem {
    /// Extract the rater-visible measurements from a distillation.
    pub fn from_distillation(id: impl Into<String>, d: &Distillation, answer: &str) -> Self {
        let ev_doc = gced_text::analyze(&d.evidence);
        let has_verb = ev_doc
            .tokens
            .iter()
            .any(|t| matches!(t.pos, gced_text::Pos::Verb | gced_text::Pos::Aux));
        let clue_total = d.trace.significant_words.len();
        let question_overlap = if clue_total == 0 {
            0.5
        } else {
            let ev_words: std::collections::HashSet<String> =
                ev_doc.tokens.iter().map(|t| t.lower()).collect();
            d.trace
                .significant_words
                .iter()
                .filter(|w| ev_words.contains(*w))
                .count() as f64
                / clue_total as f64
        };
        RatedItem {
            id: id.into(),
            evidence_tokens: d.evidence_tokens.len(),
            answer_tokens: answer.split_whitespace().count().max(1),
            inference_f1: d.scores.informativeness,
            question_overlap,
            lm_readability: d.scores.readability,
            has_verb,
        }
    }

    /// The rubric's "expected evidence" length: the answer plus a
    /// minimal supporting clause.
    fn expected_len(&self) -> f64 {
        self.answer_tokens as f64 + 6.0
    }

    /// Shared base assessment (before rater bias/noise), as a real value
    /// in [1, 5].
    fn base_score(&self, criterion: Criterion) -> f64 {
        match criterion {
            Criterion::Informativeness => {
                // Table I: 5 = completely inferred … 1 = irrelevant. The
                // relatedness component (question overlap) grades the
                // "generally / only some details related" distinctions.
                let rel = 0.6 * self.question_overlap;
                if self.inference_f1 >= 0.95 {
                    4.4 + rel
                } else if self.inference_f1 >= 0.6 {
                    3.5 + (self.inference_f1 - 0.6) + rel
                } else if self.inference_f1 >= 0.3 {
                    2.7 + (self.inference_f1 - 0.3) + rel
                } else if self.inference_f1 > 0.0 {
                    1.9 + self.inference_f1 + rel
                } else {
                    1.2 + rel
                }
            }
            Criterion::Conciseness => {
                let ratio = self.evidence_tokens as f64 / self.expected_len();
                if ratio <= 1.2 {
                    5.0
                } else if ratio <= 1.5 {
                    4.5
                } else if ratio <= 2.0 {
                    4.0 - (ratio - 1.5)
                } else if ratio <= 3.0 {
                    3.0 - (ratio - 2.0)
                } else {
                    1.2
                }
            }
            Criterion::Readability => {
                let mut s = if self.lm_readability >= 0.45 {
                    5.0
                } else if self.lm_readability >= 0.3 {
                    4.0 + (self.lm_readability - 0.3) / 0.15
                } else if self.lm_readability >= 0.2 {
                    3.0 + (self.lm_readability - 0.2) / 0.1
                } else if self.lm_readability >= 0.1 {
                    2.0 + (self.lm_readability - 0.1) / 0.1
                } else {
                    1.3
                };
                if !self.has_verb {
                    s = s.min(3.0); // a verbless fragment reads badly
                }
                if self.evidence_tokens < 3 {
                    s = s.min(2.5);
                }
                s
            }
        }
    }
}

/// One simulated rater.
#[derive(Debug, Clone)]
pub struct Rater {
    /// Stable rater id (drives bias and noise).
    pub id: u64,
    /// Systematic strictness offset in rating points.
    pub bias: f64,
    /// Per-item noise amplitude in rating points.
    pub noise: f64,
}

impl Rater {
    /// Deterministic rater from an id: bias in [−0.35, +0.35], noise
    /// amplitude 0.55 (calibrated so group α lands in the paper's
    /// 0.75–0.83 band).
    pub fn from_id(id: u64) -> Self {
        let h = hash2(id, 0xB1A5);
        let bias = ((h % 1000) as f64 / 1000.0 - 0.5) * 0.7;
        Rater {
            id,
            bias,
            noise: 0.55,
        }
    }

    /// Rate one item on one criterion: shared proxy + bias + noise,
    /// rounded and clamped to the 1–5 scale. With small probability the
    /// rater "slips" by up to ±2 points (mis-readings, fatigue) — the
    /// source of the controversial items the paper's < 0.7 agreement
    /// filter discards.
    pub fn rate(&self, item: &RatedItem, criterion: Criterion) -> f64 {
        let base = item.base_score(criterion);
        let mut h = DefaultHasher::new();
        self.id.hash(&mut h);
        item.id.hash(&mut h);
        (criterion as u8).hash(&mut h);
        let bits = h.finish();
        let u = (bits % 10_000) as f64 / 10_000.0;
        let mut noisy = base + self.bias + (u * 2.0 - 1.0) * self.noise;
        let slip = ((bits >> 17) % 1000) as f64 / 1000.0;
        if self.noise > 0.0 && slip < 0.025 {
            noisy += if (bits >> 33) & 1 == 0 { 2.0 } else { -2.0 };
        }
        noisy.round().clamp(1.0, 5.0)
    }
}

/// A panel of raters split into groups (paper: 9 raters, 3 groups).
#[derive(Debug, Clone)]
pub struct RaterPanel {
    /// Groups of raters; every rater in a group rates the same items.
    pub groups: Vec<Vec<Rater>>,
}

impl RaterPanel {
    /// Group count of the paper's panel (the item space of the sharded
    /// `agreement` experiment).
    pub const PAPER_GROUPS: usize = 3;

    /// The paper's panel: 3 groups × 3 raters, seeded.
    pub fn paper(seed: u64) -> Self {
        let mut groups = Vec::with_capacity(Self::PAPER_GROUPS);
        for g in 0..Self::PAPER_GROUPS as u64 {
            groups.push(
                (0..3u64)
                    .map(|r| Rater::from_id(hash2(seed, g * 31 + r)))
                    .collect(),
            );
        }
        RaterPanel { groups }
    }

    /// Total number of raters.
    pub fn rater_count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut h = DefaultHasher::new();
    a.hash(&mut h);
    b.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_item() -> RatedItem {
        RatedItem {
            id: "good".into(),
            evidence_tokens: 9,
            answer_tokens: 2,
            inference_f1: 1.0,
            question_overlap: 0.9,
            lm_readability: 0.5,
            has_verb: true,
        }
    }

    fn bad_item() -> RatedItem {
        RatedItem {
            id: "bad".into(),
            evidence_tokens: 60,
            answer_tokens: 2,
            inference_f1: 0.0,
            question_overlap: 0.1,
            lm_readability: 0.05,
            has_verb: false,
        }
    }

    #[test]
    fn good_items_outscore_bad_items() {
        let rater = Rater::from_id(7);
        for c in Criterion::all() {
            let g = rater.rate(&good_item(), c);
            let b = rater.rate(&bad_item(), c);
            assert!(g > b, "{c:?}: good {g} <= bad {b}");
        }
    }

    #[test]
    fn ratings_are_on_scale_and_deterministic() {
        let rater = Rater::from_id(3);
        for c in Criterion::all() {
            let r1 = rater.rate(&good_item(), c);
            let r2 = rater.rate(&good_item(), c);
            assert_eq!(r1, r2);
            assert!((1.0..=5.0).contains(&r1));
            assert_eq!(r1.fract(), 0.0, "ratings are whole points");
        }
    }

    #[test]
    fn different_raters_disagree_sometimes() {
        let raters: Vec<Rater> = (0..9).map(Rater::from_id).collect();
        let mut distinct = std::collections::HashSet::new();
        for r in &raters {
            distinct.insert(r.rate(&good_item(), Criterion::Readability) as i64);
        }
        // Not all nine raters give the identical rating to every item.
        let mut item2 = good_item();
        item2.lm_readability = 0.32;
        item2.id = "med".into();
        for r in &raters {
            distinct.insert(r.rate(&item2, Criterion::Readability) as i64);
        }
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn panel_shape_matches_paper() {
        let p = RaterPanel::paper(42);
        assert_eq!(p.groups.len(), 3);
        assert_eq!(p.rater_count(), 9);
        for g in &p.groups {
            assert_eq!(g.len(), 3);
        }
    }

    #[test]
    fn panel_is_seed_deterministic() {
        let a = RaterPanel::paper(1);
        let b = RaterPanel::paper(1);
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            for (ra, rb) in ga.iter().zip(gb) {
                assert_eq!(ra.id, rb.id);
                assert_eq!(ra.bias, rb.bias);
            }
        }
    }

    #[test]
    fn conciseness_tracks_length() {
        let rater = Rater {
            id: 1,
            bias: 0.0,
            noise: 0.0,
        };
        let mut item = good_item();
        let mut prev = 6.0;
        for len in [8, 14, 20, 30, 50] {
            item.evidence_tokens = len;
            item.id = format!("len{len}");
            let r = rater.rate(&item, Criterion::Conciseness);
            assert!(r <= prev, "len {len}: {r} > {prev}");
            prev = r;
        }
    }

    #[test]
    fn verbless_fragment_caps_readability() {
        let rater = Rater {
            id: 1,
            bias: 0.0,
            noise: 0.0,
        };
        let mut item = good_item();
        item.has_verb = false;
        assert!(rater.rate(&item, Criterion::Readability) <= 3.0);
    }
}
