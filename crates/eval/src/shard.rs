//! Sharded experiment runs with deterministic merge.
//!
//! A dataset-level experiment is decomposed into independent *items*
//! (dataset kinds for the Table III statistics, dev examples for
//! distillation runs). One shard executes a contiguous item range
//! ([`ShardSpec::range`]) and serializes its table rows and per-item
//! metrics as a [`ShardOutput`] (plain JSON); [`merge`] validates that
//! a set of shard outputs covers the run exactly — same experiment,
//! seed, scale, header, shard count, every shard present once, item
//! indices disjoint and in-range — and reassembles them into a
//! [`MergedRun`] whose rendering is **bit-identical to the
//! single-process run** for any shard count and any completion order.
//!
//! Identity holds because (a) every item's cells/metrics are computed
//! by a deterministic function of the shared artifacts (seeded dataset
//! generation, seeded fit) that every shard reconstructs identically,
//! and (b) the merge orders rows by global item index, erasing
//! scheduling. The property tests in `tests/shard_properties.rs` pin
//! both halves down.

use crate::experiments::{self, ExperimentContext};
use crate::scale::Scale;
use crate::tables::{pct, score, TextTable};
use gced::{Gced, GcedConfig};
use gced_datasets::json::{self, Json};
use gced_datasets::{generate, DatasetKind, GeneratorConfig, Grid, ShardSpec};
use std::path::Path;

/// On-disk format version of [`ShardOutput`].
const FORMAT_VERSION: u32 = 1;

/// Errors from shard execution, decoding, or merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Unknown experiment name.
    UnknownExperiment(String),
    /// Invalid shard spec or arguments.
    Spec(String),
    /// Malformed shard output JSON.
    Format(String),
    /// Shard outputs that do not assemble into one run.
    Merge(String),
    /// Fit-cache artifact I/O or validation failure.
    Cache(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownExperiment(n) => {
                write!(
                    f,
                    "unknown experiment {n:?} (expected one of {EXPERIMENTS:?})"
                )
            }
            ShardError::Spec(m) => write!(f, "shard spec error: {m}"),
            ShardError::Format(m) => write!(f, "shard format error: {m}"),
            ShardError::Merge(m) => write!(f, "shard merge error: {m}"),
            ShardError::Cache(m) => write!(f, "fit cache error: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One table row produced by a shard, tagged with its global item index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRow {
    /// Global item index in `0..n_items`.
    pub item: usize,
    /// Rendered cells (one per header column).
    pub cells: Vec<String>,
}

/// One per-item metric sample produced by a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetric {
    /// Global item index in `0..n_items`.
    pub item: usize,
    /// Metric name (e.g. `word_reduction`).
    pub name: String,
    /// Finite sample value.
    pub value: f64,
}

/// The serializable result of one shard of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutput {
    /// Experiment name (see [`EXPERIMENTS`]).
    pub experiment: String,
    /// Dataset kind the experiment ran on.
    pub kind: DatasetKind,
    /// The run's base seed (shared by every shard).
    pub seed: u64,
    /// Scale fingerprint (`train…-dev…-rated…`).
    pub scale_tag: String,
    /// Which shard this is.
    pub shard: ShardSpec,
    /// Total number of items in the full run.
    pub n_items: usize,
    /// Table header (identical across shards).
    pub header: Vec<String>,
    /// Rows for this shard's items, in item order.
    pub rows: Vec<ShardRow>,
    /// Metric samples for this shard's items, in item order.
    pub metrics: Vec<ShardMetric>,
}

/// Scale fingerprint recorded in shard outputs and validated at merge.
pub fn scale_tag(scale: Scale) -> String {
    format!("train{}-dev{}-rated{}", scale.train, scale.dev, scale.rated)
}

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

/// Shardable experiments, by name:
///
/// * `table3` — dataset statistics (Table III); items are the four
///   dataset kinds, `kind` is ignored.
/// * `reduction` — ground-truth evidence distillation over the dev
///   split of `kind` (the Sec. IV-D1 word-reduction statistic); items
///   are dev examples, and each shard prepares only its slice of the
///   dev [`ExperimentContext`] cache via
///   [`ExperimentContext::prepare_with`].
/// * `human_eval` — Tables IV/V; items are the baseline models of the
///   kind's zoo plus a final ground-truth row.
/// * `agreement` — Table II; items are the three rater groups (each
///   row carries one group's per-criterion Krippendorff's α over the
///   pooled mixed-quality item set).
/// * `qa_augmentation` — Tables VI/VII; items are the zoo models, each
///   row the model's base vs +GCED EM/F1 with paper references and the
///   accuracy delta.
/// * `ablation` — Table VIII; items are the component-knockout
///   variants plus the full system.
/// * `degradation` — Fig. 7; items form a (model × δ) [`Grid`], each
///   cell one substitution-rate point of one model's curve.
pub const EXPERIMENTS: &[&str] = &[
    "table3",
    "reduction",
    "human_eval",
    "agreement",
    "qa_augmentation",
    "ablation",
    "degradation",
];

/// True when an experiment distills or predicts and therefore needs
/// the fitted pipeline (everything except the pure dataset statistics).
pub fn needs_fit(experiment: &str) -> bool {
    experiment != "table3"
}

/// Fingerprint of the fitted substrates a run depends on. Stored in
/// the fit-cache artifact and verified on load, so an artifact from a
/// different dataset kind, scale, or seed fails loudly.
pub fn fit_fingerprint(kind: DatasetKind, scale: Scale, seed: u64) -> String {
    format!(
        "gced-fit:v1:{}:{}:{}",
        kind.cli_flag(),
        scale_tag(scale),
        seed
    )
}

fn fit_fresh(kind: DatasetKind, scale: Scale, seed: u64) -> Gced {
    let dataset = generate(
        kind,
        GeneratorConfig {
            train: scale.train,
            dev: scale.dev,
            seed,
        },
    );
    Gced::fit(
        &dataset,
        GcedConfig {
            seed,
            ..GcedConfig::default()
        },
    )
}

/// Obtain the fitted pipeline of a run, through the shared fit cache
/// when a path is given: load the artifact if it exists (validating
/// its fingerprint), otherwise fit once and publish the artifact
/// atomically (write-to-temp + rename). Because the encoding is
/// byte-deterministic, concurrent shard workers racing on one path can
/// only ever replace the file with identical bytes — whoever wins, the
/// mapped artifact is the same fit.
pub fn load_or_fit(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    cache: Option<&Path>,
) -> Result<Gced, ShardError> {
    let Some(path) = cache else {
        return Ok(fit_fresh(kind, scale, seed));
    };
    let fingerprint = fit_fingerprint(kind, scale, seed);
    let config = GcedConfig {
        seed,
        ..GcedConfig::default()
    };
    match std::fs::read(path) {
        Ok(bytes) => gced::cache::decode(&bytes, &fingerprint, config)
            .map_err(|e| ShardError::Cache(format!("{}: {e}", path.display()))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let fitted = fit_fresh(kind, scale, seed);
            let bytes = gced::cache::encode(&fitted, &fingerprint);
            let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
            std::fs::write(&tmp, &bytes)
                .and_then(|()| std::fs::rename(&tmp, path))
                .map_err(|e| {
                    ShardError::Cache(format!("cannot publish {}: {e}", path.display()))
                })?;
            Ok(fitted)
        }
        Err(e) => Err(ShardError::Cache(format!(
            "cannot read {}: {e}",
            path.display()
        ))),
    }
}

/// Run one shard of a named experiment, fitting fresh in-process.
pub fn run_shard(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
) -> Result<ShardOutput, ShardError> {
    run_shard_cached(experiment, kind, scale, seed, shard, None)
}

/// [`run_shard`] through the shared fit cache: with `Some(path)`,
/// co-located shard workers fit the pipeline once and map the
/// serialized artifact instead of re-fitting identical state per
/// shard. Output is bit-identical either way.
pub fn run_shard_cached(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit_cache: Option<&Path>,
) -> Result<ShardOutput, ShardError> {
    if !EXPERIMENTS.contains(&experiment) {
        return Err(ShardError::UnknownExperiment(experiment.to_string()));
    }
    // Resolve the cache before running so an unusable artifact fails
    // loudly up front; without a cache path each runner fits lazily
    // (and only when its shard range is non-empty).
    let fit = match fit_cache {
        Some(path) if needs_fit(experiment) => Some(load_or_fit(kind, scale, seed, Some(path))?),
        _ => None,
    };
    run_shard_with_fit(experiment, kind, scale, seed, shard, fit)
}

/// The core dispatch: `fit` carries an already-fitted pipeline (from
/// the cache file or an in-process run's shared fit), or `None` to fit
/// fresh inside the runner.
fn run_shard_with_fit(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> Result<ShardOutput, ShardError> {
    match experiment {
        "table3" => Ok(run_table3_shard(scale, seed, shard)),
        "reduction" => Ok(run_reduction_shard(kind, scale, seed, shard, fit)),
        "human_eval" => Ok(run_human_eval_shard(kind, scale, seed, shard, fit)),
        "agreement" => Ok(run_agreement_shard(kind, scale, seed, shard, fit)),
        "qa_augmentation" => Ok(run_qa_augmentation_shard(kind, scale, seed, shard, fit)),
        "ablation" => Ok(run_ablation_shard(kind, scale, seed, shard, fit)),
        "degradation" => Ok(run_degradation_shard(kind, scale, seed, shard, fit)),
        other => Err(ShardError::UnknownExperiment(other.to_string())),
    }
}

fn run_table3_shard(scale: Scale, seed: u64, shard: ShardSpec) -> ShardOutput {
    let kinds = DatasetKind::all();
    let header = vec![
        "Dataset".to_string(),
        "Paper Train".to_string(),
        "Paper Dev".to_string(),
        "Gen Train".to_string(),
        "Gen Dev".to_string(),
        "Ctx words".to_string(),
        "Answerable".to_string(),
    ];
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for item in shard.range(kinds.len()) {
        let kind = kinds[item];
        let (pt, pd) = kind.paper_sizes();
        let ds = generate(
            kind,
            GeneratorConfig {
                train: scale.train,
                dev: scale.dev,
                seed,
            },
        );
        let answerable = ds
            .train
            .examples
            .iter()
            .chain(&ds.dev.examples)
            .filter(|e| e.answerable)
            .count() as f64
            / (ds.train.len() + ds.dev.len()) as f64;
        let ctx_words = ds.mean_context_words();
        rows.push(ShardRow {
            item,
            cells: vec![
                kind.name().to_string(),
                pt.to_string(),
                pd.to_string(),
                ds.train.len().to_string(),
                ds.dev.len().to_string(),
                format!("{ctx_words:.0}"),
                format!("{:.0}%", answerable * 100.0),
            ],
        });
        metrics.push(ShardMetric {
            item,
            name: "ctx_words".to_string(),
            value: ctx_words,
        });
        metrics.push(ShardMetric {
            item,
            name: "answerable".to_string(),
            value: answerable,
        });
    }
    ShardOutput {
        experiment: "table3".to_string(),
        kind: DatasetKind::Squad11,
        seed,
        scale_tag: scale_tag(scale),
        shard,
        n_items: kinds.len(),
        header,
        rows,
        metrics,
    }
}

fn run_reduction_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> ShardOutput {
    // Dev-only: the train gt cache is never read here, so skip it.
    let ctx = ExperimentContext::prepare_fitted(kind, scale, seed, fit, None, Some(shard));
    let n_items = ctx.dataset.dev.len();
    let header = vec![
        "Example".to_string(),
        "Evidence tokens".to_string(),
        "Reduction".to_string(),
    ];
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for item in shard.range(n_items) {
        let ex = &ctx.dataset.dev.examples[item];
        // Unanswerable / failed examples produce no row, so shards may
        // contribute fewer rows than items — the merge allows that.
        if let Some(d) = &ctx.gt_dev[item] {
            rows.push(ShardRow {
                item,
                cells: vec![
                    ex.id.clone(),
                    d.evidence_tokens.len().to_string(),
                    format!("{:.1}%", d.word_reduction * 100.0),
                ],
            });
            metrics.push(ShardMetric {
                item,
                name: "word_reduction".to_string(),
                value: d.word_reduction,
            });
        }
    }
    ShardOutput {
        experiment: "reduction".to_string(),
        kind,
        seed,
        scale_tag: scale_tag(scale),
        shard,
        n_items,
        header,
        rows,
        metrics,
    }
}

/// Assemble a [`ShardOutput`] (shared tail of the model-grid runners).
#[allow(clippy::too_many_arguments)]
fn shard_output(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    n_items: usize,
    header: &[&str],
    rows: Vec<ShardRow>,
    metrics: Vec<ShardMetric>,
) -> ShardOutput {
    ShardOutput {
        experiment: experiment.to_string(),
        kind,
        seed,
        scale_tag: scale_tag(scale),
        shard,
        n_items,
        header: header.iter().map(|h| h.to_string()).collect(),
        rows,
        metrics,
    }
}

/// Tables IV/V: items are the kind's zoo models plus a final
/// ground-truth row. Only the shard owning the ground-truth item pays
/// for the dev evidence cache.
fn run_human_eval_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> ShardOutput {
    let zoo = experiments::zoo_for(kind);
    let n_items = zoo.len() + 1;
    let header = [
        "Source",
        "I",
        "C",
        "R",
        "Hybrid",
        "Rated",
        "Discarded",
        "Reduction",
    ];
    let range = shard.range(n_items);
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    if !range.is_empty() {
        let owns_gt = range.contains(&zoo.len());
        let ctx = ExperimentContext::prepare_fitted(
            kind,
            scale,
            seed,
            fit,
            None,
            owns_gt.then(ShardSpec::single),
        );
        for item in range {
            let row = if item < zoo.len() {
                experiments::human_eval_model_row(&ctx, &zoo[item], scale)
            } else {
                experiments::human_eval_gt_row(&ctx, scale)
            };
            rows.push(ShardRow {
                item,
                cells: vec![
                    row.source.clone(),
                    score(row.outcome.informativeness),
                    score(row.outcome.conciseness),
                    score(row.outcome.readability),
                    score(row.outcome.hybrid),
                    row.outcome.rated.to_string(),
                    row.outcome.discarded.to_string(),
                    format!("{:.1}%", row.word_reduction * 100.0),
                ],
            });
            metrics.push(ShardMetric {
                item,
                name: "hybrid".to_string(),
                value: row.outcome.hybrid,
            });
            metrics.push(ShardMetric {
                item,
                name: "word_reduction".to_string(),
                value: row.word_reduction,
            });
        }
    }
    shard_output(
        "human_eval",
        kind,
        scale,
        seed,
        shard,
        n_items,
        &header,
        rows,
        metrics,
    )
}

/// Table II: items are the three rater groups; each row is one group's
/// per-criterion Krippendorff's α over the pooled mixed-quality item
/// set. Every shard reconstructs the (deterministic) pooled ratings and
/// emits only the cells of the groups it owns.
fn run_agreement_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> ShardOutput {
    let n_items = crate::raters::RaterPanel::PAPER_GROUPS;
    let header = ["Group", "alpha I", "alpha C", "alpha R", "alpha Hybrid"];
    let range = shard.range(n_items);
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    if !range.is_empty() {
        // The pooled sources read the dev gt cache in full.
        let ctx = ExperimentContext::prepare_fitted(
            kind,
            scale,
            seed,
            fit,
            None,
            Some(ShardSpec::single()),
        );
        let weak = &experiments::zoo_for(kind)[0];
        let outcome = experiments::agreement_study(&ctx, weak, scale);
        let metric_names = ["alpha_i", "alpha_c", "alpha_r", "alpha_hybrid"];
        for item in range {
            // Direct index: a panel whose group count drifts from
            // PAPER_GROUPS must fail loudly, not emit a short table.
            let alphas = outcome.alpha[item];
            let mut cells = vec![format!("Group {}", item + 1)];
            for (name, a) in metric_names.iter().zip(alphas) {
                match a {
                    Some(a) => {
                        cells.push(score(a));
                        metrics.push(ShardMetric {
                            item,
                            name: name.to_string(),
                            value: a,
                        });
                    }
                    None => cells.push("n/a".to_string()),
                }
            }
            rows.push(ShardRow { item, cells });
        }
    }
    shard_output(
        "agreement",
        kind,
        scale,
        seed,
        shard,
        n_items,
        &header,
        rows,
        metrics,
    )
}

/// Tables VI/VII: items are the kind's zoo models; each row the
/// model's measured base vs +GCED EM/F1, the published reference
/// numbers, and the F1 delta.
fn run_qa_augmentation_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> ShardOutput {
    let zoo = experiments::zoo_for(kind);
    let n_items = zoo.len();
    let header = [
        "Model",
        "Base EM",
        "Base F1",
        "+GCED EM",
        "+GCED F1",
        "Paper base",
        "Paper +GCED",
        "dF1",
    ];
    let range = shard.range(n_items);
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    if !range.is_empty() {
        // Evidence splits come from the full gt caches.
        let ctx = ExperimentContext::prepare_fitted(
            kind,
            scale,
            seed,
            fit,
            Some(ShardSpec::single()),
            Some(ShardSpec::single()),
        );
        let ev_train = ctx.evidence_train();
        let ev_dev = ctx.evidence_dev();
        for item in range {
            let row = experiments::qa_augmentation_row(&ctx, &zoo[item], &ev_train, &ev_dev);
            let f1_gain = row.gced.f1 - row.base.f1;
            rows.push(ShardRow {
                item,
                cells: vec![
                    row.model.clone(),
                    pct(row.base.em),
                    pct(row.base.f1),
                    pct(row.gced.em),
                    pct(row.gced.f1),
                    format!("{}/{}", pct(row.paper_base.0), pct(row.paper_base.1)),
                    format!("{}/{}", pct(row.paper_gced.0), pct(row.paper_gced.1)),
                    format!("{f1_gain:+.1}"),
                ],
            });
            metrics.push(ShardMetric {
                item,
                name: "base_f1".to_string(),
                value: row.base.f1,
            });
            metrics.push(ShardMetric {
                item,
                name: "gced_f1".to_string(),
                value: row.gced.f1,
            });
            metrics.push(ShardMetric {
                item,
                name: "f1_gain".to_string(),
                value: f1_gain,
            });
        }
    }
    shard_output(
        "qa_augmentation",
        kind,
        scale,
        seed,
        shard,
        n_items,
        &header,
        rows,
        metrics,
    )
}

/// Table VIII: items are the ablation variants (component knockouts
/// plus the full system, in [`experiments::ablation_variants`] order).
fn run_ablation_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> ShardOutput {
    let variants = experiments::ablation_variants();
    let n_items = variants.len();
    let header = ["Sources", "I", "C", "R", "H", "EM", "F1"];
    let range = shard.range(n_items);
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    if !range.is_empty() {
        // Each variant re-distills both splits itself; the gt caches
        // are never read.
        let ctx = ExperimentContext::prepare_fitted(kind, scale, seed, fit, None, None);
        let bert = &experiments::zoo_for(kind)[0];
        for item in range {
            let (label, ablation) = variants[item].clone();
            let row = experiments::ablation_row(&ctx, bert, scale, &label, ablation);
            rows.push(ShardRow {
                item,
                cells: vec![
                    row.label.clone(),
                    score(row.outcome.informativeness),
                    score(row.outcome.conciseness),
                    score(row.outcome.readability),
                    score(row.outcome.hybrid),
                    pct(row.em),
                    pct(row.f1),
                ],
            });
            metrics.push(ShardMetric {
                item,
                name: "hybrid".to_string(),
                value: row.outcome.hybrid,
            });
            metrics.push(ShardMetric {
                item,
                name: "f1".to_string(),
                value: row.f1,
            });
        }
    }
    shard_output(
        "ablation", kind, scale, seed, shard, n_items, &header, rows, metrics,
    )
}

/// Fig. 7: items form a (model × δ) [`Grid`]. A shard builds the
/// expensive per-model artifacts (trained baseline, predicted-answer
/// evidences) once per grid row it touches, then evaluates only its
/// own cells.
fn run_degradation_shard(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shard: ShardSpec,
    fit: Option<Gced>,
) -> ShardOutput {
    let zoo = experiments::zoo_for(kind);
    let deltas = experiments::DEGRADATION_DELTAS;
    let grid = Grid::new(zoo.len(), deltas.len());
    let n_items = grid.len();
    let header = ["Model", "delta", "EM", "F1"];
    let range = shard.range(n_items);
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    if !range.is_empty() {
        // Mixing substitutes into the full gt evidence caches.
        let ctx = ExperimentContext::prepare_fitted(
            kind,
            scale,
            seed,
            fit,
            Some(ShardSpec::single()),
            Some(ShardSpec::single()),
        );
        for model_idx in grid.rows_of(&range) {
            let entry = &zoo[model_idx];
            let pred = experiments::predicted_evidences(&ctx, entry);
            for (col, &delta) in deltas.iter().enumerate() {
                let item = grid.item(model_idx, col);
                if !range.contains(&item) {
                    continue;
                }
                let (delta, em, f1) = experiments::degradation_point(&ctx, entry, &pred, delta);
                rows.push(ShardRow {
                    item,
                    cells: vec![
                        entry.profile.name.clone(),
                        format!("{delta:.1}"),
                        pct(em),
                        pct(f1),
                    ],
                });
                metrics.push(ShardMetric {
                    item,
                    name: "em".to_string(),
                    value: em,
                });
                metrics.push(ShardMetric {
                    item,
                    name: "f1".to_string(),
                    value: f1,
                });
            }
        }
    }
    shard_output(
        "degradation",
        kind,
        scale,
        seed,
        shard,
        n_items,
        &header,
        rows,
        metrics,
    )
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

impl ShardOutput {
    /// Serialize as plain JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"format\":");
        out.push_str(&FORMAT_VERSION.to_string());
        out.push_str(",\"experiment\":");
        json::push_string(&mut out, &self.experiment);
        out.push_str(",\"kind\":");
        json::push_string(&mut out, self.kind.name());
        // The seed travels as a string: it is a full-range u64, and the
        // JSON number path would round it through f64 above 2^53.
        out.push_str(",\"seed\":");
        json::push_string(&mut out, &self.seed.to_string());
        out.push_str(",\"scale\":");
        json::push_string(&mut out, &self.scale_tag);
        out.push_str(",\"shard_index\":");
        out.push_str(&self.shard.index.to_string());
        out.push_str(",\"shard_of\":");
        out.push_str(&self.shard.of.to_string());
        out.push_str(",\"n_items\":");
        out.push_str(&self.n_items.to_string());
        out.push_str(",\"header\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"item\":");
            out.push_str(&row.item.to_string());
            out.push_str(",\"cells\":[");
            for (j, c) in row.cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::push_string(&mut out, c);
            }
            out.push_str("]}");
        }
        out.push_str("],\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"item\":");
            out.push_str(&m.item.to_string());
            out.push_str(",\"name\":");
            json::push_string(&mut out, &m.name);
            out.push_str(",\"value\":");
            json::push_f64(&mut out, m.value);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parse a [`ShardOutput::to_json`] document.
    pub fn from_json(text: &str) -> Result<Self, ShardError> {
        let root = json::parse(text).map_err(|e| ShardError::Format(e.to_string()))?;
        let num = |key: &str| -> Result<f64, ShardError> {
            root.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ShardError::Format(format!("missing numeric field {key:?}")))
        };
        let string = |key: &str| -> Result<String, ShardError> {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ShardError::Format(format!("missing string field {key:?}")))
        };
        let format = num("format")? as u32;
        if format != FORMAT_VERSION {
            return Err(ShardError::Format(format!(
                "unsupported shard format {format} (expected {FORMAT_VERSION})"
            )));
        }
        let kind_name = string("kind")?;
        let kind = DatasetKind::from_name(&kind_name)
            .ok_or_else(|| ShardError::Format(format!("unknown dataset kind {kind_name:?}")))?;
        let shard = ShardSpec::new(num("shard_index")? as usize, num("shard_of")? as usize)
            .map_err(ShardError::Spec)?;
        let header = root
            .get("header")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Format("missing header".to_string()))?
            .iter()
            .map(|h| {
                h.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ShardError::Format("non-string header cell".to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rows = root
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Format("missing rows".to_string()))?
            .iter()
            .map(|r| {
                let item = r
                    .get("item")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ShardError::Format("row missing item".to_string()))?
                    as usize;
                let cells = r
                    .get("cells")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ShardError::Format("row missing cells".to_string()))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ShardError::Format("non-string cell".to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ShardRow { item, cells })
            })
            .collect::<Result<Vec<_>, ShardError>>()?;
        let metrics = root
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Format("missing metrics".to_string()))?
            .iter()
            .map(|m| {
                let item = m
                    .get("item")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ShardError::Format("metric missing item".to_string()))?
                    as usize;
                let name = m
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ShardError::Format("metric missing name".to_string()))?
                    .to_string();
                let value = m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ShardError::Format("non-finite metric value".to_string()))?;
                Ok(ShardMetric { item, name, value })
            })
            .collect::<Result<Vec<_>, ShardError>>()?;
        let seed = string("seed")?
            .parse::<u64>()
            .map_err(|_| ShardError::Format("seed is not a u64".to_string()))?;
        Ok(ShardOutput {
            experiment: string("experiment")?,
            kind,
            seed,
            scale_tag: string("scale")?,
            shard,
            n_items: num("n_items")? as usize,
            header,
            rows,
            metrics,
        })
    }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// A complete run reassembled from shard outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRun {
    pub experiment: String,
    pub kind: DatasetKind,
    pub seed: u64,
    pub scale_tag: String,
    pub n_items: usize,
    pub header: Vec<String>,
    /// Rows in global item order.
    pub rows: Vec<ShardRow>,
    /// Metric samples in global item order.
    pub metrics: Vec<ShardMetric>,
}

/// Merge shard outputs into one run. Accepts the shards in **any
/// order** and validates that they form exactly one run: consistent
/// identity fields, every shard index present exactly once, and row /
/// metric items inside their shard's range with no duplicates.
pub fn merge(outputs: &[ShardOutput]) -> Result<MergedRun, ShardError> {
    let first = outputs
        .first()
        .ok_or_else(|| ShardError::Merge("no shard outputs to merge".to_string()))?;
    let of = first.shard.of;
    if outputs.len() != of {
        return Err(ShardError::Merge(format!(
            "expected {of} shard output(s), got {}",
            outputs.len()
        )));
    }
    let mut ordered: Vec<&ShardOutput> = Vec::with_capacity(of);
    for index in 0..of {
        let matches: Vec<&ShardOutput> =
            outputs.iter().filter(|o| o.shard.index == index).collect();
        match matches.as_slice() {
            [one] => ordered.push(one),
            [] => return Err(ShardError::Merge(format!("missing shard {index}/{of}"))),
            _ => return Err(ShardError::Merge(format!("duplicate shard {index}/{of}"))),
        }
    }
    for o in &ordered {
        let mismatch = |field: &str| {
            ShardError::Merge(format!(
                "{} disagrees on {field} (expected the {} of shard 0)",
                o.shard, first.experiment
            ))
        };
        if o.shard.of != of {
            return Err(ShardError::Merge(format!(
                "{} belongs to a {}-way split, not {of}",
                o.shard, o.shard.of
            )));
        }
        if o.experiment != first.experiment {
            return Err(mismatch("experiment"));
        }
        if o.kind != first.kind {
            return Err(mismatch("dataset kind"));
        }
        if o.seed != first.seed {
            return Err(mismatch("seed"));
        }
        if o.scale_tag != first.scale_tag {
            return Err(mismatch("scale"));
        }
        if o.n_items != first.n_items {
            return Err(mismatch("n_items"));
        }
        if o.header != first.header {
            return Err(mismatch("header"));
        }
        if o.header.is_empty() {
            return Err(ShardError::Merge("empty table header".to_string()));
        }
        let range = o.shard.range(o.n_items);
        for row in &o.rows {
            if !range.contains(&row.item) {
                return Err(ShardError::Merge(format!(
                    "{} produced row for item {} outside its range {range:?}",
                    o.shard, row.item
                )));
            }
            // Arity is validated here so a truncated/hand-edited shard
            // file errors instead of tripping TextTable's assert later.
            if row.cells.len() != o.header.len() {
                return Err(ShardError::Merge(format!(
                    "{} row for item {} has {} cell(s), header has {}",
                    o.shard,
                    row.item,
                    row.cells.len(),
                    o.header.len()
                )));
            }
        }
        for m in &o.metrics {
            if !range.contains(&m.item) {
                return Err(ShardError::Merge(format!(
                    "{} produced metric for item {} outside its range {range:?}",
                    o.shard, m.item
                )));
            }
        }
    }
    // Shard ranges are disjoint and `ordered` is in shard order, so
    // concatenation sorted by item is globally ordered; a stable sort
    // keeps multiple metrics of one item in production order.
    let mut rows: Vec<ShardRow> = ordered.iter().flat_map(|o| o.rows.clone()).collect();
    rows.sort_by_key(|r| r.item);
    let mut last = None;
    for r in &rows {
        if last == Some(r.item) {
            return Err(ShardError::Merge(format!(
                "duplicate row for item {}",
                r.item
            )));
        }
        last = Some(r.item);
    }
    let mut metrics: Vec<ShardMetric> = ordered.iter().flat_map(|o| o.metrics.clone()).collect();
    metrics.sort_by_key(|m| m.item);
    // A repeated (item, name) sample would silently skew the rendered
    // means — reject it like duplicate rows.
    let mut seen: std::collections::HashSet<(usize, &str)> = std::collections::HashSet::new();
    for m in &metrics {
        if !seen.insert((m.item, m.name.as_str())) {
            return Err(ShardError::Merge(format!(
                "duplicate metric {:?} for item {}",
                m.name, m.item
            )));
        }
    }
    Ok(MergedRun {
        experiment: first.experiment.clone(),
        kind: first.kind,
        seed: first.seed,
        scale_tag: first.scale_tag.clone(),
        n_items: first.n_items,
        header: first.header.clone(),
        rows,
        metrics,
    })
}

impl MergedRun {
    /// Render the canonical run report: header line, aligned table, TSV
    /// block, and per-metric summaries. The text depends only on merged
    /// content, never on shard count or completion order — the CI
    /// shard-parity step byte-compares this across shardings.
    pub fn render(&self) -> String {
        let mut out = format!(
            "experiment={} kind={} seed={} scale={} items={} rows={}\n",
            self.experiment,
            self.kind.name(),
            self.seed,
            self.scale_tag,
            self.n_items,
            self.rows.len()
        );
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(&header);
        for row in &self.rows {
            table.row(row.cells.clone());
        }
        out.push('\n');
        out.push_str(&table.render());
        out.push_str("\nTSV:\n");
        out.push_str(&table.render_tsv());
        // Metric summaries: names in order of first appearance; means
        // accumulate in global item order, so the floating-point sum is
        // reproduced exactly.
        let mut names: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !names.contains(&m.name.as_str()) {
                names.push(&m.name);
            }
        }
        for name in names {
            let values: Vec<f64> = self
                .metrics
                .iter()
                .filter(|m| m.name == name)
                .map(|m| m.value)
                .collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            out.push_str(&format!(
                "metric {name}: mean={mean:.6} n={}\n",
                values.len()
            ));
        }
        out
    }
}

/// Run every shard of an experiment in this process (fanning shards out
/// over the persistent `gced-par` pool) and merge — the in-process
/// alternative to spawning `gced shard` worker processes. The pipeline
/// is fitted **once** and shared by every shard (through the cache
/// artifact at `fit_cache` when given, purely in memory otherwise).
pub fn run_sharded_in_process(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shards: usize,
) -> Result<MergedRun, ShardError> {
    run_sharded_in_process_cached(experiment, kind, scale, seed, shards, None)
}

/// [`run_sharded_in_process`] with an optional fit-cache path.
pub fn run_sharded_in_process_cached(
    experiment: &str,
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    shards: usize,
    fit_cache: Option<&Path>,
) -> Result<MergedRun, ShardError> {
    if !EXPERIMENTS.contains(&experiment) {
        return Err(ShardError::UnknownExperiment(experiment.to_string()));
    }
    let fit = if needs_fit(experiment) {
        Some(load_or_fit(kind, scale, seed, fit_cache)?)
    } else {
        None
    };
    let specs = ShardSpec::all(shards);
    let outputs: Vec<Result<ShardOutput, ShardError>> = gced_par::par_map(&specs, |_, spec| {
        run_shard_with_fit(experiment, kind, scale, seed, *spec, fit.clone())
    });
    let outputs = outputs.into_iter().collect::<Result<Vec<_>, _>>()?;
    merge(&outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_output(shard: ShardSpec) -> ShardOutput {
        let mut rows = Vec::new();
        let mut metrics = Vec::new();
        for item in shard.range(10) {
            rows.push(ShardRow {
                item,
                cells: vec![format!("id-{item}"), (item * 3).to_string()],
            });
            metrics.push(ShardMetric {
                item,
                name: "m".to_string(),
                value: item as f64 / 7.0,
            });
        }
        ShardOutput {
            experiment: "synthetic".to_string(),
            kind: DatasetKind::Squad11,
            seed: 42,
            scale_tag: "train1-dev1-rated1".to_string(),
            shard,
            n_items: 10,
            header: vec!["Id".to_string(), "Value".to_string()],
            rows,
            metrics,
        }
    }

    #[test]
    fn to_json_byte_order_is_pinned() {
        // DET001 audit regression: shard documents are hand-emitted in a
        // fixed key order, so the exact bytes — not just the parsed
        // content — are stable. Merge tooling and artifact diffs rely on
        // this.
        let out = ShardOutput {
            experiment: "synthetic".to_string(),
            kind: DatasetKind::Squad11,
            seed: 42,
            scale_tag: "train1-dev1-rated1".to_string(),
            shard: ShardSpec::new(0, 2).unwrap(),
            n_items: 4,
            header: vec!["Id".to_string(), "Value".to_string()],
            rows: vec![ShardRow {
                item: 0,
                cells: vec!["id-0".to_string(), "0".to_string()],
            }],
            metrics: vec![ShardMetric {
                item: 0,
                name: "m".to_string(),
                value: 0.5,
            }],
        };
        let text = out.to_json();
        assert_eq!(text, out.to_json(), "to_json must be byte-stable");
        assert_eq!(
            text,
            concat!(
                "{\"format\":1,\"experiment\":\"synthetic\",\"kind\":\"SQuAD-1.1\",",
                "\"seed\":\"42\",\"scale\":\"train1-dev1-rated1\",\"shard_index\":0,",
                "\"shard_of\":2,\"n_items\":4,\"header\":[\"Id\",\"Value\"],",
                "\"rows\":[{\"item\":0,\"cells\":[\"id-0\",\"0\"]}],",
                "\"metrics\":[{\"item\":0,\"name\":\"m\",\"value\":0.5}]}",
            )
        );
    }

    #[test]
    fn json_roundtrip_preserves_output() {
        let out = tiny_output(ShardSpec::new(1, 3).unwrap());
        let back = ShardOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(out, back);
    }

    #[test]
    fn json_roundtrip_preserves_full_range_seeds() {
        // Seeds above 2^53 must survive the wire format exactly (they
        // would round if routed through the JSON number path).
        let mut out = tiny_output(ShardSpec::single());
        out.seed = u64::MAX - 1;
        let back = ShardOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn merge_is_order_invariant() {
        let mut outputs: Vec<ShardOutput> =
            ShardSpec::all(4).into_iter().map(tiny_output).collect();
        let merged = merge(&outputs).unwrap();
        outputs.reverse();
        let reversed = merge(&outputs).unwrap();
        assert_eq!(merged, reversed);
        assert_eq!(merged.render(), reversed.render());
        assert_eq!(merged.rows.len(), 10);
        // Also identical to the single-shard run.
        let single = merge(&[tiny_output(ShardSpec::single())]).unwrap();
        assert_eq!(single.render(), merged.render());
    }

    #[test]
    fn merge_rejects_incomplete_and_inconsistent_sets() {
        let outputs: Vec<ShardOutput> = ShardSpec::all(3).into_iter().map(tiny_output).collect();
        assert!(matches!(
            merge(&outputs[..2]).unwrap_err(),
            ShardError::Merge(_)
        ));
        let dup = vec![outputs[0].clone(), outputs[0].clone(), outputs[2].clone()];
        assert!(merge(&dup).is_err());
        let mut wrong_seed = outputs.clone();
        wrong_seed[1].seed = 7;
        assert!(merge(&wrong_seed).is_err());
        let mut out_of_range = outputs.clone();
        out_of_range[0].rows.push(ShardRow {
            item: 9,
            cells: vec!["x".to_string(), "y".to_string()],
        });
        assert!(merge(&out_of_range).is_err());
        let mut dup_metric = outputs.clone();
        let m = dup_metric[0].metrics[0].clone();
        dup_metric[0].metrics.push(m);
        let err = merge(&dup_metric).unwrap_err();
        assert!(err.to_string().contains("duplicate metric"), "{err}");
        let mut bad_arity = outputs.clone();
        bad_arity[1].rows[0].cells.pop();
        let err = merge(&bad_arity).unwrap_err();
        assert!(err.to_string().contains("cell(s)"), "{err}");
        let mut empty_header = outputs.clone();
        for o in &mut empty_header {
            o.header.clear();
            o.rows.clear();
        }
        assert!(merge(&empty_header).is_err());
        assert!(merge(&[]).is_err());
    }

    #[test]
    fn table3_sharded_matches_single_run() {
        let scale = Scale::smoke();
        let outputs: Vec<ShardOutput> = ShardSpec::all(3)
            .into_iter()
            .map(|s| run_shard("table3", DatasetKind::Squad11, scale, 42, s).unwrap())
            .collect();
        let merged = merge(&outputs).unwrap();
        let single = merge(&[run_shard(
            "table3",
            DatasetKind::Squad11,
            scale,
            42,
            ShardSpec::single(),
        )
        .unwrap()])
        .unwrap();
        assert_eq!(merged.render(), single.render());
        assert_eq!(merged.rows.len(), 4);
    }

    #[test]
    fn unknown_experiment_errors() {
        let err = run_shard(
            "tableX",
            DatasetKind::Squad11,
            Scale::smoke(),
            42,
            ShardSpec::single(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
    }
}
